"""Packet-digest hash functions.

The paper's prototype uses the "Bob" hash (Bob Jenkins' ``lookup2`` hash),
reported by Molina et al. to mix Internet header bytes well.  We implement
``lookup2`` from scratch (:func:`bob_hash`), plus FNV-1a and splitmix64 as
auxiliary mixers, and two higher-level constructions used by the VPM
algorithms:

* :class:`PacketDigester` — computes a 64-bit digest of a packet's IP and
  transport headers (plus a small payload prefix), the quantity written as
  ``Digest(p)`` in Algorithms 1 and 2.
* :func:`sample_function` — the keyed ``SampleFcn(Digest(q), Digest(p))`` of
  Algorithm 1, which combines the digest of a buffered packet with the digest
  of the *marker* packet observed later on the same path.  Keying the decision
  on future traffic is what makes the sampling bias-resistant.

All digests are uniform 64-bit integers; thresholds are expressed as fractions
of the 64-bit space via :func:`threshold_for_rate`.

Every scalar kernel has an array twin (``*_batch``) operating on NumPy uint64
arrays.  The batch kernels are bit-for-bit identical to the scalar ones — the
scalar implementations remain the reference oracle, and the property tests in
``tests/property/test_prop_batch_parity.py`` cross-check them on random
inputs.  The batch path is what lets the collector hot loop run millions of
packets per second instead of a few hundred thousand.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "MASK32",
    "MASK64",
    "bob_hash",
    "bob_hash_batch",
    "fnv1a_64",
    "fnv1a_64_batch",
    "splitmix64",
    "splitmix64_batch",
    "combine64",
    "combine64_batch",
    "sample_function",
    "sample_function_batch",
    "threshold_for_rate",
    "rate_for_threshold",
    "as_digest_array",
    "PacketDigester",
]

MASK32 = 0xFFFFFFFF
MASK64 = 0xFFFFFFFFFFFFFFFF

_GOLDEN_RATIO_32 = 0x9E3779B9


def _mix(a: int, b: int, c: int) -> tuple[int, int, int]:
    """The 96-bit mixing step of Bob Jenkins' lookup2 hash."""
    a = (a - b - c) & MASK32
    a ^= (c >> 13)
    b = (b - c - a) & MASK32
    b ^= (a << 8) & MASK32
    c = (c - a - b) & MASK32
    c ^= (b >> 13)
    a = (a - b - c) & MASK32
    a ^= (c >> 12)
    b = (b - c - a) & MASK32
    b ^= (a << 16) & MASK32
    c = (c - a - b) & MASK32
    c ^= (b >> 5)
    a = (a - b - c) & MASK32
    a ^= (c >> 3)
    b = (b - c - a) & MASK32
    b ^= (a << 10) & MASK32
    c = (c - a - b) & MASK32
    c ^= (b >> 15)
    return a, b, c


def bob_hash(data: bytes, initval: int = 0) -> int:
    """Bob Jenkins' lookup2 hash of ``data`` (32-bit output).

    This is the "Bob" hash referenced by the paper's prototype [19].  The
    implementation follows the original C routine: the input is consumed in
    12-byte blocks, each block mixed into a 96-bit internal state, with the
    length and ``initval`` folded into the tail block.
    """
    if initval < 0:
        raise ValueError(f"initval must be non-negative, got {initval}")
    length = len(data)
    a = b = _GOLDEN_RATIO_32
    c = initval & MASK32

    i = 0
    remaining = length
    while remaining >= 12:
        a = (a + int.from_bytes(data[i : i + 4], "little")) & MASK32
        b = (b + int.from_bytes(data[i + 4 : i + 8], "little")) & MASK32
        c = (c + int.from_bytes(data[i + 8 : i + 12], "little")) & MASK32
        a, b, c = _mix(a, b, c)
        i += 12
        remaining -= 12

    c = (c + length) & MASK32
    tail = data[i:]
    # The original routine adds the tail bytes into a/b/c with per-byte shifts;
    # byte 8 of the tail is skipped for c because the length occupies its slot.
    for offset, byte in enumerate(tail):
        if offset < 4:
            a = (a + (byte << (8 * offset))) & MASK32
        elif offset < 8:
            b = (b + (byte << (8 * (offset - 4)))) & MASK32
        else:
            c = (c + (byte << (8 * (offset - 7)))) & MASK32
    a, b, c = _mix(a, b, c)
    return c


def _mix_batch(a: np.ndarray, b: np.ndarray, c: np.ndarray) -> None:
    """Array twin of :func:`_mix`: uint64 lanes masked to 32 bits per step.

    Mutates ``a``/``b``/``c`` in place — callers must own the arrays.
    """
    mask = np.uint64(MASK32)
    for left, mid, right, shift, direction in (
        (a, b, c, 13, ">>"),
        (b, c, a, 8, "<<"),
        (c, a, b, 13, ">>"),
        (a, b, c, 12, ">>"),
        (b, c, a, 16, "<<"),
        (c, a, b, 5, ">>"),
        (a, b, c, 3, ">>"),
        (b, c, a, 10, "<<"),
        (c, a, b, 15, ">>"),
    ):
        left -= mid
        left -= right
        left &= mask
        if direction == ">>":
            left ^= right >> np.uint64(shift)
        else:
            left ^= (right << np.uint64(shift)) & mask


def as_digest_array(digests) -> np.ndarray:
    """Coerce a digest sequence into a 1-D uint64 array.

    Rejects negative or >64-bit values (the batch twin of the scalar paths'
    per-digest range checks) instead of silently wrapping them.
    """
    values = np.asarray(digests)
    if values.dtype != np.uint64:
        if values.dtype.kind in "iu":
            if values.size and int(values.min()) < 0:
                raise ValueError("digests must be 64-bit values, got a negative entry")
            values = values.astype(np.uint64)
        else:
            # Object/float arrays: go through Python ints so out-of-range
            # values raise instead of silently wrapping.
            values = np.fromiter(
                (int(value) for value in values), dtype=np.uint64, count=values.size
            )
    if values.ndim != 1:
        raise ValueError(f"digests must be a 1-D array, got shape {values.shape}")
    return values


def _as_byte_matrix(data: np.ndarray) -> np.ndarray:
    """Validate/coerce a batch-kernel input into a 2-D uint8 matrix."""
    matrix = np.asarray(data)
    if matrix.dtype != np.uint8:
        raise ValueError(f"expected a uint8 byte matrix, got dtype {matrix.dtype}")
    if matrix.ndim != 2:
        raise ValueError(f"expected a 2-D byte matrix, got shape {matrix.shape}")
    return matrix


def bob_hash_batch(data: np.ndarray, initval: int = 0) -> np.ndarray:
    """Array twin of :func:`bob_hash`.

    ``data`` is a ``(n, length)`` uint8 matrix — one row per packet, all rows
    the same length (which is how packet invariant bytes come out of a
    columnar batch).  Returns a uint64 array of ``n`` 32-bit hash values,
    bit-for-bit equal to ``[bob_hash(row.tobytes(), initval) for row in data]``.
    """
    if initval < 0:
        raise ValueError(f"initval must be non-negative, got {initval}")
    matrix = _as_byte_matrix(data)
    count, length = matrix.shape
    mask = np.uint64(MASK32)

    # Zero-pad each row to whole 12-byte blocks plus one spare block, then
    # view the bytes as little-endian 32-bit words: the per-block adds become
    # three word adds, and the per-byte tail adds of the original routine
    # collapse into word adds too (zero padding contributes nothing, and the
    # third tail word is shifted one byte because the length occupies byte 8).
    full_blocks = length // 12
    padded = np.zeros((count, (full_blocks + 1) * 12), dtype=np.uint8)
    padded[:, :length] = matrix
    words = np.ascontiguousarray(padded).view("<u4").astype(np.uint64)

    a = np.full(count, _GOLDEN_RATIO_32, dtype=np.uint64)
    b = a.copy()
    c = np.full(count, initval & MASK32, dtype=np.uint64)

    for block in range(full_blocks):
        a += words[:, 3 * block]
        a &= mask
        b += words[:, 3 * block + 1]
        b &= mask
        c += words[:, 3 * block + 2]
        c &= mask
        _mix_batch(a, b, c)

    c += np.uint64(length)
    c &= mask
    a += words[:, 3 * full_blocks]
    a &= mask
    b += words[:, 3 * full_blocks + 1]
    b &= mask
    c += (words[:, 3 * full_blocks + 2] << np.uint64(8)) & mask
    c &= mask
    _mix_batch(a, b, c)
    return c


def fnv1a_64(data: bytes) -> int:
    """64-bit FNV-1a hash, used as a second independent mixer."""
    value = 0xCBF29CE484222325
    for byte in data:
        value ^= byte
        value = (value * 0x100000001B3) & MASK64
    return value


def fnv1a_64_batch(data: np.ndarray) -> np.ndarray:
    """Array twin of :func:`fnv1a_64` over a ``(n, length)`` uint8 matrix."""
    matrix = _as_byte_matrix(data)
    count, length = matrix.shape
    prime = np.uint64(0x100000001B3)
    value = np.full(count, 0xCBF29CE484222325, dtype=np.uint64)
    words = matrix.astype(np.uint64)
    for column in range(length):
        value = (value ^ words[:, column]) * prime
    return value


def splitmix64(value: int) -> int:
    """SplitMix64 finalizer: a cheap, high-quality 64-bit integer mixer."""
    value = (value + 0x9E3779B97F4A7C15) & MASK64
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & MASK64
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & MASK64
    return (value ^ (value >> 31)) & MASK64


def splitmix64_batch(values: np.ndarray) -> np.ndarray:
    """Array twin of :func:`splitmix64` over a uint64 array."""
    value = np.asarray(values, dtype=np.uint64)
    value = value + np.uint64(0x9E3779B97F4A7C15)
    value = (value ^ (value >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
    value = (value ^ (value >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
    return value ^ (value >> np.uint64(31))


def combine64(first: int, second: int) -> int:
    """Combine two 64-bit values into one, order-sensitively."""
    return splitmix64((first ^ splitmix64(second)) & MASK64)


def combine64_batch(first: np.ndarray, second: np.ndarray | int) -> np.ndarray:
    """Array twin of :func:`combine64`; ``second`` may be a scalar (broadcast)."""
    first = np.asarray(first, dtype=np.uint64)
    if isinstance(second, (int, np.integer)):
        second = np.uint64(int(second) & MASK64)
    else:
        second = np.asarray(second, dtype=np.uint64)
    return splitmix64_batch(first ^ splitmix64_batch(np.atleast_1d(second)))


def sample_function(buffered_digest: int, marker_digest: int) -> int:
    """``SampleFcn(Digest(q), Digest(p))`` from Algorithm 1.

    ``buffered_digest`` is the digest of a packet ``q`` held in the temporary
    buffer; ``marker_digest`` is the digest of the marker packet ``p`` observed
    later on the same path.  The output is a uniform 64-bit value that every
    HOP on the path computes identically, but which no HOP can predict before
    the marker has been forwarded.
    """
    return combine64(buffered_digest & MASK64, marker_digest & MASK64)


def sample_function_batch(
    buffered_digests: np.ndarray, marker_digest: np.ndarray | int
) -> np.ndarray:
    """Array twin of :func:`sample_function`.

    Evaluates the keyed sampling function for a whole temporary buffer against
    one marker digest (or elementwise against an array of markers) in a single
    vectorized pass.
    """
    return combine64_batch(buffered_digests, marker_digest)


def threshold_for_rate(rate: float) -> int:
    """Threshold ``t`` such that ``P(uniform 64-bit digest > t) == rate``.

    Used to turn a human-friendly sampling/marker/partition *rate* into the
    threshold compared against digests in Algorithms 1 and 2.

    >>> threshold_for_rate(1.0)
    0
    >>> threshold_for_rate(0.0) == MASK64
    True
    """
    if not 0.0 <= rate <= 1.0:
        raise ValueError(f"rate must be in [0, 1], got {rate!r}")
    # Clamp: floating-point rounding of (1 - rate) * MASK64 can land one past
    # the 64-bit range for rates very close to zero.
    return min(int(round((1.0 - rate) * MASK64)), MASK64)


def rate_for_threshold(threshold: int) -> float:
    """Inverse of :func:`threshold_for_rate` (the expected exceedance rate)."""
    if not 0 <= threshold <= MASK64:
        raise ValueError(f"threshold must be a 64-bit value, got {threshold!r}")
    return 1.0 - threshold / MASK64


@dataclass(frozen=True)
class PacketDigester:
    """Computes the per-packet digest ``Digest(p)`` used by all HOPs on a path.

    The digest covers the packet's invariant header fields (addresses, ports,
    protocol, IP identification) and the first ``payload_prefix`` bytes of the
    payload, mirroring the paper's prototype which hashes "each packet's IP and
    transport headers".  Mutable fields such as TTL are deliberately excluded
    so every HOP on the path computes the same digest for the same packet.

    Parameters
    ----------
    seed:
        Folded into the hash as the lookup2 ``initval``.  All HOPs on a path
        must share the same seed (it is a system-wide constant in VPM);
        distinct seeds model protocol variants in tests.
    payload_prefix:
        Number of payload bytes included in the digest (default 8, "a small
        portion of packet payload" per the paper's Assumption 3).
    """

    seed: int = 0
    payload_prefix: int = 8

    def digest(self, packet: "Packet") -> int:  # noqa: F821 - forward ref
        """Return the 64-bit digest of ``packet``.

        Digests are memoized on the packet (keyed by the digester's seed and
        payload prefix): every HOP on a path uses the same system-wide digest
        parameters, so in the simulation the same value would otherwise be
        recomputed once per HOP.
        """
        cache = packet._invariant_cache
        key = ("digest", self.seed, self.payload_prefix)
        cached = cache.get(key)
        if cached is not None:
            return cached
        material = packet.invariant_bytes(self.payload_prefix)
        low = bob_hash(material, initval=self.seed & MASK32)
        high = bob_hash(material, initval=(self.seed + 1) & MASK32)
        value = combine64((high << 32) | low, fnv1a_64(material))
        cache[key] = value
        return value

    def __call__(self, packet: "Packet") -> int:  # noqa: F821 - forward ref
        return self.digest(packet)

    def digest_batch(self, batch) -> np.ndarray:
        """Return the 64-bit digests of a whole packet batch as a uint64 array.

        ``batch`` is either a columnar :class:`repro.net.batch.PacketBatch`
        (anything exposing ``invariant_matrix(payload_prefix)``) or a raw
        ``(n, length)`` uint8 matrix of invariant bytes.  The result is
        bit-for-bit identical to calling :meth:`digest` on each packet.

        Like the scalar path, digests are memoized on the batch (keyed by seed
        and payload prefix) so the several HOPs of a simulated path hash each
        packet only once.
        """
        cache = getattr(batch, "_digest_cache", None)
        key = (self.seed, self.payload_prefix)
        if cache is not None:
            cached = cache.get(key)
            if cached is not None:
                return cached
        # A batch derived via take() delegates to its root so the hash runs
        # once per source packet no matter how many HOPs observe a slice.
        root = getattr(batch, "_digest_root", None)
        if root is not None:
            values = self.digest_batch(root)[batch._root_indices]
            cache[key] = values
            return values
        if hasattr(batch, "invariant_matrix"):
            material = batch.invariant_matrix(self.payload_prefix)
        else:
            material = _as_byte_matrix(batch)
        low = bob_hash_batch(material, initval=self.seed & MASK32)
        high = bob_hash_batch(material, initval=(self.seed + 1) & MASK32)
        combined = (high << np.uint64(32)) | low
        values = combine64_batch(combined, fnv1a_64_batch(material))
        if cache is not None:
            cache[key] = values
        return values
