"""Packet model.

A :class:`Packet` carries the header fields the VPM prototype hashes (IP and
transport headers) plus simulation-only bookkeeping: a globally unique
``uid`` assigned by the traffic generator (used *only* as ground truth for
evaluating the protocol — the protocol itself never sees it) and the send
timestamp at the traffic source.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field, replace

import numpy as np

__all__ = ["PacketHeaders", "Packet", "HEADER_PACK_BYTES", "pack_header_columns"]

_PROTO_NAMES = {6: "TCP", 17: "UDP", 1: "ICMP"}

# Byte length of PacketHeaders.pack() (">IIHHBHH"): the header part of the
# digest material.  The columnar fast path sizes its matrices with this.
HEADER_PACK_BYTES = 17


def pack_header_columns(
    src_ip: np.ndarray,
    dst_ip: np.ndarray,
    src_port: np.ndarray,
    dst_port: np.ndarray,
    protocol: np.ndarray,
    ip_id: np.ndarray,
    length: np.ndarray,
) -> np.ndarray:
    """Columnar twin of :meth:`PacketHeaders.pack`.

    Packs per-field arrays into a ``(n, HEADER_PACK_BYTES)`` uint8 matrix whose
    rows are bit-for-bit equal to ``PacketHeaders(...).pack()`` — the same
    big-endian ``>IIHHBHH`` layout, one row per packet.
    """
    count = len(src_ip)
    matrix = np.empty((count, HEADER_PACK_BYTES), dtype=np.uint8)
    matrix[:, 0:4] = np.ascontiguousarray(src_ip, dtype=">u4").view(np.uint8).reshape(count, 4)
    matrix[:, 4:8] = np.ascontiguousarray(dst_ip, dtype=">u4").view(np.uint8).reshape(count, 4)
    matrix[:, 8:10] = np.ascontiguousarray(src_port, dtype=">u2").view(np.uint8).reshape(count, 2)
    matrix[:, 10:12] = np.ascontiguousarray(dst_port, dtype=">u2").view(np.uint8).reshape(count, 2)
    matrix[:, 12] = np.asarray(protocol, dtype=np.uint8)
    matrix[:, 13:15] = np.ascontiguousarray(ip_id, dtype=">u2").view(np.uint8).reshape(count, 2)
    matrix[:, 15:17] = np.ascontiguousarray(length, dtype=">u2").view(np.uint8).reshape(count, 2)
    return matrix


@dataclass(frozen=True)
class PacketHeaders:
    """The invariant IP/transport header fields covered by ``Digest(p)``.

    Mutable-in-flight fields (TTL, checksum) are intentionally not modelled:
    every HOP must compute the same digest for the same packet, so only
    end-to-end-invariant fields participate.
    """

    src_ip: int
    dst_ip: int
    src_port: int
    dst_port: int
    protocol: int
    ip_id: int
    length: int

    def __post_init__(self) -> None:
        for name in ("src_ip", "dst_ip"):
            value = getattr(self, name)
            if not 0 <= value <= 0xFFFFFFFF:
                raise ValueError(f"{name} must be a 32-bit value, got {value}")
        for name in ("src_port", "dst_port", "ip_id"):
            value = getattr(self, name)
            if not 0 <= value <= 0xFFFF:
                raise ValueError(f"{name} must be a 16-bit value, got {value}")
        if not 0 <= self.protocol <= 0xFF:
            raise ValueError(f"protocol must be an 8-bit value, got {self.protocol}")
        if not 20 <= self.length <= 65535:
            raise ValueError(f"length must be in [20, 65535], got {self.length}")

    @property
    def protocol_name(self) -> str:
        """Human-readable transport protocol name (``TCP``/``UDP``/...)."""
        return _PROTO_NAMES.get(self.protocol, str(self.protocol))

    def pack(self) -> bytes:
        """Serialize the invariant header fields into a canonical byte string."""
        return struct.pack(
            ">IIHHBHH",
            self.src_ip,
            self.dst_ip,
            self.src_port,
            self.dst_port,
            self.protocol,
            self.ip_id,
            self.length,
        )


@dataclass(frozen=True)
class Packet:
    """A simulated packet.

    Attributes
    ----------
    headers:
        The invariant IP/transport header fields.
    payload:
        The first bytes of the payload (only a small prefix is ever needed,
        since digests cover at most a few payload bytes).
    uid:
        Simulation-only unique identifier, assigned by the traffic generator.
        Ground truth for evaluation; never consulted by the protocol.
    send_time:
        Time (seconds, virtual clock) at which the traffic source emitted the
        packet.
    flow_id:
        Simulation-only identifier of the flow that produced the packet.
    """

    headers: PacketHeaders
    payload: bytes = b""
    uid: int = 0
    send_time: float = 0.0
    flow_id: int = 0

    # Cache of invariant bytes, keyed by payload-prefix length.  ``field`` with
    # ``compare=False`` keeps equality semantics based on the real content.
    _invariant_cache: dict = field(
        default_factory=dict, compare=False, repr=False, hash=False
    )

    @property
    def size(self) -> int:
        """Total packet size in bytes (from the IP length field)."""
        return self.headers.length

    def invariant_bytes(self, payload_prefix: int = 8) -> bytes:
        """Bytes covered by the digest: packed headers plus a payload prefix."""
        if payload_prefix < 0:
            raise ValueError(f"payload_prefix must be >= 0, got {payload_prefix}")
        cached = self._invariant_cache.get(payload_prefix)
        if cached is None:
            cached = self.headers.pack() + self.payload[:payload_prefix]
            self._invariant_cache[payload_prefix] = cached
        return cached

    def with_send_time(self, send_time: float) -> "Packet":
        """Return a copy of the packet with a different source send time."""
        return replace(self, send_time=send_time, _invariant_cache={})

    def __str__(self) -> str:
        return (
            f"Packet(uid={self.uid}, {self.headers.protocol_name} "
            f"{self.headers.src_ip:#010x}:{self.headers.src_port} -> "
            f"{self.headers.dst_ip:#010x}:{self.headers.dst_port}, "
            f"{self.size}B @ {self.send_time:.6f}s)"
        )
