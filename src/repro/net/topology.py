"""Domains, hand-off points (HOPs), HOP paths and the topology graph.

Terminology follows Section 2 of the paper:

* A **domain** is a contiguous network under one administrative entity (an
  edge network or a single AS).
* A **HOP** (hand-off point) is an ingress/egress point on a domain's
  perimeter; adjacent domains' HOPs are connected by inter-domain links.
* A **HOP path** is the sequence of HOPs traversed by all traffic between a
  given (source, destination) origin-prefix pair; per Assumption 1, it is
  stable over the time scales VPM operates on.

The running example (Figure 1) — domains ``S``, ``L``, ``X``, ``N``, ``D``
connected through HOPs 1..8 — is constructed by :func:`figure1_topology`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

import numpy as np

from repro.net.clock import Clock, PerfectClock
from repro.net.link import InterDomainLink, LinkSpec
from repro.net.prefixes import OriginPrefix, PrefixPair
from repro.util.rng import make_rng

__all__ = [
    "Domain",
    "HOP",
    "HOPPath",
    "MeshTopologyConfig",
    "Topology",
    "figure1_topology",
    "generate_mesh_topology",
    "star_topology",
]


@dataclass(frozen=True)
class Domain:
    """An administrative domain (AS or edge network)."""

    name: str

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("domain name must be non-empty")

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True, eq=False)
class HOP:
    """A hand-off point on a domain's perimeter.

    ``hop_id`` is globally unique within a topology (the integer labels of
    Figure 1).  ``role`` records whether the HOP is the ingress or egress of
    its domain for the paths it serves; domains with a single HOP on a path
    (stub source/destination domains) use ``"edge"``.
    """

    hop_id: int
    domain: Domain
    role: str = "edge"
    clock: Clock = field(default_factory=PerfectClock)

    def __post_init__(self) -> None:
        if self.hop_id < 0:
            raise ValueError(f"hop_id must be non-negative, got {self.hop_id}")
        if self.role not in ("ingress", "egress", "edge"):
            raise ValueError(f"role must be ingress/egress/edge, got {self.role!r}")

    def __hash__(self) -> int:
        return hash(self.hop_id)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, HOP):
            return NotImplemented
        return self.hop_id == other.hop_id

    def __str__(self) -> str:
        return f"HOP{self.hop_id}({self.domain.name}/{self.role})"


@dataclass(frozen=True)
class HOPPath:
    """An ordered sequence of HOPs between a source and destination prefix.

    The path is the unit over which receipts are classified (its identity is
    carried in every receipt's ``PathID``).  Consecutive HOPs belonging to
    *different* domains are connected by inter-domain links; consecutive HOPs
    of the same domain delimit that domain's internal segment.
    """

    prefix_pair: PrefixPair
    hops: tuple[HOP, ...]

    def __post_init__(self) -> None:
        if len(self.hops) < 2:
            raise ValueError("a HOP path needs at least two HOPs")
        ids = [hop.hop_id for hop in self.hops]
        if len(set(ids)) != len(ids):
            raise ValueError(f"HOP path contains duplicate HOPs: {ids}")

    def __len__(self) -> int:
        return len(self.hops)

    def __iter__(self) -> Iterator[HOP]:
        return iter(self.hops)

    @property
    def domains(self) -> tuple[Domain, ...]:
        """The distinct domains traversed, in path order."""
        seen: list[Domain] = []
        for hop in self.hops:
            if not seen or seen[-1] != hop.domain:
                seen.append(hop.domain)
        return tuple(seen)

    def hops_of(self, domain: Domain | str) -> tuple[HOP, ...]:
        """Return the HOPs on this path that belong to ``domain``."""
        name = domain.name if isinstance(domain, Domain) else domain
        return tuple(hop for hop in self.hops if hop.domain.name == name)

    def domain_segments(self) -> list[tuple[Domain, HOP, HOP]]:
        """Return (domain, ingress HOP, egress HOP) for every transit domain.

        A transit domain exposes two HOPs on the path; its loss and delay are
        measured between them.  Stub domains (one HOP) are excluded since the
        path does not cross them edge-to-edge.
        """
        segments: list[tuple[Domain, HOP, HOP]] = []
        index = 0
        while index < len(self.hops) - 1:
            first = self.hops[index]
            second = self.hops[index + 1]
            if first.domain == second.domain:
                segments.append((first.domain, first, second))
                index += 2
            else:
                index += 1
        return segments

    def inter_domain_pairs(self) -> list[tuple[HOP, HOP]]:
        """Return the adjacent HOP pairs connected by inter-domain links."""
        pairs: list[tuple[HOP, HOP]] = []
        for first, second in zip(self.hops, self.hops[1:]):
            if first.domain != second.domain:
                pairs.append((first, second))
        return pairs

    def neighbor_of(self, domain: Domain | str, side: str) -> Domain | None:
        """Return the previous/next domain of ``domain`` on this path."""
        if side not in ("previous", "next"):
            raise ValueError(f"side must be 'previous' or 'next', got {side!r}")
        name = domain.name if isinstance(domain, Domain) else domain
        order = self.domains
        for index, entry in enumerate(order):
            if entry.name == name:
                if side == "previous":
                    return order[index - 1] if index > 0 else None
                return order[index + 1] if index + 1 < len(order) else None
        raise ValueError(f"domain {name!r} is not on this path")

    def __str__(self) -> str:
        chain = " -> ".join(str(hop.hop_id) for hop in self.hops)
        return f"HOPPath[{self.prefix_pair}: {chain}]"


class Topology:
    """A collection of domains, HOPs, inter-domain links and HOP paths."""

    def __init__(self) -> None:
        self._domains: dict[str, Domain] = {}
        self._hops: dict[int, HOP] = {}
        self._links: dict[tuple[int, int], InterDomainLink] = {}
        self._paths: dict[PrefixPair, HOPPath] = {}

    # -- construction -----------------------------------------------------

    def add_domain(self, name: str) -> Domain:
        """Create (or return an existing) domain by name."""
        if name not in self._domains:
            self._domains[name] = Domain(name)
        return self._domains[name]

    def add_hop(
        self,
        hop_id: int,
        domain: Domain | str,
        role: str = "edge",
        clock: Clock | None = None,
    ) -> HOP:
        """Register a HOP with a globally unique identifier."""
        if hop_id in self._hops:
            raise ValueError(f"HOP id {hop_id} already registered")
        owner = self.add_domain(domain) if isinstance(domain, str) else domain
        hop = HOP(hop_id=hop_id, domain=owner, role=role, clock=clock or PerfectClock())
        self._hops[hop_id] = hop
        return hop

    def add_link(
        self,
        first: HOP | int,
        second: HOP | int,
        link: InterDomainLink | None = None,
    ) -> InterDomainLink:
        """Connect two HOPs of different domains with an inter-domain link."""
        hop_a = self.hop(first)
        hop_b = self.hop(second)
        if hop_a.domain == hop_b.domain:
            raise ValueError(
                f"inter-domain links connect different domains; both HOPs are in "
                f"{hop_a.domain.name}"
            )
        edge = link or InterDomainLink(spec=LinkSpec())
        key = (min(hop_a.hop_id, hop_b.hop_id), max(hop_a.hop_id, hop_b.hop_id))
        self._links[key] = edge
        return edge

    def add_path(self, prefix_pair: PrefixPair, hops: Iterable[HOP | int]) -> HOPPath:
        """Register the HOP path followed by traffic of ``prefix_pair``."""
        resolved = tuple(self.hop(entry) for entry in hops)
        path = HOPPath(prefix_pair=prefix_pair, hops=resolved)
        self._paths[prefix_pair] = path
        return path

    # -- lookups ----------------------------------------------------------

    def domain(self, name: str) -> Domain:
        """Return a domain by name, raising ``KeyError`` if unknown."""
        return self._domains[name]

    def hop(self, ref: HOP | int) -> HOP:
        """Resolve a HOP reference (object or id) to the registered HOP."""
        if isinstance(ref, HOP):
            if ref.hop_id not in self._hops:
                raise KeyError(f"HOP {ref.hop_id} is not part of this topology")
            return self._hops[ref.hop_id]
        return self._hops[ref]

    def link_between(self, first: HOP | int, second: HOP | int) -> InterDomainLink:
        """Return the inter-domain link connecting two HOPs."""
        hop_a = self.hop(first)
        hop_b = self.hop(second)
        key = (min(hop_a.hop_id, hop_b.hop_id), max(hop_a.hop_id, hop_b.hop_id))
        return self._links[key]

    def path(self, prefix_pair: PrefixPair) -> HOPPath:
        """Return the HOP path registered for a prefix pair."""
        return self._paths[prefix_pair]

    @property
    def domains(self) -> tuple[Domain, ...]:
        return tuple(self._domains.values())

    @property
    def hops(self) -> tuple[HOP, ...]:
        return tuple(self._hops.values())

    @property
    def paths(self) -> tuple[HOPPath, ...]:
        return tuple(self._paths.values())


def figure1_topology(prefix_pair: PrefixPair | None = None) -> tuple[Topology, HOPPath]:
    """Build the Figure-1 topology and its main HOP path.

    Domain ``S`` sends to domain ``D`` via HOPs 1..8:
    ``S``(1) → ``L``(2, 3) → ``X``(4, 5) → ``N``(6, 7) → ``D``(8).

    Returns the topology and the registered path.
    """
    pair = prefix_pair or PrefixPair(
        source=OriginPrefix.parse("10.1.0.0/16"),
        destination=OriginPrefix.parse("10.2.0.0/16"),
    )
    topology = Topology()
    layout = [
        (1, "S", "edge"),
        (2, "L", "ingress"),
        (3, "L", "egress"),
        (4, "X", "ingress"),
        (5, "X", "egress"),
        (6, "N", "ingress"),
        (7, "N", "egress"),
        (8, "D", "edge"),
    ]
    for hop_id, domain, role in layout:
        topology.add_hop(hop_id, domain, role)
    for first, second in ((1, 2), (3, 4), (5, 6), (7, 8)):
        topology.add_link(first, second)
    path = topology.add_path(pair, [hop_id for hop_id, _, _ in layout])
    return topology, path


# -- mesh topologies ------------------------------------------------------------------
#
# The paper's setting (Section 2, Figure 1) is a *mesh*: each HOP sits on a
# domain's perimeter and aggregates traffic of many (source, destination)
# prefix pairs at once.  The generators below produce such meshes: every
# domain-level adjacency gets one HOP on each side, and every path crossing
# that adjacency reuses the same two HOPs — so paths genuinely share HOPs,
# and a shared HOP's collector observes the union of their traffic.


def _stub_prefix(index: int) -> OriginPrefix:
    """The /16 origin prefix advertised by the ``index``-th stub domain.

    Distinct second octets make every stub's prefix disjoint, so a packet's
    (source, destination) addresses classify it into exactly one path.
    """
    if not 0 <= index < 254:
        raise ValueError(f"at most 254 stub domains are supported, got index {index}")
    return OriginPrefix(network=(10 << 24) | ((index + 1) << 16), length=16)


@dataclass(frozen=True)
class MeshTopologyConfig:
    """Parameters of a seeded random transit/stub mesh.

    Attributes
    ----------
    transit_domains:
        Number of transit (backbone) domains ``T1..Tn``.
    stub_domains:
        Number of stub (edge) domains ``S1..Sm``; each advertises its own
        /16 origin prefix and attaches to one transit provider.
    transit_degree:
        Target mean degree of the transit graph.  The backbone contributes
        its edges first; random chords are added until the target is met
        (or the graph is complete).
    path_count:
        Number of HOP paths to select, each for a distinct ordered
        (source stub, destination stub) prefix pair.
    backbone:
        ``"ring"`` connects the transit domains in a cycle before adding
        chords (always connected); ``"none"`` relies on chords alone, which
        can leave prefix pairs disconnected — a configuration error this
        generator reports rather than papers over.
    stub_attachment:
        ``"random"`` draws each stub's provider uniformly; ``"round-robin"``
        assigns stub ``Sk`` to transit ``T(k mod n)`` deterministically.
    """

    transit_domains: int = 4
    stub_domains: int = 4
    transit_degree: float = 2.0
    path_count: int = 4
    backbone: str = "ring"
    stub_attachment: str = "random"

    def __post_init__(self) -> None:
        if self.transit_domains < 1:
            raise ValueError(
                f"a mesh needs at least one transit domain, got {self.transit_domains}"
            )
        if self.stub_domains < 2:
            raise ValueError(
                f"a mesh needs at least two stub domains (a source and a "
                f"destination), got {self.stub_domains}"
            )
        if self.stub_domains > 254:
            raise ValueError(
                f"at most 254 stub domains are supported (one /16 each under "
                f"10.0.0.0/8), got {self.stub_domains}"
            )
        if self.transit_degree < 0:
            raise ValueError(f"transit_degree must be >= 0, got {self.transit_degree}")
        if self.path_count < 1:
            raise ValueError(f"path_count must be >= 1, got {self.path_count}")
        limit = self.stub_domains * (self.stub_domains - 1)
        if self.path_count > limit:
            raise ValueError(
                f"path_count {self.path_count} exceeds the {limit} distinct ordered "
                f"stub pairs available with {self.stub_domains} stub domains"
            )
        if self.backbone not in ("ring", "none"):
            raise ValueError(f"backbone must be 'ring' or 'none', got {self.backbone!r}")
        if self.stub_attachment not in ("random", "round-robin"):
            raise ValueError(
                f"stub_attachment must be 'random' or 'round-robin', "
                f"got {self.stub_attachment!r}"
            )


def _transit_edges(
    config: MeshTopologyConfig, rng: np.random.Generator
) -> list[tuple[int, int]]:
    """The transit-graph edge list (pairs of transit indices, each a < b)."""
    count = config.transit_domains
    edges: set[tuple[int, int]] = set()
    if config.backbone == "ring" and count >= 2:
        for index in range(count - 1):
            edges.add((index, index + 1))
        if count >= 3:
            edges.add((0, count - 1))
    target = int(round(count * config.transit_degree / 2.0))
    candidates = [
        (a, b)
        for a in range(count)
        for b in range(a + 1, count)
        if (a, b) not in edges
    ]
    missing = min(max(0, target - len(edges)), len(candidates))
    if missing:
        chosen = rng.choice(len(candidates), size=missing, replace=False)
        for position in sorted(int(entry) for entry in chosen):
            edges.add(candidates[position])
    return sorted(edges)


def _transit_route(
    adjacency: dict[int, list[int]], source: int, destination: int
) -> list[int] | None:
    """Shortest transit route (BFS, deterministic neighbor order), or ``None``."""
    if source == destination:
        return [source]
    parents: dict[int, int] = {source: source}
    frontier = [source]
    while frontier:
        next_frontier: list[int] = []
        for node in frontier:
            for neighbor in adjacency.get(node, ()):
                if neighbor in parents:
                    continue
                parents[neighbor] = node
                if neighbor == destination:
                    route = [destination]
                    while route[-1] != source:
                        route.append(parents[route[-1]])
                    return route[::-1]
                next_frontier.append(neighbor)
        frontier = next_frontier
    return None


def generate_mesh_topology(
    config: MeshTopologyConfig | None = None,
    seed: int | np.random.Generator | None = 0,
) -> tuple[Topology, tuple[HOPPath, ...]]:
    """Generate a seeded random transit/stub mesh and its HOP paths.

    The same ``(config, seed)`` always produces a byte-identical topology:
    the same domains, HOP ids, links, prefix pairs and path selections.
    Every domain-level adjacency contributes exactly one HOP per side, shared
    by all paths crossing it, so paths through a common transit domain share
    HOPs (the setting the mesh engines and the isolation-parity tests drive).

    Raises
    ------
    ValueError
        On degenerate configurations (see :class:`MeshTopologyConfig`) and
        when a selected prefix pair's stubs are disconnected in the transit
        graph (possible only with ``backbone="none"``).
    """
    config = config or MeshTopologyConfig()
    rng = make_rng(seed)
    transit_names = [f"T{index + 1}" for index in range(config.transit_domains)]
    stub_names = [f"S{index + 1}" for index in range(config.stub_domains)]

    edges = _transit_edges(config, rng)
    adjacency: dict[int, list[int]] = {index: [] for index in range(config.transit_domains)}
    for a, b in edges:
        adjacency[a].append(b)
        adjacency[b].append(a)
    for neighbors in adjacency.values():
        neighbors.sort()

    if config.stub_attachment == "round-robin":
        providers = [index % config.transit_domains for index in range(config.stub_domains)]
    else:
        providers = [
            int(rng.integers(0, config.transit_domains))
            for _ in range(config.stub_domains)
        ]

    # Materialize the topology: HOP ids are assigned by enumerating the
    # domain-level adjacencies in a fixed order (transit-transit edges first,
    # then stub uplinks), two HOPs per adjacency.
    topology = Topology()
    for name in transit_names + stub_names:
        topology.add_domain(name)
    hop_toward: dict[tuple[str, str], HOP] = {}
    next_hop_id = 1
    domain_edges = [(transit_names[a], transit_names[b]) for a, b in edges] + [
        (stub_names[index], transit_names[providers[index]])
        for index in range(config.stub_domains)
    ]
    for near_name, far_name in domain_edges:
        near_role = "edge" if near_name.startswith("S") else "egress"
        far_role = "edge" if far_name.startswith("S") else "ingress"
        near = topology.add_hop(next_hop_id, near_name, near_role)
        far = topology.add_hop(next_hop_id + 1, far_name, far_role)
        next_hop_id += 2
        hop_toward[(near_name, far_name)] = near
        hop_toward[(far_name, near_name)] = far
        topology.add_link(near, far)

    # Select path_count distinct ordered stub pairs (seeded permutation of the
    # deterministic enumeration), then route each through the transit graph.
    ordered_pairs = [
        (source, destination)
        for source in range(config.stub_domains)
        for destination in range(config.stub_domains)
        if source != destination
    ]
    permutation = rng.permutation(len(ordered_pairs))
    chosen = [ordered_pairs[int(position)] for position in permutation[: config.path_count]]

    paths: list[HOPPath] = []
    for source_stub, destination_stub in chosen:
        route = _transit_route(
            adjacency, providers[source_stub], providers[destination_stub]
        )
        if route is None:
            raise ValueError(
                f"prefix pair {stub_names[source_stub]} -> "
                f"{stub_names[destination_stub]} is disconnected: transit domains "
                f"{transit_names[providers[source_stub]]} and "
                f"{transit_names[providers[destination_stub]]} have no route "
                f"(backbone={config.backbone!r}, "
                f"transit_degree={config.transit_degree}); use backbone='ring' "
                f"or raise transit_degree"
            )
        domain_route = (
            [stub_names[source_stub]]
            + [transit_names[index] for index in route]
            + [stub_names[destination_stub]]
        )
        hops: list[HOP] = [hop_toward[(domain_route[0], domain_route[1])]]
        for position in range(1, len(domain_route) - 1):
            here = domain_route[position]
            hops.append(hop_toward[(here, domain_route[position - 1])])
            hops.append(hop_toward[(here, domain_route[position + 1])])
        hops.append(hop_toward[(domain_route[-1], domain_route[-2])])
        pair = PrefixPair(
            source=_stub_prefix(source_stub),
            destination=_stub_prefix(destination_stub),
        )
        paths.append(topology.add_path(pair, hops))
    return topology, tuple(paths)


def star_topology(path_count: int = 3) -> tuple[Topology, tuple[HOPPath, ...]]:
    """A core-and-spokes mesh: every path crosses the single transit core ``X``.

    Path ``i`` runs ``Si -> X -> Di`` through its own ingress/egress HOPs on
    ``X``'s perimeter.  Because all paths share the core but each leaves it
    toward a *different* neighbor, a lying ``X`` implicates a different link
    pair on every path — the cleanest setting for cross-path triangulation
    (see :func:`repro.analysis.localization.triangulate_suspects`).
    """
    if path_count < 1:
        raise ValueError(f"path_count must be >= 1, got {path_count}")
    if path_count > 127:
        raise ValueError(f"at most 127 star paths are supported, got {path_count}")
    topology = Topology()
    topology.add_domain("X")
    paths: list[HOPPath] = []
    next_hop_id = 1
    for index in range(path_count):
        source_name = f"S{index + 1}"
        destination_name = f"D{index + 1}"
        source = topology.add_hop(next_hop_id, source_name, "edge")
        core_in = topology.add_hop(next_hop_id + 1, "X", "ingress")
        core_out = topology.add_hop(next_hop_id + 2, "X", "egress")
        destination = topology.add_hop(next_hop_id + 3, destination_name, "edge")
        next_hop_id += 4
        topology.add_link(source, core_in)
        topology.add_link(core_out, destination)
        pair = PrefixPair(
            source=_stub_prefix(index),
            destination=_stub_prefix(path_count + index),
        )
        paths.append(topology.add_path(pair, [source, core_in, core_out, destination]))
    return topology, tuple(paths)
