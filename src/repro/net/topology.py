"""Domains, hand-off points (HOPs), HOP paths and the topology graph.

Terminology follows Section 2 of the paper:

* A **domain** is a contiguous network under one administrative entity (an
  edge network or a single AS).
* A **HOP** (hand-off point) is an ingress/egress point on a domain's
  perimeter; adjacent domains' HOPs are connected by inter-domain links.
* A **HOP path** is the sequence of HOPs traversed by all traffic between a
  given (source, destination) origin-prefix pair; per Assumption 1, it is
  stable over the time scales VPM operates on.

The running example (Figure 1) — domains ``S``, ``L``, ``X``, ``N``, ``D``
connected through HOPs 1..8 — is constructed by :func:`figure1_topology`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.net.clock import Clock, PerfectClock
from repro.net.link import InterDomainLink, LinkSpec
from repro.net.prefixes import PrefixPair

__all__ = ["Domain", "HOP", "HOPPath", "Topology", "figure1_topology"]


@dataclass(frozen=True)
class Domain:
    """An administrative domain (AS or edge network)."""

    name: str

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("domain name must be non-empty")

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True, eq=False)
class HOP:
    """A hand-off point on a domain's perimeter.

    ``hop_id`` is globally unique within a topology (the integer labels of
    Figure 1).  ``role`` records whether the HOP is the ingress or egress of
    its domain for the paths it serves; domains with a single HOP on a path
    (stub source/destination domains) use ``"edge"``.
    """

    hop_id: int
    domain: Domain
    role: str = "edge"
    clock: Clock = field(default_factory=PerfectClock)

    def __post_init__(self) -> None:
        if self.hop_id < 0:
            raise ValueError(f"hop_id must be non-negative, got {self.hop_id}")
        if self.role not in ("ingress", "egress", "edge"):
            raise ValueError(f"role must be ingress/egress/edge, got {self.role!r}")

    def __hash__(self) -> int:
        return hash(self.hop_id)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, HOP):
            return NotImplemented
        return self.hop_id == other.hop_id

    def __str__(self) -> str:
        return f"HOP{self.hop_id}({self.domain.name}/{self.role})"


@dataclass(frozen=True)
class HOPPath:
    """An ordered sequence of HOPs between a source and destination prefix.

    The path is the unit over which receipts are classified (its identity is
    carried in every receipt's ``PathID``).  Consecutive HOPs belonging to
    *different* domains are connected by inter-domain links; consecutive HOPs
    of the same domain delimit that domain's internal segment.
    """

    prefix_pair: PrefixPair
    hops: tuple[HOP, ...]

    def __post_init__(self) -> None:
        if len(self.hops) < 2:
            raise ValueError("a HOP path needs at least two HOPs")
        ids = [hop.hop_id for hop in self.hops]
        if len(set(ids)) != len(ids):
            raise ValueError(f"HOP path contains duplicate HOPs: {ids}")

    def __len__(self) -> int:
        return len(self.hops)

    def __iter__(self) -> Iterator[HOP]:
        return iter(self.hops)

    @property
    def domains(self) -> tuple[Domain, ...]:
        """The distinct domains traversed, in path order."""
        seen: list[Domain] = []
        for hop in self.hops:
            if not seen or seen[-1] != hop.domain:
                seen.append(hop.domain)
        return tuple(seen)

    def hops_of(self, domain: Domain | str) -> tuple[HOP, ...]:
        """Return the HOPs on this path that belong to ``domain``."""
        name = domain.name if isinstance(domain, Domain) else domain
        return tuple(hop for hop in self.hops if hop.domain.name == name)

    def domain_segments(self) -> list[tuple[Domain, HOP, HOP]]:
        """Return (domain, ingress HOP, egress HOP) for every transit domain.

        A transit domain exposes two HOPs on the path; its loss and delay are
        measured between them.  Stub domains (one HOP) are excluded since the
        path does not cross them edge-to-edge.
        """
        segments: list[tuple[Domain, HOP, HOP]] = []
        index = 0
        while index < len(self.hops) - 1:
            first = self.hops[index]
            second = self.hops[index + 1]
            if first.domain == second.domain:
                segments.append((first.domain, first, second))
                index += 2
            else:
                index += 1
        return segments

    def inter_domain_pairs(self) -> list[tuple[HOP, HOP]]:
        """Return the adjacent HOP pairs connected by inter-domain links."""
        pairs: list[tuple[HOP, HOP]] = []
        for first, second in zip(self.hops, self.hops[1:]):
            if first.domain != second.domain:
                pairs.append((first, second))
        return pairs

    def neighbor_of(self, domain: Domain | str, side: str) -> Domain | None:
        """Return the previous/next domain of ``domain`` on this path."""
        if side not in ("previous", "next"):
            raise ValueError(f"side must be 'previous' or 'next', got {side!r}")
        name = domain.name if isinstance(domain, Domain) else domain
        order = self.domains
        for index, entry in enumerate(order):
            if entry.name == name:
                if side == "previous":
                    return order[index - 1] if index > 0 else None
                return order[index + 1] if index + 1 < len(order) else None
        raise ValueError(f"domain {name!r} is not on this path")

    def __str__(self) -> str:
        chain = " -> ".join(str(hop.hop_id) for hop in self.hops)
        return f"HOPPath[{self.prefix_pair}: {chain}]"


class Topology:
    """A collection of domains, HOPs, inter-domain links and HOP paths."""

    def __init__(self) -> None:
        self._domains: dict[str, Domain] = {}
        self._hops: dict[int, HOP] = {}
        self._links: dict[tuple[int, int], InterDomainLink] = {}
        self._paths: dict[PrefixPair, HOPPath] = {}

    # -- construction -----------------------------------------------------

    def add_domain(self, name: str) -> Domain:
        """Create (or return an existing) domain by name."""
        if name not in self._domains:
            self._domains[name] = Domain(name)
        return self._domains[name]

    def add_hop(
        self,
        hop_id: int,
        domain: Domain | str,
        role: str = "edge",
        clock: Clock | None = None,
    ) -> HOP:
        """Register a HOP with a globally unique identifier."""
        if hop_id in self._hops:
            raise ValueError(f"HOP id {hop_id} already registered")
        owner = self.add_domain(domain) if isinstance(domain, str) else domain
        hop = HOP(hop_id=hop_id, domain=owner, role=role, clock=clock or PerfectClock())
        self._hops[hop_id] = hop
        return hop

    def add_link(
        self,
        first: HOP | int,
        second: HOP | int,
        link: InterDomainLink | None = None,
    ) -> InterDomainLink:
        """Connect two HOPs of different domains with an inter-domain link."""
        hop_a = self.hop(first)
        hop_b = self.hop(second)
        if hop_a.domain == hop_b.domain:
            raise ValueError(
                f"inter-domain links connect different domains; both HOPs are in "
                f"{hop_a.domain.name}"
            )
        edge = link or InterDomainLink(spec=LinkSpec())
        key = (min(hop_a.hop_id, hop_b.hop_id), max(hop_a.hop_id, hop_b.hop_id))
        self._links[key] = edge
        return edge

    def add_path(self, prefix_pair: PrefixPair, hops: Iterable[HOP | int]) -> HOPPath:
        """Register the HOP path followed by traffic of ``prefix_pair``."""
        resolved = tuple(self.hop(entry) for entry in hops)
        path = HOPPath(prefix_pair=prefix_pair, hops=resolved)
        self._paths[prefix_pair] = path
        return path

    # -- lookups ----------------------------------------------------------

    def domain(self, name: str) -> Domain:
        """Return a domain by name, raising ``KeyError`` if unknown."""
        return self._domains[name]

    def hop(self, ref: HOP | int) -> HOP:
        """Resolve a HOP reference (object or id) to the registered HOP."""
        if isinstance(ref, HOP):
            if ref.hop_id not in self._hops:
                raise KeyError(f"HOP {ref.hop_id} is not part of this topology")
            return self._hops[ref.hop_id]
        return self._hops[ref]

    def link_between(self, first: HOP | int, second: HOP | int) -> InterDomainLink:
        """Return the inter-domain link connecting two HOPs."""
        hop_a = self.hop(first)
        hop_b = self.hop(second)
        key = (min(hop_a.hop_id, hop_b.hop_id), max(hop_a.hop_id, hop_b.hop_id))
        return self._links[key]

    def path(self, prefix_pair: PrefixPair) -> HOPPath:
        """Return the HOP path registered for a prefix pair."""
        return self._paths[prefix_pair]

    @property
    def domains(self) -> tuple[Domain, ...]:
        return tuple(self._domains.values())

    @property
    def hops(self) -> tuple[HOP, ...]:
        return tuple(self._hops.values())

    @property
    def paths(self) -> tuple[HOPPath, ...]:
        return tuple(self._paths.values())


def figure1_topology(prefix_pair: PrefixPair | None = None) -> tuple[Topology, HOPPath]:
    """Build the Figure-1 topology and its main HOP path.

    Domain ``S`` sends to domain ``D`` via HOPs 1..8:
    ``S``(1) → ``L``(2, 3) → ``X``(4, 5) → ``N``(6, 7) → ``D``(8).

    Returns the topology and the registered path.
    """
    from repro.net.prefixes import OriginPrefix  # local import avoids cycle at import time

    pair = prefix_pair or PrefixPair(
        source=OriginPrefix.parse("10.1.0.0/16"),
        destination=OriginPrefix.parse("10.2.0.0/16"),
    )
    topology = Topology()
    layout = [
        (1, "S", "edge"),
        (2, "L", "ingress"),
        (3, "L", "egress"),
        (4, "X", "ingress"),
        (5, "X", "egress"),
        (6, "N", "ingress"),
        (7, "N", "egress"),
        (8, "D", "edge"),
    ]
    for hop_id, domain, role in layout:
        topology.add_hop(hop_id, domain, role)
    for first, second in ((1, 2), (3, 4), (5, 6), (7, 8)):
        topology.add_link(first, second)
    path = topology.add_path(pair, [hop_id for hop_id, _, _ in layout])
    return topology, path
