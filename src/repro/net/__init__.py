"""Network substrate: packets, batches, hashing, prefixes, clocks, links, topology."""

from repro.net.batch import PacketBatch
from repro.net.clock import Clock, ClockModel, PerfectClock
from repro.net.hashing import (
    PacketDigester,
    bob_hash,
    bob_hash_batch,
    fnv1a_64,
    fnv1a_64_batch,
    sample_function,
    sample_function_batch,
    splitmix64,
    splitmix64_batch,
)
from repro.net.link import InterDomainLink, LinkSpec
from repro.net.packet import Packet, PacketHeaders
from repro.net.prefixes import OriginPrefix, PrefixPair, random_prefix
from repro.net.topology import Domain, HOP, HOPPath, Topology

__all__ = [
    "Clock",
    "ClockModel",
    "Domain",
    "HOP",
    "HOPPath",
    "InterDomainLink",
    "LinkSpec",
    "OriginPrefix",
    "Packet",
    "PacketBatch",
    "PacketDigester",
    "PacketHeaders",
    "PerfectClock",
    "PrefixPair",
    "Topology",
    "bob_hash",
    "bob_hash_batch",
    "fnv1a_64",
    "fnv1a_64_batch",
    "random_prefix",
    "sample_function",
    "sample_function_batch",
    "splitmix64",
    "splitmix64_batch",
]
