"""Network substrate: packets, hashing, prefixes, clocks, links, topology."""

from repro.net.clock import Clock, ClockModel, PerfectClock
from repro.net.hashing import (
    PacketDigester,
    bob_hash,
    fnv1a_64,
    sample_function,
    splitmix64,
)
from repro.net.link import InterDomainLink, LinkSpec
from repro.net.packet import Packet, PacketHeaders
from repro.net.prefixes import OriginPrefix, PrefixPair, random_prefix
from repro.net.topology import Domain, HOP, HOPPath, Topology

__all__ = [
    "Clock",
    "ClockModel",
    "Domain",
    "HOP",
    "HOPPath",
    "InterDomainLink",
    "LinkSpec",
    "OriginPrefix",
    "Packet",
    "PacketDigester",
    "PacketHeaders",
    "PerfectClock",
    "PrefixPair",
    "Topology",
    "bob_hash",
    "fnv1a_64",
    "random_prefix",
    "sample_function",
    "splitmix64",
]
