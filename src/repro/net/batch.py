"""Columnar packet batches — the fast-path twin of :class:`repro.net.packet.Packet`.

The scalar pipeline models each packet as a frozen dataclass; at millions of
packets per run the interpreter overhead of constructing, hashing and
dispatching those objects dominates everything else.  A :class:`PacketBatch`
stores the same information column-wise in NumPy arrays, which is what the
vectorized digest kernels (:meth:`repro.net.hashing.PacketDigester.digest_batch`)
and the batch collector path (:meth:`repro.core.hop.HOPCollector.observe_batch`)
consume.

A batch is value-equivalent to a list of packets: ``PacketBatch.from_packets``
and :meth:`PacketBatch.to_packets` round-trip exactly, and digests computed on
either representation are bit-for-bit identical (property-tested in
``tests/property/test_prop_batch_parity.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.net.packet import HEADER_PACK_BYTES, Packet, PacketHeaders, pack_header_columns

__all__ = ["PacketBatch"]


@dataclass
class PacketBatch:
    """A sequence of packets stored column-wise.

    All arrays have the same length ``n``; ``payload`` is a ``(n, P)`` uint8
    matrix with one fixed payload width per batch (traffic generators emit
    uniform payload sizes, and the digest only ever reads a fixed prefix).

    Attributes mirror :class:`repro.net.packet.Packet` field-for-field; the
    simulation-only bookkeeping (``uid``, ``send_time``, ``flow_id``) rides
    along so ground truth can be tracked without materializing objects.
    """

    src_ip: np.ndarray
    dst_ip: np.ndarray
    src_port: np.ndarray
    dst_port: np.ndarray
    protocol: np.ndarray
    ip_id: np.ndarray
    length: np.ndarray
    payload: np.ndarray
    uid: np.ndarray
    send_time: np.ndarray
    flow_id: np.ndarray

    # Digest memoization, keyed by (seed, payload_prefix) — the columnar twin
    # of Packet._invariant_cache (every HOP of a path shares the same digests).
    _digest_cache: dict = field(default_factory=dict, repr=False, compare=False)
    # Batches derived via take() remember their source rows so digests are
    # computed once on the root batch and sliced, mirroring how the scalar
    # path memoizes digests on Packet objects shared across HOPs.
    _digest_root: "PacketBatch | None" = field(default=None, repr=False, compare=False)
    _root_indices: np.ndarray | None = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        self.src_ip = np.ascontiguousarray(self.src_ip, dtype=np.uint32)
        self.dst_ip = np.ascontiguousarray(self.dst_ip, dtype=np.uint32)
        self.src_port = np.ascontiguousarray(self.src_port, dtype=np.uint16)
        self.dst_port = np.ascontiguousarray(self.dst_port, dtype=np.uint16)
        self.protocol = np.ascontiguousarray(self.protocol, dtype=np.uint8)
        self.ip_id = np.ascontiguousarray(self.ip_id, dtype=np.uint16)
        self.length = np.ascontiguousarray(self.length, dtype=np.uint16)
        payload = np.ascontiguousarray(self.payload, dtype=np.uint8)
        if payload.ndim != 2:
            raise ValueError(f"payload must be a 2-D byte matrix, got shape {payload.shape}")
        self.payload = payload
        self.uid = np.ascontiguousarray(self.uid, dtype=np.int64)
        self.send_time = np.ascontiguousarray(self.send_time, dtype=np.float64)
        self.flow_id = np.ascontiguousarray(self.flow_id, dtype=np.int64)
        count = len(self.src_ip)
        for name in (
            "dst_ip", "src_port", "dst_port", "protocol", "ip_id",
            "length", "payload", "uid", "send_time", "flow_id",
        ):
            if len(getattr(self, name)) != count:
                raise ValueError(f"column {name!r} has length {len(getattr(self, name))}, expected {count}")

    def __len__(self) -> int:
        return len(self.src_ip)

    @property
    def sizes(self) -> np.ndarray:
        """Per-packet total sizes in bytes (from the IP length field)."""
        return self.length

    @property
    def total_bytes(self) -> int:
        """Sum of packet sizes across the batch."""
        return int(self.length.sum(dtype=np.int64))

    # -- construction / conversion -----------------------------------------------

    @classmethod
    def from_packets(cls, packets: Sequence[Packet]) -> "PacketBatch":
        """Build a columnar batch from packet objects (uniform payload length)."""
        payload_lengths = {len(packet.payload) for packet in packets}
        if len(payload_lengths) > 1:
            raise ValueError(
                f"packets in a batch must share one payload length, got {sorted(payload_lengths)}"
            )
        width = payload_lengths.pop() if payload_lengths else 0
        count = len(packets)
        payload = np.zeros((count, width), dtype=np.uint8)
        for index, packet in enumerate(packets):
            if width:
                payload[index] = np.frombuffer(packet.payload, dtype=np.uint8)
        return cls(
            src_ip=np.fromiter((p.headers.src_ip for p in packets), np.uint32, count),
            dst_ip=np.fromiter((p.headers.dst_ip for p in packets), np.uint32, count),
            src_port=np.fromiter((p.headers.src_port for p in packets), np.uint16, count),
            dst_port=np.fromiter((p.headers.dst_port for p in packets), np.uint16, count),
            protocol=np.fromiter((p.headers.protocol for p in packets), np.uint8, count),
            ip_id=np.fromiter((p.headers.ip_id for p in packets), np.uint16, count),
            length=np.fromiter((p.headers.length for p in packets), np.uint16, count),
            payload=payload,
            uid=np.fromiter((p.uid for p in packets), np.int64, count),
            send_time=np.fromiter((p.send_time for p in packets), np.float64, count),
            flow_id=np.fromiter((p.flow_id for p in packets), np.int64, count),
        )

    def to_packets(self) -> list[Packet]:
        """Materialize the batch as packet objects (the slow representation)."""
        payload_rows = [row.tobytes() for row in self.payload]
        return [
            Packet(
                headers=PacketHeaders(
                    src_ip=int(self.src_ip[index]),
                    dst_ip=int(self.dst_ip[index]),
                    src_port=int(self.src_port[index]),
                    dst_port=int(self.dst_port[index]),
                    protocol=int(self.protocol[index]),
                    ip_id=int(self.ip_id[index]),
                    length=int(self.length[index]),
                ),
                payload=payload_rows[index],
                uid=int(self.uid[index]),
                send_time=float(self.send_time[index]),
                flow_id=int(self.flow_id[index]),
            )
            for index in range(len(self))
        ]

    def packet_at(self, index: int) -> Packet:
        """Materialize a single packet (for spot checks and error messages)."""
        return self.take(np.asarray([index])).to_packets()[0]

    def take(self, indices: np.ndarray) -> "PacketBatch":
        """Return a new batch holding the selected rows (in the given order).

        The result keeps a reference to its root batch, so digests computed
        through :meth:`repro.net.hashing.PacketDigester.digest_batch` are
        shared across every batch derived from the same source (the several
        HOPs of a simulated path hash each packet only once).
        """
        indices = np.asarray(indices)
        root = self if self._digest_root is None else self._digest_root
        root_indices = (
            indices if self._root_indices is None else self._root_indices[indices]
        )
        return PacketBatch(
            src_ip=self.src_ip[indices],
            dst_ip=self.dst_ip[indices],
            src_port=self.src_port[indices],
            dst_port=self.dst_port[indices],
            protocol=self.protocol[indices],
            ip_id=self.ip_id[indices],
            length=self.length[indices],
            payload=self.payload[indices],
            uid=self.uid[indices],
            send_time=self.send_time[indices],
            flow_id=self.flow_id[indices],
            _digest_root=root,
            _root_indices=root_indices,
        )

    @classmethod
    def concat(cls, parts: Sequence["PacketBatch"]) -> "PacketBatch":
        """Concatenate batches row-wise (payload widths must match).

        Digests already computed for the parts (or for their take-roots) are
        carried over: for every digest key cached on *all* parts' roots, the
        result's cache holds the concatenated digest array, so downstream HOPs
        never re-hash a packet that some earlier stage already digested.  This
        is what preserves the one-hash-per-packet property when the streaming
        engine's holdback buffers splice rows from adjacent chunks.
        """
        parts = [part for part in parts]
        if not parts:
            raise ValueError("cannot concatenate an empty sequence of batches")
        if len(parts) == 1:
            return parts[0]
        widths = {part.payload.shape[1] for part in parts}
        if len(widths) > 1:
            raise ValueError(
                f"batches to concatenate must share one payload width, got {sorted(widths)}"
            )
        merged = cls(
            src_ip=np.concatenate([part.src_ip for part in parts]),
            dst_ip=np.concatenate([part.dst_ip for part in parts]),
            src_port=np.concatenate([part.src_port for part in parts]),
            dst_port=np.concatenate([part.dst_port for part in parts]),
            protocol=np.concatenate([part.protocol for part in parts]),
            ip_id=np.concatenate([part.ip_id for part in parts]),
            length=np.concatenate([part.length for part in parts]),
            payload=np.concatenate([part.payload for part in parts]),
            uid=np.concatenate([part.uid for part in parts]),
            send_time=np.concatenate([part.send_time for part in parts]),
            flow_id=np.concatenate([part.flow_id for part in parts]),
        )
        # Merge digest caches for keys every part can supply without hashing.
        shared_keys = None
        for part in parts:
            root = part._digest_root if part._digest_root is not None else part
            keys = set(part._digest_cache) | set(root._digest_cache)
            shared_keys = keys if shared_keys is None else (shared_keys & keys)
        for key in shared_keys or ():
            merged._digest_cache[key] = np.concatenate(
                [part._cached_digests(key) for part in parts]
            )
        return merged

    def detach_root(self) -> "PacketBatch":
        """Materialize inherited digest caches and drop the take-root link.

        A ``take()`` child normally keeps its source batch alive so digests
        are computed once per root.  Long-lived holdback buffers (the
        streaming engine's sort reservoirs) call this so a few retained rows
        do not pin a whole source chunk — the child's own cache is filled by
        slicing the root's, then the reference is released.  Returns ``self``.
        """
        root = self._digest_root
        if root is not None:
            for key in set(root._digest_cache) - set(self._digest_cache):
                self._digest_cache[key] = root._digest_cache[key][self._root_indices]
            self._digest_root = None
            self._root_indices = None
        return self

    def _cached_digests(self, key) -> np.ndarray:
        """Digests for ``key`` from this batch's cache or its take-root's."""
        cached = self._digest_cache.get(key)
        if cached is not None:
            return cached
        root = self._digest_root if self._digest_root is not None else self
        return root._digest_cache[key][self._root_indices] if root is not self else root._digest_cache[key]

    def with_send_times(self, send_times: np.ndarray) -> "PacketBatch":
        """Return a copy of the batch with different source send times."""
        clone = self.take(np.arange(len(self)))
        clone.send_time = np.ascontiguousarray(send_times, dtype=np.float64)
        if len(clone.send_time) != len(clone):
            raise ValueError("send_times length does not match the batch")
        return clone

    # -- digest material -----------------------------------------------------------

    def invariant_matrix(self, payload_prefix: int = 8) -> np.ndarray:
        """Columnar twin of :meth:`repro.net.packet.Packet.invariant_bytes`.

        Rows are the packed invariant headers followed by the first
        ``payload_prefix`` payload bytes — byte-for-byte what the scalar path
        hashes (payloads shorter than the prefix are truncated identically).
        """
        if payload_prefix < 0:
            raise ValueError(f"payload_prefix must be >= 0, got {payload_prefix}")
        prefix = min(payload_prefix, self.payload.shape[1])
        matrix = np.empty((len(self), HEADER_PACK_BYTES + prefix), dtype=np.uint8)
        matrix[:, :HEADER_PACK_BYTES] = pack_header_columns(
            self.src_ip,
            self.dst_ip,
            self.src_port,
            self.dst_port,
            self.protocol,
            self.ip_id,
            self.length,
        )
        if prefix:
            matrix[:, HEADER_PACK_BYTES:] = self.payload[:, :prefix]
        return matrix

    def __repr__(self) -> str:
        return (
            f"PacketBatch(n={len(self)}, payload_width={self.payload.shape[1]}, "
            f"span={self.send_time[-1] - self.send_time[0]:.4f}s)"
            if len(self)
            else "PacketBatch(n=0)"
        )
