"""Inter-domain links.

An inter-domain link connects a HOP of one domain to a HOP of a neighboring
domain.  Per the paper, such a link "is considered faulty when it introduces
loss or delay beyond a known specification"; the specification relevant to
receipt consistency is ``MaxDiff`` — the agreed upper bound on the timestamp
difference the two HOPs should observe for the same packet.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.util.rng import RNGStateMixin, make_rng
from repro.util.validation import check_non_negative, check_probability

__all__ = ["LinkSpec", "InterDomainLink"]


@dataclass(frozen=True)
class LinkSpec:
    """The contractual specification of an inter-domain link.

    Attributes
    ----------
    max_diff:
        ``MaxDiff`` (seconds): the agreed bound on the timestamp difference
        between the delivering HOP and the receiving HOP for the same packet.
        It subsumes both the link's propagation delay and the residual clock
        offset between the two adjacent HOPs.
    nominal_delay:
        The link's nominal one-way propagation + transmission delay (seconds).
    """

    max_diff: float = 1e-3
    nominal_delay: float = 100e-6

    def __post_init__(self) -> None:
        check_non_negative("max_diff", self.max_diff)
        check_non_negative("nominal_delay", self.nominal_delay)


@dataclass
class InterDomainLink(RNGStateMixin):
    """A (possibly faulty) inter-domain link between two adjacent HOPs.

    The link applies its nominal delay plus optional jitter to every packet,
    and may drop packets when configured as faulty.  A *healthy* link stays
    within its :class:`LinkSpec`; a faulty one exceeds ``MaxDiff`` or loses
    packets, which is exactly the ambiguity the paper's consistency check
    surfaces (an inconsistency is "either a lie or a faulty inter-domain
    link").

    Attributes
    ----------
    spec:
        The contractual :class:`LinkSpec`.
    loss_rate:
        Probability of dropping each packet on the link (0 for healthy links).
    excess_delay:
        Additional delay (seconds) applied on top of the nominal delay; a
        value pushing total delay beyond ``max_diff`` makes the link faulty.
    jitter_std:
        Standard deviation of per-packet delay jitter (seconds).
    """

    spec: LinkSpec = field(default_factory=LinkSpec)
    loss_rate: float = 0.0
    excess_delay: float = 0.0
    jitter_std: float = 0.0
    seed: int | np.random.Generator | None = None

    def __post_init__(self) -> None:
        check_probability("loss_rate", self.loss_rate)
        check_non_negative("excess_delay", self.excess_delay)
        check_non_negative("jitter_std", self.jitter_std)
        self._rng = make_rng(self.seed)

    @property
    def is_healthy(self) -> bool:
        """Whether the link respects its specification in expectation."""
        expected_delay = self.spec.nominal_delay + self.excess_delay
        return self.loss_rate == 0.0 and expected_delay <= self.spec.max_diff

    def transfer(self, arrival_time: float) -> float | None:
        """Carry one packet handed off at ``arrival_time`` (true time).

        Returns the true time at which the packet arrives at the far HOP, or
        ``None`` if the link dropped the packet.
        """
        if self.loss_rate > 0.0 and self._rng.random() < self.loss_rate:
            return None
        delay = self.spec.nominal_delay + self.excess_delay
        if self.jitter_std > 0.0:
            delay += abs(float(self._rng.normal(0.0, self.jitter_std)))
        return arrival_time + delay

    def transfer_batch(self, arrival_times: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized :meth:`transfer` over an array of hand-off times.

        Returns ``(delivered_mask, far_times)`` where ``far_times`` holds the
        arrival times of the delivered packets only (in hand-off order).  When
        loss and jitter are both active the per-packet draws interleave, so
        that case falls back to the scalar loop to keep the RNG stream (and
        therefore the simulated outcome) identical either way.
        """
        times = np.asarray(arrival_times, dtype=np.float64)
        count = len(times)
        base_delay = self.spec.nominal_delay + self.excess_delay
        if self.loss_rate > 0.0 and self.jitter_std > 0.0:
            delivered = np.empty(count, dtype=bool)
            far_times = []
            for index in range(count):
                result = self.transfer(float(times[index]))
                delivered[index] = result is not None
                if result is not None:
                    far_times.append(result)
            return delivered, np.asarray(far_times, dtype=np.float64)
        if self.loss_rate > 0.0:
            delivered = ~(self._rng.random(count) < self.loss_rate)
        else:
            delivered = np.ones(count, dtype=bool)
        survivors = times[delivered]
        if self.jitter_std > 0.0:
            survivors = survivors + (
                base_delay + np.abs(self._rng.normal(0.0, self.jitter_std, size=len(survivors)))
            )
        else:
            survivors = survivors + base_delay
        return delivered, survivors
