"""Clock models.

VPM "does not require that HOPs have synchronized clocks", but a domain's
delay performance is estimated from timestamps reported by its own HOPs, and
adjacent HOPs from neighboring domains must stay within the advertised
``MaxDiff`` of one another.  These classes model per-HOP clocks with offset,
drift and jitter so the reproduction can study what imperfect synchronization
does to estimation accuracy and to receipt consistency.

All clocks map a *true* virtual time (seconds, as maintained by the
simulation engine) to the *local* timestamp a HOP would write into a receipt.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.rng import RNGStateMixin, make_rng
from repro.util.validation import check_non_negative

__all__ = ["Clock", "PerfectClock", "ClockModel", "ntp_synchronized_clock"]


class Clock(RNGStateMixin):
    """Base class: a mapping from true time to a HOP's local timestamp."""

    def read(self, true_time: float) -> float:
        """Return the local timestamp the clock reports at ``true_time``."""
        raise NotImplementedError

    def read_batch(self, true_times: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`read` over an array of true times.

        The base implementation loops so every subclass is batch-capable;
        the built-in clocks override it with array arithmetic that draws the
        same RNG stream as repeated scalar reads.
        """
        times = np.asarray(true_times, dtype=np.float64)
        return np.asarray([self.read(float(value)) for value in times], dtype=np.float64)

    def __call__(self, true_time: float) -> float:
        return self.read(true_time)


@dataclass(frozen=True)
class PerfectClock(Clock):
    """A clock perfectly synchronized to true time (offset and drift zero)."""

    def read(self, true_time: float) -> float:
        return float(true_time)

    def read_batch(self, true_times: np.ndarray) -> np.ndarray:
        return np.asarray(true_times, dtype=np.float64).copy()


class ClockModel(Clock):
    """A clock with constant offset, linear drift and per-read jitter.

    Parameters
    ----------
    offset:
        Constant offset (seconds) relative to true time.  NTP over a WAN keeps
        this within roughly a millisecond, per the paper's discussion.
    drift_ppm:
        Linear drift in parts per million (crystal oscillators are typically
        within tens of ppm).
    jitter_std:
        Standard deviation (seconds) of independent per-read noise, modelling
        timestamping granularity in the router data plane.
    seed:
        Seed for the jitter stream; irrelevant when ``jitter_std`` is zero.
    """

    def __init__(
        self,
        offset: float = 0.0,
        drift_ppm: float = 0.0,
        jitter_std: float = 0.0,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        self.offset = float(offset)
        self.drift_ppm = float(drift_ppm)
        self.jitter_std = check_non_negative("jitter_std", float(jitter_std))
        self._rng = make_rng(seed)

    def read(self, true_time: float) -> float:
        local = true_time + self.offset + true_time * self.drift_ppm * 1e-6
        if self.jitter_std > 0.0:
            local += float(self._rng.normal(0.0, self.jitter_std))
        return local

    def read_batch(self, true_times: np.ndarray) -> np.ndarray:
        times = np.asarray(true_times, dtype=np.float64)
        # Same operation order as the scalar read, for bit-identical floats.
        local = times + self.offset + times * self.drift_ppm * 1e-6
        if self.jitter_std > 0.0:
            # Generator.normal draws the same stream whether requested one at
            # a time or as an array, so this matches repeated scalar reads.
            local = local + self._rng.normal(0.0, self.jitter_std, size=times.shape)
        return local

    def __repr__(self) -> str:
        return (
            f"ClockModel(offset={self.offset!r}, drift_ppm={self.drift_ppm!r}, "
            f"jitter_std={self.jitter_std!r})"
        )


def ntp_synchronized_clock(
    rng: np.random.Generator | int | None = None,
    max_offset: float = 1e-3,
    jitter_std: float = 5e-6,
) -> ClockModel:
    """Return a clock representative of an NTP-synchronized border router.

    The paper notes that millisecond-level synchronization is "achievable with
    NTP"; we draw a uniform offset within ``±max_offset`` and add a few
    microseconds of timestamping jitter.
    """
    generator = make_rng(rng)
    check_non_negative("max_offset", max_offset)
    offset = float(generator.uniform(-max_offset, max_offset))
    drift = float(generator.uniform(-20.0, 20.0))
    return ClockModel(offset=offset, drift_ppm=drift, jitter_std=jitter_std, seed=generator)
