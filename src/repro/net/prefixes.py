"""Origin prefixes and prefix pairs.

VPM names HOP paths "according to their source and destination routing
prefixes (that is, origin prefixes as advertised in BGP)".  This module
provides a small, dependency-free model of IPv4 origin prefixes and the
(source, destination) prefix pair that keys a HOP path.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.rng import make_rng

__all__ = ["OriginPrefix", "PrefixPair", "random_prefix", "random_prefix_pair", "ip_to_int", "int_to_ip"]


def ip_to_int(address: str) -> int:
    """Convert a dotted-quad IPv4 address to a 32-bit integer.

    >>> ip_to_int("10.0.0.1")
    167772161
    """
    parts = address.split(".")
    if len(parts) != 4:
        raise ValueError(f"not a dotted-quad IPv4 address: {address!r}")
    value = 0
    for part in parts:
        octet = int(part)
        if not 0 <= octet <= 255:
            raise ValueError(f"octet out of range in address {address!r}")
        value = (value << 8) | octet
    return value


def int_to_ip(value: int) -> str:
    """Convert a 32-bit integer to a dotted-quad IPv4 address.

    >>> int_to_ip(167772161)
    '10.0.0.1'
    """
    if not 0 <= value <= 0xFFFFFFFF:
        raise ValueError(f"value out of IPv4 range: {value!r}")
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


@dataclass(frozen=True, order=True)
class OriginPrefix:
    """An IPv4 origin prefix as advertised in BGP (e.g. ``10.1.0.0/16``)."""

    network: int
    length: int

    def __post_init__(self) -> None:
        if not 0 <= self.length <= 32:
            raise ValueError(f"prefix length must be in [0, 32], got {self.length}")
        if not 0 <= self.network <= 0xFFFFFFFF:
            raise ValueError(f"network must be a 32-bit value, got {self.network}")
        mask = self.mask
        if self.network & ~mask & 0xFFFFFFFF:
            raise ValueError(
                f"network {int_to_ip(self.network)} has host bits set for /{self.length}"
            )

    @property
    def mask(self) -> int:
        """The 32-bit network mask for this prefix length."""
        if self.length == 0:
            return 0
        return (0xFFFFFFFF << (32 - self.length)) & 0xFFFFFFFF

    @classmethod
    def parse(cls, text: str) -> "OriginPrefix":
        """Parse ``'a.b.c.d/len'`` notation.

        >>> OriginPrefix.parse("10.1.0.0/16")
        OriginPrefix(network=167837696, length=16)
        """
        try:
            address, length_text = text.split("/")
        except ValueError as exc:
            raise ValueError(f"expected 'address/length', got {text!r}") from exc
        return cls(network=ip_to_int(address), length=int(length_text))

    def contains(self, address: int | str) -> bool:
        """Return whether a host address falls inside this prefix."""
        value = ip_to_int(address) if isinstance(address, str) else address
        return (value & self.mask) == self.network

    def host(self, index: int) -> int:
        """Return the ``index``-th host address inside the prefix (wrapping)."""
        host_bits = 32 - self.length
        span = 1 << host_bits
        return self.network | (index % span)

    def __str__(self) -> str:
        return f"{int_to_ip(self.network)}/{self.length}"


@dataclass(frozen=True, order=True)
class PrefixPair:
    """A (source, destination) origin-prefix pair — the key of a HOP path."""

    source: OriginPrefix
    destination: OriginPrefix

    def __str__(self) -> str:
        return f"{self.source}->{self.destination}"

    def matches(self, src_address: int, dst_address: int) -> bool:
        """Return whether a packet with these addresses belongs to the pair."""
        return self.source.contains(src_address) and self.destination.contains(dst_address)


def random_prefix(
    rng: np.random.Generator | int | None = None, length: int = 16
) -> OriginPrefix:
    """Draw a uniformly random origin prefix of the given length."""
    generator = make_rng(rng)
    if not 0 <= length <= 32:
        raise ValueError(f"prefix length must be in [0, 32], got {length}")
    network_bits = int(generator.integers(0, 1 << length)) if length else 0
    network = network_bits << (32 - length)
    return OriginPrefix(network=network, length=length)


def random_prefix_pair(
    rng: np.random.Generator | int | None = None, length: int = 16
) -> PrefixPair:
    """Draw a random (source, destination) prefix pair with distinct prefixes."""
    generator = make_rng(rng)
    source = random_prefix(generator, length)
    destination = random_prefix(generator, length)
    while destination == source:
        destination = random_prefix(generator, length)
    return PrefixPair(source=source, destination=destination)
