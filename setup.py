"""Setuptools shim.

The canonical metadata lives in ``pyproject.toml`` (PEP 621); this file exists
so the package can also be installed in environments without the ``wheel``
package (where ``pip install -e .`` cannot build an editable wheel) via::

    python setup.py develop
"""

from setuptools import setup

setup()
