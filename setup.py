"""Package metadata for the VPM reproduction.

Installs the ``repro`` package from ``src/`` and the ``repro`` console script
(campaign run/resume/report/list, the ``repro serve`` measurement service,
and golden-fixture regeneration).  The ``dev``
extra pins the tooling CI uses (pytest + benchmark/hypothesis plugins and
ruff) so ``pip install -e ".[dev]"`` reproduces the exact environment of
``.github/workflows/ci.yml`` locally.
"""

from setuptools import find_packages, setup

setup(
    name="repro-vpm",
    version="1.3.0",
    description=(
        "Reproduction of 'Verifiable network-performance measurements' "
        "(ArgyrakiMS10): HOP receipts, bias-resistant delay sampling and "
        "tunable aggregation, with a vectorized batch fast path, a "
        "declarative experiment API, checkpointable long-horizon "
        "campaigns with a durable run store, and a stdlib-only measurement "
        "service (REST API, crash-safe job queue, browser dashboard)"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    install_requires=[
        "numpy>=1.24",
    ],
    extras_require={
        "dev": [
            "pytest>=7.0",
            "pytest-benchmark>=4.0",
            "hypothesis>=6.0",
            "ruff>=0.4",
        ],
    },
    entry_points={
        "console_scripts": [
            "repro=repro.cli:main",
        ],
    },
)
