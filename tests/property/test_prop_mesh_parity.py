"""Property tests for mesh/isolation parity and mesh streaming parity.

The mesh workload layer rests on two exactness claims, hammered here with
hypothesis-generated topologies, path sets, traffic and chunk sizes:

* **mesh == isolation, per path** — running N paths together through a
  :class:`~repro.simulation.mesh.MeshScenario` + shared-collector
  :class:`~repro.core.protocol.MeshSession` and slicing each shared HOP's
  report down to one prefix pair yields receipts *bit-identical* (including
  ``time_sum``: per-path sub-streams feed the samplers/aggregators the same
  arrays in the same order) to running that path alone through
  :class:`PathScenario` + :class:`VPMSession` with identically seeded
  conditions.  CBR traffic at one shared rate manufactures exact timestamp
  ties at shared HOPs — the stable merge must keep per-path order intact
  through them.

* **mesh streaming == mesh batch** — the chunked lockstep mesh engine
  (:class:`~repro.engine.mesh.MeshRunner`), at any chunk size, reproduces the
  batch mesh run's receipts (``time_sum`` at its documented
  10-significant-digit tolerance, everything else exact).
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api.runner import _build_mesh_cell
from repro.api.spec import (
    ConditionSpec,
    HOPSpec,
    MeshSpec,
    ProtocolSpec,
    TopologySpec,
    TrafficSpec,
)
from repro.core.protocol import VPMSession
from repro.engine.mesh import MeshRunner, run_mesh_batch
from repro.reporting.dissemination import report_for_pair
from repro.simulation.mesh import MeshScenario
from repro.simulation.scenario import PathScenario
from repro.traffic.trace import SyntheticTrace

from tests.conformance.canon import canonical_receipts

# Aggressive knobs so a few hundred packets exercise sampler buffers,
# aggregate boundaries and AggTrans windows at every HOP.
_PROTOCOL = ProtocolSpec(
    default=HOPSpec(sampling_rate=0.2, aggregate_size=64, reorder_window=0.004)
)

_DELAY_CHOICES = (
    ("constant", {"delay": 0.9e-3}),
    ("jitter", {"base_delay": 0.8e-3, "jitter_std": 0.3e-3}),
)
_LOSS_CHOICES = (
    ("none", {}),
    ("bernoulli", {"loss_rate": 0.06}),
)
_REORDERING_CHOICES = (
    ("none", {}),
    ("window", {"window": 0.3e-3, "reorder_probability": 0.15}),
)


@st.composite
def mesh_case(draw):
    """A topology spec + per-transit-domain conditions + traffic + chunking."""
    if draw(st.booleans()):
        topology = TopologySpec(
            kind="star",
            params={"path_count": draw(st.integers(min_value=2, max_value=3))},
            seed=0,
        )
    else:
        stub_domains = draw(st.integers(min_value=2, max_value=4))
        path_count = draw(
            st.integers(min_value=1, max_value=min(4, stub_domains * (stub_domains - 1)))
        )
        topology = TopologySpec(
            kind="mesh-random",
            params={
                "transit_domains": draw(st.integers(min_value=1, max_value=3)),
                "stub_domains": stub_domains,
                "transit_degree": draw(
                    st.sampled_from([1.0, 2.0, 3.0])
                ),
                "path_count": path_count,
            },
            seed=draw(st.integers(min_value=0, max_value=10_000)),
        )
    # CBR at a shared rate gives every path the identical send-time grid —
    # exact timestamp ties wherever paths share a HOP.
    arrival = draw(st.sampled_from(["poisson", "cbr"]))
    traffic = TrafficSpec(
        workload=None,
        packet_count=draw(st.integers(min_value=80, max_value=220)),
        packets_per_second=50_000.0,
        arrival_process=arrival,
    )
    condition_seed = draw(st.integers(min_value=0, max_value=3))
    chunk_size = draw(st.integers(min_value=32, max_value=160))
    root_seed = draw(st.integers(min_value=0, max_value=10_000))
    return topology, traffic, condition_seed, chunk_size, root_seed


def _spec_for(topology, traffic, condition_seed, root_seed) -> MeshSpec:
    """Build the mesh spec, with conditions on every transit domain."""
    built_topology, paths = topology.build(root_seed)
    scenario = MeshScenario(built_topology, paths, seed=root_seed)
    conditions = {}
    for offset, name in enumerate(scenario.transit_domain_names()):
        pick = condition_seed + offset
        delay, delay_params = _DELAY_CHOICES[pick % len(_DELAY_CHOICES)]
        loss, loss_params = _LOSS_CHOICES[pick % len(_LOSS_CHOICES)]
        reordering, reordering_params = _REORDERING_CHOICES[
            pick % len(_REORDERING_CHOICES)
        ]
        conditions[name] = ConditionSpec(
            delay=delay,
            delay_params=delay_params,
            loss=loss,
            loss_params=loss_params,
            reordering=reordering,
            reordering_params=reordering_params,
        )
    return MeshSpec(
        name="prop-mesh",
        seed=root_seed,
        topology=topology,
        traffic=traffic,
        conditions=conditions,
        protocol=_PROTOCOL,
    )


class TestMeshIsolationParity:
    @settings(max_examples=20, deadline=None)
    @given(mesh_case())
    def test_per_path_receipts_byte_match_isolated_runs(self, case):
        topology, traffic, condition_seed, _, root_seed = case
        spec = _spec_for(topology, traffic, condition_seed, root_seed)
        cell = _build_mesh_cell(spec.to_dict())
        run_mesh_batch(cell)
        mesh_reports = cell.session._last_reports

        for index, path in enumerate(cell.scenario.paths):
            isolated = PathScenario(cell.scenario.topology, path, seed=spec.seed)
            for name in sorted(spec.conditions):
                if any(seg[0].name == name for seg in path.domain_segments()):
                    isolated.configure_domain(
                        name,
                        spec.conditions[name].build(
                            spec.seed, domain=f"{name}.path{index}"
                        ),
                    )
            trace = SyntheticTrace(
                config=spec.traffic.trace_config(),
                prefix_pair=path.prefix_pair,
                seed=spec.traffic_seed(index),
            )
            session = VPMSession(
                path,
                configs=spec.protocol.build_configs(path),
                max_diff=spec.protocol.max_diff,
            )
            isolated_reports = session.run(isolated.run_batch(trace.packet_batch()))

            for hop in path.hops:
                mesh_slice = report_for_pair(
                    mesh_reports[hop.hop_id], path.prefix_pair
                )
                isolated_report = isolated_reports[hop.hop_id]
                # Bit-exact, time_sum included: the shared collector feeds each
                # per-path sampler/aggregator the identical sub-arrays.
                assert mesh_slice.sample_receipts == isolated_report.sample_receipts, (
                    f"sample receipts diverged at shared HOP {hop.hop_id} "
                    f"for path {path.prefix_pair}"
                )
                assert (
                    mesh_slice.aggregate_receipts == isolated_report.aggregate_receipts
                ), (
                    f"aggregate receipts diverged at shared HOP {hop.hop_id} "
                    f"for path {path.prefix_pair}"
                )


class TestMeshStreamingParity:
    @settings(max_examples=15, deadline=None)
    @given(mesh_case())
    def test_streaming_mesh_matches_batch_mesh_for_any_chunking(self, case):
        topology, traffic, condition_seed, chunk_size, root_seed = case
        spec = _spec_for(topology, traffic, condition_seed, root_seed)

        batch_cell = _build_mesh_cell(spec.to_dict())
        run_mesh_batch(batch_cell)
        batch_receipts = canonical_receipts(batch_cell.session._last_reports)

        runner = MeshRunner(
            _build_mesh_cell(spec.to_dict()), chunk_size=chunk_size, shards=1
        )
        streamed = runner.run()
        assert canonical_receipts(streamed.reports) == batch_receipts
