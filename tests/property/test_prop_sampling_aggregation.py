"""Property-based tests for the core sampling and aggregation algorithms.

These validate the invariants the protocol's verifiability and tunability
arguments rest on, over arbitrary digest streams and threshold choices:

* superset nesting of sampled sets across sampling rates (Section 5.2);
* insensitivity of the sampled set to local timestamps (only digests matter);
* cut-point nesting and packet-count conservation for aggregation (Section 6.2).
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.aggregation import Aggregator, AggregatorConfig
from repro.core.receipts import PathID
from repro.core.sampling import DelaySampler, SamplerConfig
from repro.net.hashing import MASK64
from repro.net.prefixes import OriginPrefix, PrefixPair


PATH_ID = PathID(
    prefix_pair=PrefixPair(
        source=OriginPrefix.parse("10.1.0.0/16"),
        destination=OriginPrefix.parse("10.2.0.0/16"),
    ),
    reporting_hop=4,
    previous_hop=3,
    next_hop=5,
    max_diff=1e-3,
)

digest_streams = st.lists(
    st.integers(min_value=0, max_value=MASK64), min_size=1, max_size=400
)
rates = st.floats(min_value=0.001, max_value=1.0, allow_nan=False)


def run_sampler(digests, sampling_rate, marker_rate=0.05, time_offset=0.0):
    sampler = DelaySampler(
        SamplerConfig(sampling_rate=sampling_rate, marker_rate=marker_rate)
    )
    for index, digest in enumerate(digests):
        sampler.observe(digest, time_offset + index * 1e-5)
    return sampler.receipt(PATH_ID)


def run_aggregator(digests, expected_size, time_offset=0.0):
    aggregator = Aggregator(AggregatorConfig(expected_aggregate_size=expected_size))
    for index, digest in enumerate(digests):
        aggregator.observe(digest, time_offset + index * 1e-5)
    aggregator.flush()
    return aggregator.receipts(PATH_ID)


class TestSamplingProperties:
    @settings(max_examples=60, deadline=None)
    @given(digest_streams, rates, rates)
    def test_sampled_sets_nest_across_rates(self, digests, rate_a, rate_b):
        """The HOP with the higher sampling rate samples a superset."""
        low, high = sorted((rate_a, rate_b))
        low_ids = run_sampler(digests, low).pkt_ids
        high_ids = run_sampler(digests, high).pkt_ids
        assert low_ids <= high_ids

    @settings(max_examples=60, deadline=None)
    @given(digest_streams, rates)
    def test_sampled_set_independent_of_clock(self, digests, rate):
        """Two HOPs with arbitrary clock offsets sample the same packets."""
        assert (
            run_sampler(digests, rate, time_offset=0.0).pkt_ids
            == run_sampler(digests, rate, time_offset=123.456).pkt_ids
        )

    @settings(max_examples=60, deadline=None)
    @given(digest_streams, rates)
    def test_markers_always_sampled(self, digests, rate):
        config = SamplerConfig(sampling_rate=rate, marker_rate=0.05)
        sampler = DelaySampler(config)
        markers = []
        for index, digest in enumerate(digests):
            if sampler.observe(digest, index * 1e-5):
                markers.append(digest)
        sampled = sampler.receipt(PATH_ID).pkt_ids
        assert set(markers) <= sampled

    @settings(max_examples=60, deadline=None)
    @given(digest_streams, rates)
    def test_reported_samples_are_observed_packets(self, digests, rate):
        sampled = run_sampler(digests, rate).pkt_ids
        assert sampled <= set(digests)

    @settings(max_examples=40, deadline=None)
    @given(digest_streams)
    def test_buffer_never_reports_before_marker(self, digests):
        """Packets observed after the last marker are never reported."""
        config = SamplerConfig(sampling_rate=1.0, marker_rate=0.05)
        sampler = DelaySampler(config)
        marker_threshold = config.marker_threshold
        last_marker_position = -1
        for index, digest in enumerate(digests):
            sampler.observe(digest, index * 1e-5)
            if digest > marker_threshold:
                last_marker_position = index
        reported = sampler.receipt(PATH_ID).pkt_ids
        tail = set(digests[last_marker_position + 1 :])
        tail_only = tail - set(digests[: last_marker_position + 1])
        assert not (reported & tail_only)


class TestAggregationProperties:
    @settings(max_examples=60, deadline=None)
    @given(digest_streams, st.integers(min_value=1, max_value=1000))
    def test_counts_conserved(self, digests, expected_size):
        receipts = run_aggregator(digests, expected_size)
        assert sum(receipt.pkt_count for receipt in receipts) == len(digests)

    @settings(max_examples=60, deadline=None)
    @given(digest_streams, st.integers(min_value=1, max_value=1000))
    def test_aggregates_are_contiguous_in_time(self, digests, expected_size):
        receipts = run_aggregator(digests, expected_size)
        for earlier, later in zip(receipts, receipts[1:]):
            assert earlier.end_time <= later.start_time + 1e-12

    @settings(max_examples=60, deadline=None)
    @given(
        digest_streams,
        st.integers(min_value=1, max_value=50),
        st.integers(min_value=1, max_value=50),
    )
    def test_cut_points_nest_across_aggregate_sizes(self, digests, size_a, size_b):
        """The HOP with the smaller expected aggregate size cuts a superset."""
        small, large = sorted((size_a, size_b))
        fine = run_aggregator(digests, small)
        coarse = run_aggregator(digests, large)
        fine_cuts = {receipt.first_pkt_id for receipt in fine[1:]}
        coarse_cuts = {receipt.first_pkt_id for receipt in coarse[1:]}
        assert coarse_cuts <= fine_cuts

    @settings(max_examples=60, deadline=None)
    @given(digest_streams, st.integers(min_value=1, max_value=1000))
    def test_partition_independent_of_clock(self, digests, expected_size):
        base = run_aggregator(digests, expected_size, time_offset=0.0)
        shifted = run_aggregator(digests, expected_size, time_offset=500.0)
        assert [receipt.pkt_count for receipt in base] == [
            receipt.pkt_count for receipt in shifted
        ]

    @settings(max_examples=60, deadline=None)
    @given(digest_streams, st.integers(min_value=1, max_value=1000))
    def test_time_sum_consistent_with_span(self, digests, expected_size):
        receipts = run_aggregator(digests, expected_size)
        for receipt in receipts:
            assert receipt.start_time <= receipt.mean_time <= receipt.end_time
