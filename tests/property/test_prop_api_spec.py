"""Property tests: spec ⇄ dict ⇄ JSON round trips are the identity.

An :class:`ExperimentSpec` assembled from arbitrary registered components and
random (valid) parameters must survive ``from_dict(to_dict())`` and a full
JSON encode/decode unchanged — that is the contract that makes specs storable,
diffable and shippable to worker processes.
"""

from __future__ import annotations

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import (
    AdversarySpec,
    ConditionSpec,
    EstimationSpec,
    ExperimentSpec,
    HOPSpec,
    PathSpec,
    ProtocolSpec,
    TrafficSpec,
)

seeds = st.integers(min_value=0, max_value=2**31 - 1)
rates = st.floats(min_value=0.0, max_value=1.0, allow_nan=False, allow_infinity=False)
# check_fraction-validated knobs live in (0, 1] — zero is not a valid rate.
fractions = st.floats(
    min_value=0.0, max_value=1.0, exclude_min=True, allow_nan=False, allow_infinity=False
)
small_delays = st.floats(
    min_value=0.0, max_value=0.1, allow_nan=False, allow_infinity=False
)


@st.composite
def delay_specs(draw) -> tuple[str, dict]:
    name = draw(st.sampled_from(["constant", "jitter", "congestion", "empirical"]))
    if name == "constant":
        return name, {"delay": draw(small_delays)}
    if name == "jitter":
        return name, {
            "base_delay": draw(small_delays),
            "jitter_std": draw(small_delays),
            "seed": draw(seeds),
        }
    if name == "congestion":
        return name, {
            "scenario": draw(st.sampled_from(["udp-burst", "tcp-mix", "mixed"])),
            "utilization": draw(
                st.floats(min_value=0.1, max_value=1.5, allow_nan=False)
            ),
            "seed": draw(seeds),
        }
    series = draw(
        st.lists(small_delays, min_size=1, max_size=5).filter(
            lambda values: all(value >= 0 for value in values)
        )
    )
    return name, {"series": series}


@st.composite
def loss_specs(draw) -> tuple[str, dict]:
    name = draw(
        st.sampled_from(["none", "bernoulli", "gilbert-elliott", "gilbert-elliott-rate"])
    )
    if name == "none":
        return name, {}
    if name == "bernoulli":
        return name, {"loss_rate": draw(rates), "seed": draw(seeds)}
    if name == "gilbert-elliott":
        return name, {"p": draw(rates), "r": draw(rates), "seed": draw(seeds)}
    return name, {
        "target_rate": draw(rates),
        "mean_burst_length": draw(st.floats(min_value=1.0, max_value=50.0, allow_nan=False)),
        "seed": draw(seeds),
    }


@st.composite
def reordering_specs(draw) -> tuple[str, dict]:
    name = draw(st.sampled_from(["none", "window"]))
    if name == "none":
        return name, {}
    return name, {
        "window": draw(small_delays),
        "reorder_probability": draw(rates),
        "seed": draw(seeds),
    }


@st.composite
def condition_specs(draw) -> ConditionSpec:
    delay, delay_params = draw(delay_specs())
    loss, loss_params = draw(loss_specs())
    reordering, reordering_params = draw(reordering_specs())
    return ConditionSpec(
        delay=delay,
        delay_params=delay_params,
        loss=loss,
        loss_params=loss_params,
        reordering=reordering,
        reordering_params=reordering_params,
    )


@st.composite
def hop_specs(draw) -> HOPSpec:
    return HOPSpec(
        sampling_rate=draw(fractions),
        aggregate_size=draw(st.integers(min_value=1, max_value=100_000)),
        marker_rate=draw(fractions),
        reorder_window=draw(small_delays),
    )


@st.composite
def adversary_specs(draw) -> tuple[AdversarySpec, ...]:
    which = draw(st.sampled_from(["none", "lying", "lying+colluding", "condition"]))
    if which == "none":
        return ()
    if which == "condition":
        return (
            AdversarySpec(
                kind=draw(st.sampled_from(["marker-drop", "biased-treatment"])),
                domain="X",
            ),
        )
    lying = AdversarySpec(
        kind="lying", domain="X", params={"claimed_delay": draw(small_delays)}
    )
    if which == "lying":
        return (lying,)
    return (
        lying,
        AdversarySpec(kind="colluding", domain="N", params={"colluding_with": "X"}),
    )


@st.composite
def experiment_specs(draw) -> ExperimentSpec:
    transit = ["L", "X", "N"]
    condition_domains = draw(st.sets(st.sampled_from(transit), max_size=3))
    conditions = {domain: draw(condition_specs()) for domain in condition_domains}

    override_domains = draw(st.sets(st.sampled_from(["S", "L", "X", "N", "D"]), max_size=3))
    domains = {
        domain: draw(st.one_of(st.none(), hop_specs())) for domain in override_domains
    }

    return ExperimentSpec(
        name=draw(st.text(min_size=0, max_size=12)),
        seed=draw(seeds),
        engine=draw(st.sampled_from(["batch", "scalar"])),
        traffic=draw(
            st.one_of(
                st.builds(
                    TrafficSpec,
                    workload=st.sampled_from(["smoke-sequence", "bench-sequence"]),
                    seed=st.one_of(st.none(), seeds),
                ),
                st.builds(
                    TrafficSpec,
                    workload=st.none(),
                    packet_count=st.integers(min_value=1, max_value=10_000),
                    arrival_process=st.sampled_from(["poisson", "cbr", "mmpp"]),
                    seed=st.one_of(st.none(), seeds),
                ),
            )
        ),
        path=PathSpec(conditions=conditions, seed=draw(st.one_of(st.none(), seeds))),
        protocol=ProtocolSpec(
            default=draw(st.one_of(st.none(), hop_specs())),
            domains=domains,
            max_diff=draw(st.floats(min_value=1e-6, max_value=1e-2, allow_nan=False)),
        ),
        adversaries=draw(adversary_specs()),
        estimation=EstimationSpec(
            observer=draw(st.sampled_from(["S", "L", "N"])),
            targets=tuple(draw(st.sets(st.sampled_from(transit), min_size=1, max_size=3))),
            quantiles=tuple(
                draw(st.sets(st.sampled_from([0.5, 0.75, 0.9, 0.95, 0.99]), min_size=1))
            ),
            verify=draw(st.booleans()),
            independent=draw(st.booleans()),
        ),
    )


@settings(max_examples=60, deadline=None)
@given(spec=experiment_specs())
def test_dict_round_trip_is_identity(spec: ExperimentSpec):
    assert ExperimentSpec.from_dict(spec.to_dict()) == spec


@settings(max_examples=60, deadline=None)
@given(spec=experiment_specs())
def test_json_round_trip_is_identity(spec: ExperimentSpec):
    decoded = json.loads(json.dumps(spec.to_dict()))
    assert ExperimentSpec.from_dict(decoded) == spec


@settings(max_examples=60, deadline=None)
@given(spec=experiment_specs())
def test_to_dict_is_pure_json(spec: ExperimentSpec):
    payload = spec.to_dict()
    assert json.loads(json.dumps(payload)) == payload
