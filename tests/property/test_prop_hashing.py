"""Property-based tests for the hashing substrate."""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.net.hashing import (
    MASK32,
    MASK64,
    bob_hash,
    combine64,
    fnv1a_64,
    rate_for_threshold,
    sample_function,
    splitmix64,
    threshold_for_rate,
)

uint64 = st.integers(min_value=0, max_value=MASK64)


class TestHashProperties:
    @given(st.binary(max_size=200), st.integers(min_value=0, max_value=MASK32))
    def test_bob_hash_in_range_and_deterministic(self, data, initval):
        value = bob_hash(data, initval)
        assert 0 <= value <= MASK32
        assert value == bob_hash(data, initval)

    @given(st.binary(max_size=200))
    def test_fnv_in_range_and_deterministic(self, data):
        value = fnv1a_64(data)
        assert 0 <= value <= MASK64
        assert value == fnv1a_64(data)

    @given(uint64)
    def test_splitmix_in_range(self, value):
        assert 0 <= splitmix64(value) <= MASK64

    @given(uint64, uint64)
    def test_combine_and_sample_function_in_range(self, first, second):
        assert 0 <= combine64(first, second) <= MASK64
        assert 0 <= sample_function(first, second) <= MASK64

    @given(uint64, uint64)
    def test_sample_function_deterministic(self, buffered, marker):
        assert sample_function(buffered, marker) == sample_function(buffered, marker)


class TestThresholdProperties:
    @given(st.floats(min_value=0.0, max_value=1.0, allow_nan=False))
    def test_threshold_in_range(self, rate):
        threshold = threshold_for_rate(rate)
        assert 0 <= threshold <= MASK64

    @given(
        st.floats(min_value=1e-6, max_value=1.0, allow_nan=False),
        st.floats(min_value=1e-6, max_value=1.0, allow_nan=False),
    )
    def test_threshold_monotone_in_rate(self, rate_a, rate_b):
        """Lower rates always map to thresholds at least as high."""
        threshold_a = threshold_for_rate(rate_a)
        threshold_b = threshold_for_rate(rate_b)
        if rate_a <= rate_b:
            assert threshold_a >= threshold_b
        else:
            assert threshold_a <= threshold_b

    @given(st.floats(min_value=0.0, max_value=1.0, allow_nan=False))
    def test_round_trip_within_float_precision(self, rate):
        assert abs(rate_for_threshold(threshold_for_rate(rate)) - rate) < 1e-9

    @given(uint64, st.floats(min_value=1e-4, max_value=1.0, allow_nan=False))
    def test_threshold_decision_consistent_with_rate_ordering(self, digest, rate):
        """If a digest passes a low-rate threshold it passes every higher-rate one."""
        low_rate_threshold = threshold_for_rate(rate)
        full_rate_threshold = threshold_for_rate(1.0)
        if digest > low_rate_threshold:
            assert digest > full_rate_threshold
