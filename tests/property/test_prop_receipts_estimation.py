"""Property-based tests for receipt combination and estimation."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.estimation import estimate_delay_quantiles, estimate_loss_rate
from repro.core.receipts import (
    AggregateReceipt,
    PathID,
    SampleReceipt,
    SampleRecord,
    combine_aggregate_receipts,
    combine_sample_receipts,
)
from repro.net.hashing import MASK64
from repro.net.prefixes import OriginPrefix, PrefixPair


PATH_ID = PathID(
    prefix_pair=PrefixPair(
        source=OriginPrefix.parse("10.1.0.0/16"),
        destination=OriginPrefix.parse("10.2.0.0/16"),
    ),
    reporting_hop=4,
    previous_hop=3,
    next_hop=5,
    max_diff=1e-3,
)


sample_records = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=MASK64),
        st.floats(min_value=0.0, max_value=1e4, allow_nan=False),
    ),
    max_size=50,
)


def make_sample_receipt(records) -> SampleReceipt:
    return SampleReceipt(
        path_id=PATH_ID,
        samples=tuple(SampleRecord(pkt_id=pkt, time=time) for pkt, time in records),
    )


@st.composite
def consecutive_aggregates(draw):
    count = draw(st.integers(min_value=1, max_value=10))
    receipts = []
    clock = 0.0
    for index in range(count):
        span = draw(st.floats(min_value=0.001, max_value=1.0, allow_nan=False))
        packets = draw(st.integers(min_value=0, max_value=1000))
        receipts.append(
            AggregateReceipt(
                path_id=PATH_ID,
                first_pkt_id=index * 10,
                last_pkt_id=index * 10 + 5,
                pkt_count=packets,
                start_time=clock,
                end_time=clock + span,
                time_sum=packets * (clock + span / 2),
            )
        )
        clock += span
    return receipts


class TestReceiptCombination:
    @settings(max_examples=80, deadline=None)
    @given(sample_records, sample_records)
    def test_sample_combination_is_union(self, records_a, records_b):
        a = make_sample_receipt(records_a)
        b = make_sample_receipt(records_b)
        combined = combine_sample_receipts([a, b])
        assert combined.pkt_ids == a.pkt_ids | b.pkt_ids

    @settings(max_examples=80, deadline=None)
    @given(sample_records)
    def test_sample_combination_idempotent(self, records):
        receipt = make_sample_receipt(records)
        assert combine_sample_receipts([receipt, receipt]).pkt_ids == receipt.pkt_ids

    @settings(max_examples=80, deadline=None)
    @given(consecutive_aggregates())
    def test_aggregate_combination_preserves_count_and_span(self, receipts):
        combined = combine_aggregate_receipts(receipts)
        assert combined.pkt_count == sum(receipt.pkt_count for receipt in receipts)
        assert combined.start_time == receipts[0].start_time
        assert combined.end_time == receipts[-1].end_time
        assert combined.first_pkt_id == receipts[0].first_pkt_id
        assert combined.last_pkt_id == receipts[-1].last_pkt_id

    @settings(max_examples=80, deadline=None)
    @given(consecutive_aggregates())
    def test_aggregate_combination_associative_in_count(self, receipts):
        if len(receipts) < 3:
            return
        left = combine_aggregate_receipts(
            [combine_aggregate_receipts(receipts[:2]), *receipts[2:]]
        )
        right = combine_aggregate_receipts(
            [receipts[0], combine_aggregate_receipts(receipts[1:])]
        )
        assert left.pkt_count == right.pkt_count
        assert left.agg_id == right.agg_id


class TestEstimationProperties:
    @settings(max_examples=80, deadline=None)
    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
            min_size=1,
            max_size=500,
        )
    )
    def test_quantile_estimates_within_sample_range_and_monotone(self, delays):
        estimates = estimate_delay_quantiles(delays, quantiles=(0.1, 0.5, 0.9))
        values = [estimates[q].estimate for q in (0.1, 0.5, 0.9)]
        assert min(delays) - 1e-12 <= values[0]
        assert values[-1] <= max(delays) + 1e-12
        assert values == sorted(values)
        for estimate in estimates.values():
            assert estimate.lower - 1e-12 <= estimate.estimate <= estimate.upper + 1e-12

    @settings(max_examples=80, deadline=None)
    @given(sample_records, sample_records)
    def test_loss_rate_always_a_probability(self, ingress_records, egress_records):
        ingress = make_sample_receipt(ingress_records)
        egress = make_sample_receipt(egress_records)
        rate, lost, total = estimate_loss_rate(ingress, egress)
        assert 0.0 <= rate <= 1.0
        assert 0 <= lost <= total == len(ingress.pkt_ids)
