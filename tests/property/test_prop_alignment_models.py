"""Property-based tests for receipt alignment under loss, and for the traffic
models (loss/reordering) whose guarantees the protocol depends on."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.aggregation import Aggregator, AggregatorConfig
from repro.core.partition import aligned_aggregates
from repro.core.receipts import PathID
from repro.net.hashing import MASK64
from repro.net.prefixes import OriginPrefix, PrefixPair
from repro.traffic.loss_models import GilbertElliottLossModel
from repro.traffic.reordering import WindowReordering


PATH_ID = PathID(
    prefix_pair=PrefixPair(
        source=OriginPrefix.parse("10.1.0.0/16"),
        destination=OriginPrefix.parse("10.2.0.0/16"),
    ),
    reporting_hop=4,
    previous_hop=3,
    next_hop=5,
    max_diff=1e-3,
)


def aggregate_stream(digests, times, expected_size):
    aggregator = Aggregator(AggregatorConfig(expected_aggregate_size=expected_size))
    for digest, time in zip(digests, times):
        aggregator.observe(digest, time)
    aggregator.flush()
    return aggregator.receipts(PATH_ID)


class TestAlignmentUnderLoss:
    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(min_value=50, max_value=400),
        st.floats(min_value=0.0, max_value=0.5, allow_nan=False),
        st.integers(min_value=5, max_value=50),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_alignment_computes_exact_loss_without_reordering(
        self, count, loss_rate, expected_size, seed
    ):
        """For any loss pattern (no reordering), the aligned aggregate counts
        account for exactly the packets dropped between the two HOPs."""
        rng = np.random.default_rng(seed)
        digests = [int(v) for v in rng.integers(0, MASK64, size=count, dtype=np.uint64)]
        times = np.arange(count) * 1e-5
        upstream = aggregate_stream(digests, times, expected_size)

        keep = rng.random(count) >= loss_rate
        downstream_digests = [d for d, kept in zip(digests, keep) if kept]
        downstream_times = times[keep] + 1e-3
        downstream = aggregate_stream(downstream_digests, downstream_times, expected_size)

        pairs = aligned_aggregates(upstream, downstream)
        if not downstream_digests:
            # Everything was lost; there is nothing to align against.
            assert len(downstream) == 0
            return
        total_up = sum(pair.upstream.pkt_count for pair in pairs)
        total_down = sum(pair.downstream.pkt_count for pair in pairs)
        assert total_up == count
        assert total_down == len(downstream_digests)
        assert sum(pair.lost_packets for pair in pairs) == count - len(downstream_digests)
        # Per-aggregate loss is never negative without reordering.
        assert all(pair.lost_packets >= 0 for pair in pairs)

    @settings(max_examples=30, deadline=None)
    @given(
        st.integers(min_value=100, max_value=400),
        st.integers(min_value=5, max_value=30),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_join_never_finer_than_either_input(self, count, expected_size, seed):
        rng = np.random.default_rng(seed)
        digests = [int(v) for v in rng.integers(0, MASK64, size=count, dtype=np.uint64)]
        times = np.arange(count) * 1e-5
        upstream = aggregate_stream(digests, times, expected_size)
        keep = rng.random(count) >= 0.25
        downstream = aggregate_stream(
            [d for d, kept in zip(digests, keep) if kept], times[keep], expected_size
        )
        pairs = aligned_aggregates(upstream, downstream)
        assert len(pairs) <= len(upstream)
        assert len(pairs) <= max(len(downstream), 1)


class TestModelGuarantees:
    @settings(max_examples=30, deadline=None)
    @given(
        st.floats(min_value=0.0, max_value=0.6, allow_nan=False),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_gilbert_elliott_long_run_rate(self, target, seed):
        model = GilbertElliottLossModel.from_target_rate(target, seed=seed)
        drops = sum(model.drops(index) for index in range(5000))
        assert abs(drops / 5000 - target) < 0.12

    @settings(max_examples=30, deadline=None)
    @given(
        st.integers(min_value=2, max_value=500),
        st.floats(min_value=1e-5, max_value=1e-3, allow_nan=False),
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_window_reordering_is_permutation_with_sorted_times(
        self, count, window, probability, seed
    ):
        arrivals = np.cumsum(np.full(count, 2e-5))
        order, times = WindowReordering(
            window=window, reorder_probability=probability, seed=seed
        ).apply(arrivals)
        assert sorted(order.tolist()) == list(range(count))
        assert np.all(np.diff(times) >= 0)
        # Displacement bound: a packet never moves ahead of one sent more
        # than `window` later.
        positions = np.empty(count, dtype=int)
        positions[order] = np.arange(count)
        for index in range(count):
            earlier_original = order[: positions[index]]
            if len(earlier_original):
                assert arrivals[earlier_original].max() <= arrivals[index] + window + 1e-12
