"""Property tests: the vectorized batch fast path is bit-identical to scalar.

The scalar implementations are the reference oracle for the NumPy batch
kernels and the batch collector pipeline.  These tests drive both paths with
random inputs — including random chunkings that interleave scalar and batch
calls on the same instance — and require identical results: hashes, digests,
marker decisions, sampled records, cutting points and AggTrans windows are
compared exactly; only an aggregate's ``time_sum`` (a float accumulation whose
summation order legitimately differs) is compared to within float tolerance.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.aggregation import Aggregator, AggregatorConfig
from repro.core.receipts import PathID
from repro.core.sampling import DelaySampler, SamplerConfig
from repro.net.batch import PacketBatch
from repro.net.hashing import (
    MASK32,
    MASK64,
    PacketDigester,
    bob_hash,
    bob_hash_batch,
    combine64,
    combine64_batch,
    fnv1a_64,
    fnv1a_64_batch,
    sample_function,
    sample_function_batch,
    splitmix64,
    splitmix64_batch,
)
from repro.net.packet import Packet, PacketHeaders
from repro.traffic.trace import default_prefix_pair

uint64 = st.integers(min_value=0, max_value=MASK64)


def byte_matrix(draw, max_rows: int = 40, max_cols: int = 40) -> np.ndarray:
    rows = draw(st.integers(min_value=1, max_value=max_rows))
    cols = draw(st.integers(min_value=0, max_value=max_cols))
    seed = draw(st.integers(min_value=0, max_value=2**32 - 1))
    return np.random.default_rng(seed).integers(0, 256, size=(rows, cols), dtype=np.uint8)


class TestKernelParity:
    @given(st.data(), st.integers(min_value=0, max_value=MASK32))
    def test_bob_hash_batch_matches_scalar(self, data, initval):
        matrix = byte_matrix(data.draw)
        batch = bob_hash_batch(matrix, initval)
        scalar = np.asarray(
            [bob_hash(row.tobytes(), initval) for row in matrix], dtype=np.uint64
        )
        assert np.array_equal(batch, scalar)

    @given(st.data())
    def test_fnv_batch_matches_scalar(self, data):
        matrix = byte_matrix(data.draw)
        batch = fnv1a_64_batch(matrix)
        scalar = np.asarray([fnv1a_64(row.tobytes()) for row in matrix], dtype=np.uint64)
        assert np.array_equal(batch, scalar)

    @given(st.lists(uint64, min_size=1, max_size=100))
    def test_splitmix_batch_matches_scalar(self, values):
        array = np.asarray(values, dtype=np.uint64)
        assert np.array_equal(
            splitmix64_batch(array),
            np.asarray([splitmix64(value) for value in values], dtype=np.uint64),
        )

    @given(st.lists(st.tuples(uint64, uint64), min_size=1, max_size=100))
    def test_combine_batch_matches_scalar(self, pairs):
        first = np.asarray([pair[0] for pair in pairs], dtype=np.uint64)
        second = np.asarray([pair[1] for pair in pairs], dtype=np.uint64)
        expected = np.asarray(
            [combine64(a, b) for a, b in pairs], dtype=np.uint64
        )
        assert np.array_equal(combine64_batch(first, second), expected)

    @given(st.lists(uint64, min_size=1, max_size=100), uint64)
    def test_sample_function_batch_broadcasts_marker(self, buffered, marker):
        array = np.asarray(buffered, dtype=np.uint64)
        expected = np.asarray(
            [sample_function(value, marker) for value in buffered], dtype=np.uint64
        )
        assert np.array_equal(sample_function_batch(array, marker), expected)


def random_packets(seed: int, count: int, payload_bytes: int) -> list[Packet]:
    rng = np.random.default_rng(seed)
    packets = []
    for index in range(count):
        packets.append(
            Packet(
                headers=PacketHeaders(
                    src_ip=int(rng.integers(0, 1 << 32)),
                    dst_ip=int(rng.integers(0, 1 << 32)),
                    src_port=int(rng.integers(0, 1 << 16)),
                    dst_port=int(rng.integers(0, 1 << 16)),
                    protocol=int(rng.integers(0, 256)),
                    ip_id=int(rng.integers(0, 1 << 16)),
                    length=int(rng.integers(20, 1501)),
                ),
                payload=rng.bytes(payload_bytes),
                uid=index,
                send_time=float(index) * 1e-5,
            )
        )
    return packets


class TestDigestParity:
    @given(
        st.integers(min_value=0, max_value=2**32 - 1),
        st.integers(min_value=1, max_value=60),
        st.integers(min_value=0, max_value=24),
        st.integers(min_value=0, max_value=MASK32),
        st.integers(min_value=0, max_value=24),
    )
    @settings(max_examples=25, deadline=None)
    def test_digest_batch_matches_scalar(self, seed, count, payload_bytes, digest_seed, prefix):
        packets = random_packets(seed, count, payload_bytes)
        batch = PacketBatch.from_packets(packets)
        digester = PacketDigester(seed=digest_seed, payload_prefix=prefix)
        batch_digests = digester.digest_batch(batch)
        scalar_digests = np.asarray(
            [digester.digest(packet) for packet in packets], dtype=np.uint64
        )
        assert np.array_equal(batch_digests, scalar_digests)

    @given(
        st.integers(min_value=0, max_value=2**32 - 1),
        st.integers(min_value=1, max_value=40),
        st.integers(min_value=0, max_value=24),
    )
    @settings(max_examples=25, deadline=None)
    def test_invariant_matrix_matches_invariant_bytes(self, seed, count, prefix):
        packets = random_packets(seed, count, payload_bytes=16)
        batch = PacketBatch.from_packets(packets)
        matrix = batch.invariant_matrix(prefix)
        for row, packet in zip(matrix, packets):
            assert row.tobytes() == packet.invariant_bytes(prefix)


def random_stream(seed: int, count: int) -> tuple[np.ndarray, np.ndarray]:
    rng = np.random.default_rng(seed)
    digests = rng.integers(0, 1 << 64, size=count, dtype=np.uint64)
    times = np.cumsum(rng.exponential(1e-5, size=count))
    return digests, times


def chunked_feed(instance, digests: np.ndarray, times: np.ndarray, rng) -> None:
    """Feed a stream through observe()/observe_batch() in random interleaving."""
    index = 0
    while index < len(digests):
        if rng.random() < 0.3:
            instance.observe(int(digests[index]), float(times[index]))
            index += 1
        else:
            size = int(rng.integers(1, 400))
            instance.observe_batch(digests[index : index + size], times[index : index + size])
            index += size


class TestSamplerParity:
    @given(
        st.integers(min_value=0, max_value=2**32 - 1),
        st.integers(min_value=1, max_value=3000),
        st.floats(min_value=0.001, max_value=0.9),
        st.floats(min_value=0.001, max_value=0.2),
    )
    @settings(max_examples=30, deadline=None)
    def test_observe_batch_matches_scalar(self, seed, count, sampling_rate, marker_rate):
        digests, times = random_stream(seed, count)
        config = SamplerConfig(sampling_rate=sampling_rate, marker_rate=marker_rate)
        scalar = DelaySampler(config)
        batched = DelaySampler(config)
        for digest, moment in zip(digests, times):
            scalar.observe(int(digest), float(moment))
        chunked_feed(batched, digests, times, np.random.default_rng(seed + 1))

        assert scalar._samples == batched._samples
        assert scalar._temp_buffer == batched._temp_buffer
        assert scalar.marker_count == batched.marker_count
        assert scalar.observed_packets == batched.observed_packets
        assert scalar.max_buffer_occupancy == batched.max_buffer_occupancy


class TestAggregatorParity:
    @given(
        st.integers(min_value=0, max_value=2**32 - 1),
        st.integers(min_value=1, max_value=3000),
        st.integers(min_value=2, max_value=300),
        st.sampled_from([0.0, 1e-5, 1e-4, 1e-3]),
    )
    @settings(max_examples=30, deadline=None)
    def test_observe_batch_matches_scalar(self, seed, count, aggregate_size, window):
        digests, times = random_stream(seed, count)
        config = AggregatorConfig(
            expected_aggregate_size=aggregate_size, reorder_window=window
        )
        scalar = Aggregator(config)
        batched = Aggregator(config)
        for digest, moment in zip(digests, times):
            scalar.observe(int(digest), float(moment))
        chunked_feed(batched, digests, times, np.random.default_rng(seed + 1))
        scalar.flush()
        batched.flush()

        path_id = PathID(
            prefix_pair=default_prefix_pair(),
            reporting_hop=1,
            previous_hop=None,
            next_hop=2,
            max_diff=1e-3,
        )
        scalar_receipts = scalar.receipts(path_id)
        batched_receipts = batched.receipts(path_id)
        assert len(scalar_receipts) == len(batched_receipts)
        for expected, actual in zip(scalar_receipts, batched_receipts):
            assert expected.first_pkt_id == actual.first_pkt_id
            assert expected.last_pkt_id == actual.last_pkt_id
            assert expected.pkt_count == actual.pkt_count
            assert expected.start_time == actual.start_time
            assert expected.end_time == actual.end_time
            assert expected.trans_before == actual.trans_before
            assert expected.trans_after == actual.trans_after
            assert np.isclose(expected.time_sum, actual.time_sum, rtol=1e-12, atol=1e-9)
        assert scalar.cut_count == batched.cut_count
        assert scalar.observed_packets == batched.observed_packets
        assert scalar.max_window_occupancy == batched.max_window_occupancy
        assert list(scalar._recent) == list(batched._recent)

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=10, deadline=None)
    def test_unsorted_times_fall_back_to_scalar_semantics(self, seed):
        """Out-of-order timestamps (reordered traffic) still match scalar."""
        rng = np.random.default_rng(seed)
        count = 500
        digests = rng.integers(0, 1 << 64, size=count, dtype=np.uint64)
        times = np.cumsum(rng.exponential(1e-5, size=count))
        # Swap random adjacent pairs to break monotonicity.
        for _ in range(50):
            position = int(rng.integers(0, count - 1))
            times[position], times[position + 1] = times[position + 1], times[position]
        config = AggregatorConfig(expected_aggregate_size=20, reorder_window=1e-4)
        scalar = Aggregator(config)
        batched = Aggregator(config)
        for digest, moment in zip(digests, times):
            scalar.observe(int(digest), float(moment))
        batched.observe_batch(digests, times)
        scalar.flush()
        batched.flush()
        # Compare raw finalized state rather than materialized receipts:
        # receipt construction itself rejects aggregates whose (reordered)
        # end time precedes their start time, in both paths alike.
        def snapshot(aggregator):
            return [
                (
                    pending.aggregate.first_pkt_id,
                    pending.aggregate.last_pkt_id,
                    pending.aggregate.pkt_count,
                    pending.aggregate.start_time,
                    pending.aggregate.end_time,
                    pending.aggregate.time_sum,
                    pending.cut_time,
                    pending.trans_before,
                    tuple(pending.trans_after),
                )
                for pending in aggregator._finalized
            ]

        assert snapshot(scalar) == snapshot(batched)
        assert scalar.cut_count == batched.cut_count
        assert scalar.max_window_occupancy == batched.max_window_occupancy
        assert list(scalar._recent) == list(batched._recent)
