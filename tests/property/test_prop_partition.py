"""Property-based tests for the partition algebra (Section 6.1)."""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.core.partition import PartitionSet, is_coarser, join_partitions


@st.composite
def partition_pair(draw):
    """Two random partitions of the same ordered packet set."""
    size = draw(st.integers(min_value=1, max_value=30))
    items = tuple(range(size))

    def random_partition() -> PartitionSet:
        cuts = draw(
            st.sets(st.integers(min_value=1, max_value=size - 1), max_size=size)
        ) if size > 1 else set()
        return PartitionSet.from_cut_indices(items, cuts)

    return random_partition(), random_partition()


@st.composite
def partition_triple(draw):
    size = draw(st.integers(min_value=1, max_value=20))
    items = tuple(range(size))
    partitions = []
    for _ in range(3):
        cuts = draw(
            st.sets(st.integers(min_value=1, max_value=size - 1), max_size=size)
        ) if size > 1 else set()
        partitions.append(PartitionSet.from_cut_indices(items, cuts))
    return tuple(partitions)


class TestPartitionInvariants:
    @given(partition_pair())
    def test_partition_preserves_items(self, pair):
        a, b = pair
        assert a.items == b.items
        assert sum(len(aggregate) for aggregate in a) == len(a.items)

    @given(partition_pair())
    def test_join_is_coarser_than_both_inputs(self, pair):
        a, b = pair
        joined = join_partitions(a, b)
        assert is_coarser(joined, a)
        assert is_coarser(joined, b)

    @given(partition_pair())
    def test_join_is_commutative(self, pair):
        a, b = pair
        assert join_partitions(a, b) == join_partitions(b, a)

    @given(partition_pair())
    def test_join_is_idempotent(self, pair):
        a, b = pair
        joined = join_partitions(a, b)
        assert join_partitions(joined, joined) == joined
        assert join_partitions(a, a) == a

    @given(partition_pair())
    def test_join_absorbs_coarser_partition(self, pair):
        """If A is coarser than B, Join(A, B) == A."""
        a, b = pair
        if is_coarser(a, b):
            assert join_partitions(a, b) == a

    @given(partition_triple())
    def test_join_is_associative(self, triple):
        a, b, c = triple
        assert join_partitions(join_partitions(a, b), c) == join_partitions(
            a, join_partitions(b, c)
        )

    @given(partition_pair())
    def test_join_is_finest_common_coarsening(self, pair):
        """No strictly finer partition than the join is coarser than both inputs.

        Equivalent formulation: the join's cut set is exactly the intersection
        of the inputs' cut sets, so any common coarsening must be coarser than
        (or equal to) the join.
        """
        a, b = pair
        joined = join_partitions(a, b)
        assert set(joined.cut_indices) == set(a.cut_indices) & set(b.cut_indices)

    @given(partition_pair())
    def test_coarser_relation_antisymmetric(self, pair):
        a, b = pair
        if is_coarser(a, b) and is_coarser(b, a):
            assert a == b

    @given(partition_triple())
    def test_coarser_relation_transitive(self, triple):
        a, b, c = triple
        if is_coarser(a, b) and is_coarser(b, c):
            assert is_coarser(a, c)
