"""Property tests for seekable propagation state: checkpoint/seek equality.

The contract under test (:meth:`ScenarioStream.checkpoint` /
:meth:`ScenarioStream.seek`): freeze the complete propagation state at any
chunk boundary ``k``, pickle it across a process boundary, seek a freshly
built stream to it, and push chunks ``k`` onward — every emission, the final
ground truth and the terminal ``state_digest()`` come out byte-identical to
an uninterrupted run.  This must hold for **every streamable registered
model** (delay, loss, reordering) and for arbitrary chunk sizes, because it
is what both shard workers and mid-interval campaign resumes stand on.

The runner-level twin: a ``shards=1`` streaming run checkpointed every N
chunks (:class:`RunnerCheckpoint` through ``checkpoint_sink``), killed, and
resumed from the pickled checkpoint yields byte-identical ``CellResult``
JSON and receipts.
"""

from __future__ import annotations

import pickle

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api.registry import DELAY_MODELS, LOSS_MODELS, REORDERING_MODELS
from repro.api.runner import _build_cell, run_cell_full
from repro.api.spec import (
    ConditionSpec,
    ExecutionPolicy,
    ExperimentSpec,
    PathSpec,
    TrafficSpec,
)
from repro.engine.streaming import ScenarioStream
from repro.reporting.serialization import receipts_digest
from repro.traffic.trace import SyntheticTrace, TraceConfig

PACKETS = 1000

# Minimal valid parameters for every *streamable* registered model; the
# registry-coverage test below keeps these in sync with the registries.
STREAMABLE_DELAYS: dict[str, dict] = {
    "constant": {},
    "jitter": {"base_delay": 0.8e-3, "jitter_std": 0.3e-3},
    "empirical": {"series": [0.5e-3, 1.2e-3, 0.7e-3, 2.0e-3]},
}
STREAMABLE_LOSSES: dict[str, dict] = {
    "none": {},
    "bernoulli": {"loss_rate": 0.04},
    "gilbert-elliott": {"p": 0.01, "r": 0.2},
    "gilbert-elliott-rate": {"target_rate": 0.05},
}
STREAMABLE_REORDERINGS: dict[str, dict] = {
    "none": {},
    "window": {"window": 0.4e-3, "reorder_probability": 0.15},
}


def test_streamable_model_sets_cover_the_registries():
    """Every registered model is exercised here (congestion is the documented
    non-streamable exception, rejected by ``check_scenario_streamable`` and
    covered by the engine matrix)."""
    assert set(STREAMABLE_DELAYS) == set(DELAY_MODELS.names()) - {"congestion"}
    assert set(STREAMABLE_LOSSES) == set(LOSS_MODELS.names())
    assert set(STREAMABLE_REORDERINGS) == set(REORDERING_MODELS.names())


@st.composite
def streamable_conditions(draw) -> ConditionSpec:
    delay = draw(st.sampled_from(sorted(STREAMABLE_DELAYS)))
    loss = draw(st.sampled_from(sorted(STREAMABLE_LOSSES)))
    reordering = draw(st.sampled_from(sorted(STREAMABLE_REORDERINGS)))
    return ConditionSpec(
        delay=delay,
        delay_params=STREAMABLE_DELAYS[delay],
        loss=loss,
        loss_params=STREAMABLE_LOSSES[loss],
        reordering=reordering,
        reordering_params=STREAMABLE_REORDERINGS[reordering],
    )


def _spec(seed: int, condition: ConditionSpec) -> ExperimentSpec:
    return ExperimentSpec(
        name="checkpoint-seek",
        seed=seed,
        traffic=TrafficSpec(workload="smoke-sequence", packet_count=PACKETS),
        path=PathSpec(conditions={"X": condition}),
    )


def _assert_emissions_equal(emitted_a, emitted_b):
    """Two emission lists (as returned by push/flush) are bit-identical."""
    assert len(emitted_a) == len(emitted_b)
    for (hop_a, batch_a, times_a), (hop_b, batch_b, times_b) in zip(
        emitted_a, emitted_b
    ):
        assert hop_a == hop_b
        assert np.array_equal(batch_a.uid, batch_b.uid)
        assert np.array_equal(batch_a.send_time, batch_b.send_time)
        assert np.array_equal(times_a, times_b)


class TestStreamSeekEquality:
    """Stream-level: seek to a pickled checkpoint ≡ having run the prefix."""

    @settings(max_examples=25, deadline=None)
    @given(
        condition=streamable_conditions(),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        chunk_size=st.integers(min_value=64, max_value=PACKETS + 100),
        data=st.data(),
    )
    def test_seek_resumes_bit_identically(self, condition, seed, chunk_size, data):
        spec = _spec(seed, condition)
        total_chunks = -(-PACKETS // chunk_size)
        resume_at = data.draw(
            st.integers(min_value=1, max_value=total_chunks), label="resume_chunk"
        )

        # Uninterrupted run, capturing the checkpoint at the boundary.
        cell_a = _build_cell(spec.to_dict())
        stream_a = ScenarioStream(cell_a.scenario)
        checkpoint = None
        suffix_a = []
        for chunk in cell_a.trace.iter_batches(chunk_size):
            emitted = stream_a.push(chunk)
            if stream_a.chunks_pushed > resume_at:
                suffix_a.append(emitted)
            if stream_a.chunks_pushed == resume_at:
                checkpoint = stream_a.checkpoint(include_truth=True)
        suffix_a.append(stream_a.flush())
        assert checkpoint is not None

        # Fresh cell + stream, state crossing a (simulated) process boundary.
        blob = pickle.dumps(checkpoint)
        cell_b = _build_cell(spec.to_dict())
        stream_b = ScenarioStream(cell_b.scenario)
        stream_b.seek(pickle.loads(blob))
        suffix_b = [
            stream_b.push(chunk)
            for chunk in cell_b.trace.iter_batches(chunk_size, start_chunk=resume_at)
        ]
        suffix_b.append(stream_b.flush())

        assert stream_b.chunks_pushed == stream_a.chunks_pushed == total_chunks
        for spans_a, spans_b in zip(suffix_a, suffix_b):
            _assert_emissions_equal(spans_a, spans_b)
        # Terminal propagation state — one digest covers every RNG cursor,
        # holdback buffer and clock.
        digest_a = stream_a.checkpoint().state_digest()
        assert stream_b.checkpoint().state_digest() == digest_a
        # Ground truth carried through the checkpoint's truth snapshot.
        for name, truth_a in stream_a.domain_truth.items():
            truth_b = stream_b.domain_truth[name]
            assert truth_b.lost_packets == truth_a.lost_packets
            assert truth_b.delivered_packets == truth_a.delivered_packets
            assert np.array_equal(truth_b.delays(), truth_a.delays())

    @settings(max_examples=10, deadline=None)
    @given(
        condition=streamable_conditions(),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        chunk_size=st.integers(min_value=64, max_value=PACKETS // 2),
    )
    def test_checkpoint_digest_is_stable_across_pickling(
        self, condition, seed, chunk_size
    ):
        """``state_digest()`` survives a pickle round-trip unchanged (it is the
        cross-process identity shard workers and resume validation lean on)."""
        cell = _build_cell(_spec(seed, condition).to_dict())
        stream = ScenarioStream(cell.scenario)
        chunks = cell.trace.iter_batches(chunk_size)
        stream.push(next(chunks))
        checkpoint = stream.checkpoint(include_truth=True)
        restored = pickle.loads(pickle.dumps(checkpoint))
        assert restored.state_digest() == checkpoint.state_digest()
        assert restored.chunk_index == checkpoint.chunk_index


class TestTraceSeekSuffix:
    """The trace half of seeking: ``iter_batches(start_chunk=k)`` yields a
    bit-identical suffix of the full pass for arbitrary chunk sizes."""

    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        chunk_size=st.integers(min_value=1, max_value=900),
        process=st.sampled_from(["poisson", "cbr", "mmpp"]),
        data=st.data(),
    )
    def test_start_chunk_suffix_is_bitwise_identical(
        self, seed, chunk_size, process, data
    ):
        config = TraceConfig(packet_count=800, arrival_process=process)
        full = list(SyntheticTrace(config=config, seed=seed).iter_batches(chunk_size))
        start = data.draw(
            st.integers(min_value=0, max_value=len(full)), label="start_chunk"
        )
        suffix = list(
            SyntheticTrace(config=config, seed=seed).iter_batches(
                chunk_size, start_chunk=start
            )
        )
        assert len(suffix) == len(full) - start
        for expected, actual in zip(full[start:], suffix):
            for column in (
                "src_ip", "dst_ip", "src_port", "dst_port", "protocol",
                "ip_id", "length", "uid", "send_time", "flow_id",
            ):
                assert np.array_equal(
                    getattr(actual, column), getattr(expected, column)
                ), column
            assert np.array_equal(actual.payload, expected.payload)


class TestRunnerResumeEquality:
    """Runner-level: kill + resume from a RunnerCheckpoint ≡ uninterrupted."""

    @settings(max_examples=6, deadline=None)
    @given(
        condition=streamable_conditions(),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        chunk_size=st.sampled_from([128, 200, 250]),
        checkpoint_every=st.integers(min_value=1, max_value=3),
    )
    def test_resume_reproduces_result_and_receipts(
        self, condition, seed, chunk_size, checkpoint_every
    ):
        spec = _spec(seed, condition)
        policy = ExecutionPolicy(engine="streaming", chunk_size=chunk_size)
        reference = run_cell_full(spec, policy=policy)

        # Checkpointed run: the sink pickles immediately (the checkpoint holds
        # live collector references, per the RunnerCheckpoint contract).
        blobs: list[bytes] = []
        checkpointed = run_cell_full(
            spec,
            policy=ExecutionPolicy(
                engine="streaming",
                chunk_size=chunk_size,
                checkpoint_every=checkpoint_every,
            ),
            checkpoint_sink=lambda ckpt: blobs.append(pickle.dumps(ckpt)),
        )
        assert checkpointed.result.to_json() == reference.result.to_json()
        assert blobs, "checkpoint_every should have fired at least once"

        # "Killed" run resumes from the last persisted checkpoint.
        resumed = run_cell_full(
            spec, policy=policy, resume_from=pickle.loads(blobs[-1])
        )
        assert resumed.result.to_json() == reference.result.to_json()
        assert receipts_digest(resumed.reports) == receipts_digest(reference.reports)
