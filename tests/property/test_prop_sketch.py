"""Properties of the mergeable quantile sketch.

For arbitrary finite float64 samples (heavy tails, duplicates, sorted and
reverse-sorted runs, mixed signs, exact zeros, magnitudes across hundreds
of orders of magnitude):

* merge is associative and commutative **byte-for-byte** — any grouping of
  any partition converges on one ``state_digest()``, equal to the one-shot
  sketch's;
* the digest is invariant to the order samples were folded in;
* serialization round trips bit-exactly through ``to_state()`` (the JSON
  checkpoint form) and pickle, so state rebuilt in another process is
  indistinguishable from the original;
* every quantile estimate satisfies the documented relative error bound
  against the exact order statistics.
"""

from __future__ import annotations

import json
import math
import pickle

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.sketch import DelayQuantileSketch

_QUANTILES = (0.0, 0.1, 0.5, 0.9, 0.99, 1.0)

# Finite, and away from the extreme ~1e308 edge where gamma**i itself
# overflows float64 (the sketch documents its bound for |x| <= 1e300).
_sample = st.one_of(
    st.floats(
        min_value=-1e300,
        max_value=1e300,
        allow_nan=False,
        allow_infinity=False,
    ),
    st.sampled_from([0.0, 1e-3, -1e-3, 2.5e-4]),  # force ties and zeros
)
_samples = st.lists(_sample, min_size=0, max_size=120)
_sizes = st.sampled_from([8, 32, 512])


@settings(max_examples=120, deadline=None)
@given(samples=_samples, size=_sizes, data=st.data())
def test_merge_grouping_and_order_invariance(samples, size, data):
    one_shot = DelayQuantileSketch(size, samples)

    # arbitrary partition, arbitrary merge order
    pieces: list[list[float]] = [[]]
    for value in samples:
        if data.draw(st.booleans(), label="split-here"):
            pieces.append([])
        pieces[-1].append(value)
    order = data.draw(st.permutations(range(len(pieces))), label="merge-order")

    merged = DelayQuantileSketch(size)
    for index in order:
        merged.merge(DelayQuantileSketch(size, pieces[index]))
    assert merged.state_digest() == one_shot.state_digest()

    # fold order within one sketch doesn't matter either
    shuffled = data.draw(st.permutations(samples), label="extend-order")
    assert (
        DelayQuantileSketch(size, shuffled).state_digest()
        == one_shot.state_digest()
    )


@settings(max_examples=100, deadline=None)
@given(samples=_samples, size=_sizes)
def test_state_round_trips_are_bit_exact(samples, size):
    sketch = DelayQuantileSketch(size, samples)
    digest = sketch.state_digest()

    # the JSON checkpoint form survives serialization to text and back
    payload = json.loads(json.dumps(sketch.to_state()))
    rebuilt = DelayQuantileSketch.from_state(payload)
    assert rebuilt.state_digest() == digest
    assert rebuilt.quantiles(_QUANTILES) == sketch.quantiles(_QUANTILES)

    # pickle (the process-boundary transport) preserves the digest too
    assert pickle.loads(pickle.dumps(sketch)).state_digest() == digest


@settings(max_examples=150, deadline=None)
@given(samples=st.lists(_sample, min_size=1, max_size=120), size=_sizes)
def test_quantile_estimates_satisfy_the_documented_bound(samples, size):
    sketch = DelayQuantileSketch(size, samples)
    alpha = sketch.relative_accuracy
    ordered = np.sort(np.asarray(samples, dtype=np.float64))
    estimates = sketch.quantiles(_QUANTILES)
    for quantile in _QUANTILES:
        rank = quantile * (len(ordered) - 1)
        bracket = max(
            abs(ordered[int(math.floor(rank))]),
            abs(ordered[int(math.ceil(rank))]),
        )
        exact = float(np.quantile(ordered, quantile))
        bound = alpha * bracket
        assert abs(estimates[quantile] - exact) <= bound * (1 + 1e-9) + 1e-18
