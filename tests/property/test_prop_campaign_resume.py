"""Property: an interrupted-and-resumed campaign equals an uninterrupted one.

For arbitrary interval counts, interrupt points (including multiple kills in
one campaign and kills on different engines), the resumed run store must be
**byte-identical** to the uninterrupted run's — same records (receipts
digests, estimates, verdicts, delay samples), same summary, same bytes on
disk.  Interrupts land between intervals because the store append is atomic:
a kill mid-interval leaves no record, which is indistinguishable from a kill
just before the interval started — so interval-granularity interrupt points
cover every real kill timing.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api.spec import (
    CampaignSpec,
    ConditionSpec,
    EstimationSpec,
    ExperimentSpec,
    HOPSpec,
    PathSpec,
    ProtocolSpec,
    SLATargetSpec,
    TrafficSpec,
)
from repro.engine.campaign import CampaignRunner
from repro.store import RunStore

# Small but non-degenerate: every interval yields real samples, aggregates
# and verdicts while staying fast enough for a property suite.
_PACKETS = 300


def _spec(intervals: int, seed: int) -> CampaignSpec:
    return CampaignSpec(
        name="prop-campaign",
        intervals=intervals,
        cell=ExperimentSpec(
            seed=seed,
            traffic=TrafficSpec(workload=None, packet_count=_PACKETS),
            path=PathSpec(
                conditions={
                    "X": ConditionSpec(
                        delay="jitter",
                        delay_params={"base_delay": 1e-3, "jitter_std": 0.3e-3},
                        loss="bernoulli",
                        loss_params={"loss_rate": 0.05},
                    )
                }
            ),
            protocol=ProtocolSpec(
                default=HOPSpec(
                    sampling_rate=0.25, marker_rate=0.03, aggregate_size=100
                )
            ),
            estimation=EstimationSpec(observer="S", targets=("X",)),
        ),
        sla=SLATargetSpec(delay_bound=8e-3, delay_quantile=0.9, loss_bound=0.2),
    )


def _store_files(store: RunStore) -> dict[str, bytes]:
    return {
        name: (store.path / name).read_bytes()
        for name in ("spec.json", "records.jsonl", "summary.json")
    }


@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    intervals=st.integers(min_value=2, max_value=5),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    data=st.data(),
)
def test_resume_equals_uninterrupted(tmp_path_factory, intervals, seed, data):
    spec = _spec(intervals, seed)
    base = tmp_path_factory.mktemp("campaign")

    uninterrupted = RunStore.create(base / "uninterrupted", spec)
    CampaignRunner(spec, uninterrupted).run()

    # An arbitrary (possibly repeated) interrupt schedule: run a few
    # intervals, "die", reopen the store, repeat — switching engines between
    # lives, which the byte-identical engines contract permits.
    interrupted = RunStore.create(base / "interrupted", spec)
    engines = [
        {"engine": "batch"},
        {"engine": "streaming", "chunk_size": 64},
        {"engine": "scalar"},
    ]
    completed = 0
    life = 0
    while completed < intervals:
        step = data.draw(
            st.integers(min_value=0, max_value=intervals - completed),
            label=f"life-{life}-intervals",
        )
        knobs = engines[life % len(engines)]
        runner = CampaignRunner.resume(RunStore.open(base / "interrupted"), **knobs)
        runner.run(max_intervals=step)
        completed += step
        life += 1
        if life > intervals + 2:  # every remaining interval in one last life
            CampaignRunner.resume(RunStore.open(base / "interrupted")).run()
            completed = intervals

    final = RunStore.open(base / "interrupted")
    assert final.is_complete
    assert _store_files(final) == _store_files(uninterrupted)
    assert final.digest() == uninterrupted.digest()

    # records agree field-by-field too (clearer failure than raw bytes)
    for resumed_record, full_record in zip(
        final.records(), uninterrupted.records()
    ):
        assert resumed_record["receipts_digest"] == full_record["receipts_digest"]
        assert resumed_record["estimates"] == full_record["estimates"]
        assert resumed_record["verdicts"] == full_record["verdicts"]
        assert resumed_record["delay_samples"] == full_record["delay_samples"]
    assert final.summary() == uninterrupted.summary()
