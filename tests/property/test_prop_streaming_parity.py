"""Property tests for mergeable collector state and streaming parity.

The shard-parallel streaming engine rests on three algebraic facts, each
hammered here with hypothesis-generated streams and arbitrary split points:

* **split-run-merge == whole-run** — observing a stream in one go or
  splitting it at any boundaries into fresh samplers/aggregators and merging
  them back yields bit-identical state (``state_digest``) and receipts;
* **merge is associative** — folding shard states left-to-right, right-to-
  left, or in a balanced grouping produces identical state, so shard
  scheduling order never matters;
* **trace chunking is invariant** — ``SyntheticTrace.iter_batches`` yields
  chunks whose concatenation equals ``packet_batch()`` for every chunk size,
  and the streaming scenario driver reproduces ``run_batch``'s per-HOP
  observations for every chunking.

``time_sum`` is covered by the ``state_digest`` comparison at its documented
10-significant-digit tolerance; every other quantity is exact.
"""

from __future__ import annotations

import copy

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.aggregation import Aggregator, AggregatorConfig
from repro.core.hop import HOPCollector, HOPConfig
from repro.core.receipts import PathID
from repro.core.sampling import DelaySampler, SamplerConfig
from repro.net.hashing import MASK64
from repro.net.topology import figure1_topology
from repro.traffic.trace import SyntheticTrace, TraceConfig, default_prefix_pair


def _path_id() -> PathID:
    return PathID(
        prefix_pair=default_prefix_pair(),
        reporting_hop=2,
        previous_hop=1,
        next_hop=3,
        max_diff=1e-3,
    )


@st.composite
def digest_time_stream(draw, max_size=400):
    """A (digests, sorted times) stream plus split boundaries into >= 2 parts."""
    size = draw(st.integers(min_value=0, max_value=max_size))
    seed = draw(st.integers(min_value=0, max_value=2**32 - 1))
    rng = np.random.default_rng(seed)
    digests = rng.integers(0, MASK64, size=size, dtype=np.uint64)
    # Quantized times produce exact duplicates, including across split
    # boundaries — the nastiest case for stable tie-breaking.
    if draw(st.booleans()):
        times = np.sort(rng.integers(0, max(1, size // 3) + 1, size=size) * 2.5e-4)
    else:
        times = np.sort(rng.random(size) * 0.2)
    part_count = draw(st.integers(min_value=2, max_value=5))
    boundaries = sorted(
        draw(
            st.lists(
                st.integers(min_value=0, max_value=size),
                min_size=part_count - 1,
                max_size=part_count - 1,
            )
        )
    )
    bounds = [0] + boundaries + [size]
    return digests, times, bounds


def _observe(component, digests, times, batched: bool) -> None:
    if batched:
        component.observe_batch(digests, times)
    else:
        for digest, time in zip(digests, times):
            component.observe(int(digest), float(time))


class TestSamplerMerge:
    @settings(max_examples=60, deadline=None)
    @given(digest_time_stream(), st.booleans())
    def test_split_run_merge_equals_whole_run(self, stream, batched):
        digests, times, bounds = stream
        config = SamplerConfig(sampling_rate=0.4, marker_rate=0.08)
        whole = DelaySampler(config)
        _observe(whole, digests, times, batched)

        merged = DelaySampler(config)
        for start, stop in zip(bounds, bounds[1:]):
            part = DelaySampler(config)
            _observe(part, digests[start:stop], times[start:stop], batched)
            merged.merge(part)

        assert merged.state_digest() == whole.state_digest()
        path_id = _path_id()
        assert merged.receipt(path_id) == whole.receipt(path_id)

    @settings(max_examples=60, deadline=None)
    @given(digest_time_stream())
    def test_merge_is_associative(self, stream):
        digests, times, bounds = stream
        config = SamplerConfig(sampling_rate=0.4, marker_rate=0.08)
        parts = []
        for start, stop in zip(bounds, bounds[1:]):
            part = DelaySampler(config)
            part.observe_batch(digests[start:stop], times[start:stop])
            parts.append(part)

        left_fold = copy.deepcopy(parts[0])
        for part in parts[1:]:
            left_fold.merge(copy.deepcopy(part))

        right_fold = copy.deepcopy(parts[-1])
        for part in reversed(parts[:-1]):
            right_fold = copy.deepcopy(part).merge(right_fold)

        assert left_fold.state_digest() == right_fold.state_digest()


class TestAggregatorMerge:
    @settings(max_examples=60, deadline=None)
    @given(
        digest_time_stream(),
        st.booleans(),
        st.sampled_from([0.0, 2.5e-4, 1e-3, 1e-2]),
        st.integers(min_value=2, max_value=40),
    )
    def test_split_run_merge_equals_whole_run(self, stream, batched, window, agg_size):
        digests, times, bounds = stream
        config = AggregatorConfig(expected_aggregate_size=agg_size, reorder_window=window)
        whole = Aggregator(config)
        _observe(whole, digests, times, batched)

        merged = Aggregator(config)
        for start, stop in zip(bounds, bounds[1:]):
            part = Aggregator(config)
            _observe(part, digests[start:stop], times[start:stop], batched)
            merged.merge(part)

        assert merged.state_digest() == whole.state_digest()

        # Receipts (including AggTrans windows and order) must agree; time_sum
        # at its documented tolerance.
        path_id = _path_id()
        whole.flush()
        merged.flush()
        whole_receipts = whole.receipts(path_id)
        merged_receipts = merged.receipts(path_id)
        assert len(merged_receipts) == len(whole_receipts)
        for mine, reference in zip(merged_receipts, whole_receipts):
            assert mine.agg_id == reference.agg_id
            assert mine.pkt_count == reference.pkt_count
            assert mine.start_time == reference.start_time
            assert mine.end_time == reference.end_time
            assert mine.trans_before == reference.trans_before
            assert mine.trans_after == reference.trans_after
            assert np.isclose(mine.time_sum, reference.time_sum, rtol=1e-9, atol=1e-12)

    @settings(max_examples=60, deadline=None)
    @given(digest_time_stream(), st.sampled_from([0.0, 1e-3, 1e-2]))
    def test_merge_is_associative(self, stream, window):
        digests, times, bounds = stream
        config = AggregatorConfig(expected_aggregate_size=7, reorder_window=window)
        parts = []
        for start, stop in zip(bounds, bounds[1:]):
            part = Aggregator(config)
            part.observe_batch(digests[start:stop], times[start:stop])
            parts.append(part)

        left_fold = copy.deepcopy(parts[0])
        for part in parts[1:]:
            left_fold.merge(copy.deepcopy(part))

        right_fold = copy.deepcopy(parts[-1])
        for part in reversed(parts[:-1]):
            right_fold = copy.deepcopy(part).merge(right_fold)

        assert left_fold.state_digest() == right_fold.state_digest()

    def test_merge_rejects_mismatched_config_and_flushed_state(self):
        first = Aggregator(AggregatorConfig(expected_aggregate_size=5))
        second = Aggregator(AggregatorConfig(expected_aggregate_size=6))
        try:
            first.merge(second)
        except ValueError:
            pass
        else:  # pragma: no cover
            raise AssertionError("config mismatch not rejected")
        third = Aggregator(AggregatorConfig(expected_aggregate_size=5))
        third.observe(1, 0.0)
        third.flush()
        try:
            Aggregator(AggregatorConfig(expected_aggregate_size=5)).merge(third)
        except ValueError:
            pass
        else:  # pragma: no cover
            raise AssertionError("flushed merge not rejected")


class TestCollectorMerge:
    @settings(max_examples=20, deadline=None)
    @given(
        st.integers(min_value=0, max_value=2**32 - 1),
        st.integers(min_value=2, max_value=4),
    )
    def test_collector_split_feed_merge_equals_whole(self, seed, parts):
        _, path = figure1_topology()
        hop = path.hops[1]
        config = HOPConfig(
            sampler=SamplerConfig(sampling_rate=0.3, marker_rate=0.05),
            aggregator=AggregatorConfig(expected_aggregate_size=50),
        )
        trace = SyntheticTrace(config=TraceConfig(packet_count=600), seed=seed)
        batch = trace.packet_batch()

        whole = HOPCollector(hop, config)
        whole.register_path(path)
        whole.observe_batch(batch, batch.send_time)

        rng = np.random.default_rng(seed)
        boundaries = sorted(int(value) for value in rng.integers(0, 601, size=parts - 1))
        bounds = [0] + boundaries + [600]
        merged = None
        for start, stop in zip(bounds, bounds[1:]):
            collector = HOPCollector(hop, config)
            collector.register_path(path)
            span = batch.take(np.arange(start, stop))
            collector.observe_batch(span, span.send_time)
            merged = collector if merged is None else merged.merge(collector)

        assert merged.state_digest() == whole.state_digest()
        assert merged.observed_packets == whole.observed_packets
        assert merged.observed_bytes == whole.observed_bytes


class TestTraceChunking:
    @settings(max_examples=15, deadline=None)
    @given(
        st.integers(min_value=0, max_value=2**32 - 1),
        st.integers(min_value=1, max_value=900),
        st.sampled_from(["poisson", "cbr", "mmpp"]),
    )
    def test_iter_batches_concat_equals_packet_batch(self, seed, chunk_size, process):
        config = TraceConfig(packet_count=800, arrival_process=process)
        full = SyntheticTrace(config=config, seed=seed).packet_batch()
        parts = list(SyntheticTrace(config=config, seed=seed).iter_batches(chunk_size))
        assert sum(len(part) for part in parts) == len(full)
        for column in (
            "src_ip", "dst_ip", "src_port", "dst_port", "protocol",
            "ip_id", "length", "uid", "send_time", "flow_id",
        ):
            concatenated = np.concatenate([getattr(part, column) for part in parts])
            assert np.array_equal(concatenated, getattr(full, column)), column
        assert np.array_equal(
            np.concatenate([part.payload for part in parts]), full.payload
        )
