"""Property: any interval completion order commits a byte-identical store.

Distributed workers finish intervals in arbitrary order (work stealing,
stragglers, kills), but the coordinator's reorder buffer commits strictly in
interval order and folds the accumulator exactly as a single-host runner
would.  For arbitrary interval counts and arbitrary completion permutations
— with the commit loop interleaved after every staging, so partial reorder
states are exercised, not just the fully-staged endgame — the finished store
must be **byte-identical** (records, summary, digest) to an uninterrupted
single-host run of the same spec.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api.spec import (
    CampaignSpec,
    ConditionSpec,
    ExperimentSpec,
    HOPSpec,
    PathSpec,
    ProtocolSpec,
    SLATargetSpec,
    TrafficSpec,
)
from repro.dist import DISPATCH_DIR, DispatchCoordinator, StagingArea
from repro.engine.campaign import CampaignAccumulator, CampaignRunner, interval_record
from repro.store import RunStore

_PACKETS = 300


def _spec(intervals: int, seed: int) -> CampaignSpec:
    return CampaignSpec(
        name="prop-dispatch",
        intervals=intervals,
        cell=ExperimentSpec(
            seed=seed,
            traffic=TrafficSpec(workload=None, packet_count=_PACKETS),
            path=PathSpec(
                conditions={
                    "X": ConditionSpec(
                        delay="jitter",
                        delay_params={"base_delay": 1e-3, "jitter_std": 0.2e-3},
                    )
                }
            ),
            protocol=ProtocolSpec(
                default=HOPSpec(sampling_rate=0.2, marker_rate=0.02, aggregate_size=150)
            ),
        ),
        sla=SLATargetSpec(delay_bound=10e-3, delay_quantile=0.9, loss_bound=0.05),
    )


@st.composite
def _completion_orders(draw):
    intervals = draw(st.integers(min_value=2, max_value=5))
    order = draw(st.permutations(list(range(intervals))))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    return intervals, list(order), seed


@given(case=_completion_orders())
@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_any_completion_order_commits_byte_identical_store(case, tmp_path_factory):
    intervals, order, seed = case
    spec = _spec(intervals, seed)
    base = tmp_path_factory.mktemp("dispatch-order")

    direct = RunStore.create(base / "direct", spec)
    CampaignRunner(spec, direct).run()

    store = RunStore.create(base / "dispatched", spec)
    staging = StagingArea(base / "dispatched" / DISPATCH_DIR)
    coordinator = DispatchCoordinator(store, workers=0)
    accumulator = CampaignAccumulator.from_records(spec, store.records())
    for interval in order:
        staging.stage(interval, interval_record(spec, interval), worker="prop")
        # Commit whatever the reorder buffer releases right now — the
        # interleaving is the point: a permutation starting high holds
        # everything back, one starting at 0 streams commits immediately.
        coordinator._commit_ready(accumulator)
    assert store.record_count == intervals
    # run() on the fully-committed store writes the summary and cleans up
    # the dispatch scratch dir exactly as a live coordinator would.
    outcome = coordinator.run()
    assert outcome.completed

    assert store.records_path.read_bytes() == direct.records_path.read_bytes()
    assert store.summary() == direct.summary()
    assert store.digest() == direct.digest()
    assert not (base / "dispatched" / DISPATCH_DIR).exists()
