"""Integration tests: distributed dispatch with real worker subprocesses.

The ISSUE acceptance criterion, end to end: a campaign dispatched across
several worker processes — including workers SIGKILLed mid-interval on a
seeded chaos schedule — finishes with a run store **byte-identical**
(``RunStore.digest()`` and a full directory diff) to an uninterrupted
single-host ``repro run`` of the same spec.
"""

from __future__ import annotations

import filecmp
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

import repro
from repro.api.spec import (
    CampaignSpec,
    ConditionSpec,
    ExperimentSpec,
    HOPSpec,
    PathSpec,
    ProtocolSpec,
    SLATargetSpec,
    TrafficSpec,
)
from repro.dist import DISPATCH_DIR, ChaosSchedule, dispatch_campaign
from repro.engine.campaign import CampaignRunner
from repro.store import RunStore


def _spec(name: str, intervals: int, seed: int = 97) -> CampaignSpec:
    return CampaignSpec(
        name=name,
        intervals=intervals,
        cell=ExperimentSpec(
            seed=seed,
            traffic=TrafficSpec(workload=None, packet_count=300),
            path=PathSpec(
                conditions={
                    "X": ConditionSpec(
                        delay="jitter",
                        delay_params={"base_delay": 1e-3, "jitter_std": 0.2e-3},
                    )
                }
            ),
            protocol=ProtocolSpec(
                default=HOPSpec(sampling_rate=0.2, marker_rate=0.02, aggregate_size=150)
            ),
        ),
        sla=SLATargetSpec(delay_bound=10e-3, delay_quantile=0.9, loss_bound=0.05),
    )


def _direct_run(base: Path, spec: CampaignSpec) -> RunStore:
    store = RunStore.create(base / "direct", spec)
    CampaignRunner(spec, store).run()
    return store


def _child_env() -> dict[str, str]:
    package_parent = str(Path(repro.__file__).resolve().parent.parent)
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [package_parent, env["PYTHONPATH"]]
        if env.get("PYTHONPATH")
        else [package_parent]
    )
    return env


def _assert_stores_identical(dispatched: Path, direct: Path) -> None:
    """Byte-identity both ways: store digests and a full directory diff."""
    assert RunStore.open(dispatched).digest() == RunStore.open(direct).digest()
    comparison = filecmp.dircmp(dispatched, direct)
    assert comparison.left_only == []  # no dispatch scratch left behind
    assert comparison.right_only == []
    mismatched = [
        name
        for name in comparison.common_files
        if (dispatched / name).read_bytes() != (direct / name).read_bytes()
    ]
    assert mismatched == []


class TestSubprocessPool:
    def test_four_workers_match_direct_run(self, tmp_path):
        spec = _spec("dispatch-pool", intervals=6)
        direct = _direct_run(tmp_path, spec)
        outcome = dispatch_campaign(tmp_path / "dispatched", spec=spec, workers=4)
        assert outcome.completed
        _assert_stores_identical(tmp_path / "dispatched", Path(direct.path))

    def test_interrupted_dispatch_resumes(self, tmp_path):
        # A dispatch that commits a prefix, "dies", and is re-invoked must
        # finish from the committed prefix — same contract as `repro resume`.
        spec = _spec("dispatch-resume", intervals=4)
        direct = _direct_run(tmp_path, spec)
        store = RunStore.create(tmp_path / "dispatched", spec)
        CampaignRunner(spec, store).run(max_intervals=2)  # the "first life"
        outcome = dispatch_campaign(tmp_path / "dispatched", workers=2)
        assert outcome.completed
        assert outcome.intervals_run == 2  # only the remaining tail
        _assert_stores_identical(tmp_path / "dispatched", Path(direct.path))


class TestChaos:
    def test_seeded_kills_still_byte_identical(self, tmp_path):
        spec = _spec("dispatch-chaos", intervals=8)
        direct = _direct_run(tmp_path, spec)
        outcome = dispatch_campaign(
            tmp_path / "dispatched",
            spec=spec,
            workers=4,
            lease=3.0,  # short lease so a killed worker's claim lapses fast
            chaos=ChaosSchedule(seed=1337, kills=3, min_delay=0.2, max_delay=0.8),
        )
        assert outcome.completed
        _assert_stores_identical(tmp_path / "dispatched", Path(direct.path))

    def test_sigkill_while_holding_a_claim(self, tmp_path):
        # Deterministic mid-interval kill: a lone worker-only process is
        # SIGKILLed the moment its claim file appears (claims are created
        # *before* computing, so the kill is guaranteed mid-interval), then
        # a fresh dispatch with a short lease must take the interval over.
        spec = _spec("dispatch-midkill", intervals=3)
        direct = _direct_run(tmp_path, spec)
        run_dir = tmp_path / "dispatched"
        RunStore.create(run_dir, spec)
        claims_dir = run_dir / DISPATCH_DIR / "claims"
        worker = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "dispatch",
                str(run_dir),
                "--worker-only",
                "--worker-id",
                "doomed",
                "--lease",
                "2.0",
                "--quiet",
            ],
            env=_child_env(),
            stdout=subprocess.DEVNULL,
        )
        try:
            deadline = time.monotonic() + 120.0
            while time.monotonic() < deadline:
                if claims_dir.is_dir() and any(claims_dir.glob("interval-*.json")):
                    break
                if worker.poll() is not None:
                    pytest.fail("worker exited before claiming an interval")
                time.sleep(0.01)
            else:
                pytest.fail("worker never claimed an interval")
            os.kill(worker.pid, signal.SIGKILL)
        finally:
            worker.wait()
        assert any(claims_dir.glob("interval-*.json"))  # the orphaned claim
        outcome = dispatch_campaign(run_dir, workers=2, lease=2.0)
        assert outcome.completed
        _assert_stores_identical(run_dir, Path(direct.path))


class TestCLI:
    def test_cli_dispatch_matches_direct_run(self, tmp_path):
        spec = _spec("dispatch-cli", intervals=4)
        direct = _direct_run(tmp_path, spec)
        spec_file = tmp_path / "spec.json"
        spec_file.write_text(spec.to_json())
        run_dir = tmp_path / "dispatched"
        result = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "dispatch",
                str(run_dir),
                "--spec",
                str(spec_file),
                "--workers",
                "2",
                "--quiet",
            ],
            env=_child_env(),
            capture_output=True,
            text=True,
            timeout=240.0,
        )
        assert result.returncode == 0, result.stderr
        _assert_stores_identical(run_dir, Path(direct.path))

    def test_cli_rejects_checkpointing_and_chaos_misuse(self, tmp_path):
        spec = _spec("dispatch-reject", intervals=2)
        run_dir = tmp_path / "run"
        RunStore.create(run_dir, spec)
        base = [sys.executable, "-m", "repro.cli", "dispatch", str(run_dir)]
        env = _child_env()
        checkpoint = subprocess.run(
            [*base, "--engine", "streaming", "--checkpoint-every", "1"],
            env=env,
            capture_output=True,
            text=True,
            timeout=120.0,
        )
        assert checkpoint.returncode != 0
        assert "checkpoint_every" in checkpoint.stderr
        chaos = subprocess.run(
            [*base, "--chaos-kills", "2"],
            env=env,
            capture_output=True,
            text=True,
            timeout=120.0,
        )
        assert chaos.returncode != 0
        assert "--chaos-seed" in chaos.stderr
