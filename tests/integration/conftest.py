"""Shared fixtures for the integration tests.

The integration tests exercise the full pipeline (trace → path scenario →
HOP collectors → receipts → verifier) on a moderately sized packet sequence.
The sequence is generated once per session; scenarios derive their own
impairments from it.
"""

from __future__ import annotations

import pytest

from repro.core.aggregation import AggregatorConfig
from repro.core.hop import HOPConfig
from repro.core.sampling import SamplerConfig
from repro.traffic.flows import FlowGeneratorConfig
from repro.traffic.trace import SyntheticTrace, TraceConfig


@pytest.fixture(scope="session")
def integration_packets(prefix_pair):
    """A 12k-packet sequence at the paper's 100k packets-per-second rate."""
    config = TraceConfig(
        packet_count=12_000,
        packets_per_second=100_000.0,
        flow_config=FlowGeneratorConfig(),
    )
    return SyntheticTrace(config=config, prefix_pair=prefix_pair, seed=101).packets()


@pytest.fixture(scope="session")
def default_hop_config() -> HOPConfig:
    """A moderately aggressive configuration suited to the 12k-packet trace."""
    return HOPConfig(
        sampler=SamplerConfig(sampling_rate=0.05, marker_rate=0.005),
        aggregator=AggregatorConfig(expected_aggregate_size=1000),
    )
