"""Integration tests: lying and colluding domains are exposed.

These reproduce the paper's verifiability arguments (Sections 3.1 and 4): a
domain that fabricates receipts to hide loss or delay becomes inconsistent
with its downstream neighbor; a colluding neighbor can cover the lie only by
absorbing the blame itself.
"""

from __future__ import annotations

import pytest

from repro.adversary.collusion import ColludingDomainAgent
from repro.adversary.lying import LyingDomainAgent
from repro.core.protocol import VPMSession
from repro.simulation.scenario import PathScenario, SegmentCondition
from repro.traffic.delay_models import ConstantDelayModel
from repro.traffic.loss_models import BernoulliLossModel


@pytest.fixture(scope="module")
def lossy_observation(integration_packets):
    """X drops 20% of the traffic and delays the rest by 15 ms."""
    scenario = PathScenario(seed=301)
    scenario.configure_domain(
        "X",
        SegmentCondition(
            delay_model=ConstantDelayModel(15e-3),
            loss_model=BernoulliLossModel(0.2, seed=302),
        ),
    )
    return scenario.run(integration_packets)


def run_session(path, observation, config, agents=None):
    session = VPMSession(
        path,
        configs={domain.name: config for domain in path.domains},
        agents=agents or {},
    )
    session.run(observation)
    return session


class TestLyingDomainExposed:
    def test_lie_creates_inconsistencies_on_downstream_link(
        self, path, lossy_observation, default_hop_config
    ):
        liar = LyingDomainAgent("X", path, config=default_hop_config, claimed_delay=0.5e-3)
        session = run_session(path, lossy_observation, default_hop_config, {"X": liar})
        findings = session.verifier_for("L").check_consistency()
        assert findings, "the fabricated receipts must trip the consistency check"
        # Every finding implicates the X->N link (HOP 5 upstream, HOP 6 downstream).
        assert {(finding.upstream_hop, finding.downstream_hop) for finding in findings} == {
            (5, 6)
        }
        kinds = {finding.kind for finding in findings}
        assert "count-mismatch" in kinds or "missing-downstream" in kinds

    def test_verify_domain_rejects_liar(self, path, lossy_observation, default_hop_config):
        liar = LyingDomainAgent("X", path, config=default_hop_config)
        session = run_session(path, lossy_observation, default_hop_config, {"X": liar})
        result = session.verify("L", "X")
        assert not result.accepted

    def test_liars_claimed_performance_is_flattering(
        self, path, lossy_observation, default_hop_config
    ):
        liar = LyingDomainAgent("X", path, config=default_hop_config, claimed_delay=0.5e-3)
        session = run_session(path, lossy_observation, default_hop_config, {"X": liar})
        claimed = session.estimate("L", "X")
        truth = lossy_observation.truth_for("X")
        # The claim hides both the 20% loss and the 15 ms delay...
        assert claimed.loss_rate < 0.01
        assert claimed.delay_quantile(0.9) < 2e-3
        assert truth.loss_rate > 0.15
        # ...but the independent, neighbor-based estimate still exposes the
        # true delay, so the lie buys nothing against a careful verifier.
        independent = session.verifier_for("L").estimate_domain_via_neighbors("X")
        assert independent.delay_quantile(0.9) > 10e-3

    def test_honest_run_has_no_findings(self, path, lossy_observation, default_hop_config):
        session = run_session(path, lossy_observation, default_hop_config)
        assert session.verifier_for("L").check_consistency() == []
        assert session.verify("L", "X").accepted


class TestCollusion:
    def test_colluder_covers_the_link_but_takes_the_blame(
        self, path, lossy_observation, default_hop_config
    ):
        liar = LyingDomainAgent("X", path, config=default_hop_config, claimed_delay=0.5e-3)
        colluder = ColludingDomainAgent(
            "N", path, colluding_with=liar, config=default_hop_config
        )
        session = run_session(
            path, lossy_observation, default_hop_config, {"X": liar, "N": colluder}
        )
        verifier = session.verifier_for("L")
        findings = verifier.check_consistency()
        # The X->N link is now clean (N confirms X's claims)...
        assert not any(
            (finding.upstream_hop, finding.downstream_hop) == (5, 6) for finding in findings
        )
        # ...but the packets X dropped now appear to be lost inside N: the
        # colluder absorbed the liar's loss.
        n_performance = verifier.estimate_domain("N")
        x_performance = verifier.estimate_domain("X")
        truth = lossy_observation.truth_for("X")
        assert x_performance.loss_rate < 0.01
        assert n_performance.loss_rate == pytest.approx(truth.loss_rate, rel=0.2)

    def test_collusion_does_not_reduce_total_observed_loss(
        self, path, lossy_observation, default_hop_config
    ):
        # Sanity check of the zero-sum property: honest vs colluding runs
        # attribute the same total loss to the X+N segment.
        honest_session = run_session(path, lossy_observation, default_hop_config)
        liar = LyingDomainAgent("X", path, config=default_hop_config)
        colluder = ColludingDomainAgent(
            "N", path, colluding_with=liar, config=default_hop_config
        )
        dishonest_session = run_session(
            path, lossy_observation, default_hop_config, {"X": liar, "N": colluder}
        )
        honest_total = (
            honest_session.estimate("L", "X").lost_packets
            + honest_session.estimate("L", "N").lost_packets
        )
        dishonest_total = (
            dishonest_session.estimate("L", "X").lost_packets
            + dishonest_session.estimate("L", "N").lost_packets
        )
        assert dishonest_total == pytest.approx(honest_total, rel=0.05)
