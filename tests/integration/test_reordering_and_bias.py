"""Integration tests for the two headline robustness mechanisms:

* the AggTrans patch-up that keeps loss computation exact under bounded
  reordering (Section 6.3), and
* the delay-keyed sampling that resists preferential treatment of the sampled
  packets (Section 5.1 / the Section 3.2 attack).
"""

from __future__ import annotations

import pytest

from repro.adversary.bias import BiasedTreatmentAttack
from repro.baselines.trajectory_sampling import TrajectorySamplingPlusPlus
from repro.core.aggregation import AggregatorConfig
from repro.core.hop import HOPConfig
from repro.core.partition import aligned_aggregates
from repro.core.protocol import VPMSession
from repro.core.sampling import SamplerConfig
from repro.simulation.scenario import PathScenario, SegmentCondition
from repro.traffic.delay_models import CongestionDelayModel, ConstantDelayModel
from repro.traffic.loss_models import BernoulliLossModel
from repro.traffic.reordering import WindowReordering


def make_config(sampling_rate: float = 0.05, aggregate_size: int = 1000) -> HOPConfig:
    return HOPConfig(
        sampler=SamplerConfig(sampling_rate=sampling_rate, marker_rate=0.005),
        aggregator=AggregatorConfig(expected_aggregate_size=aggregate_size, reorder_window=0.002),
    )


class TestReorderingPatchUp:
    @pytest.fixture(scope="class")
    def reordered_run(self, path, integration_packets):
        """X reorders packets (within 1 ms) but loses nothing."""
        scenario = PathScenario(seed=501)
        scenario.configure_domain(
            "X",
            SegmentCondition(
                delay_model=ConstantDelayModel(1e-3),
                reordering=WindowReordering(window=1e-3, reorder_probability=0.3, seed=502),
            ),
        )
        observation = scenario.run(integration_packets)
        session = VPMSession(
            path, configs={d.name: make_config(aggregate_size=400) for d in path.domains}
        )
        session.run(observation)
        return observation, session

    def test_loss_exact_despite_reordering(self, reordered_run):
        observation, session = reordered_run
        performance = session.estimate("L", "X")
        assert performance.lost_packets == 0
        assert performance.loss_rate == 0.0

    def test_patch_up_is_what_makes_it_exact(self, reordered_run, path):
        observation, session = reordered_run
        verifier = session.verifier_for("L")
        ingress_aggs = verifier.aggregate_receipts_for(4)
        egress_aggs = verifier.aggregate_receipts_for(5)
        with_patch = aligned_aggregates(ingress_aggs, egress_aggs, apply_reordering_patch=True)
        without_patch = aligned_aggregates(
            ingress_aggs, egress_aggs, apply_reordering_patch=False
        )
        spurious_with = sum(abs(pair.lost_packets) for pair in with_patch)
        spurious_without = sum(abs(pair.lost_packets) for pair in without_patch)
        assert spurious_with == 0
        # Without the patch, packets that crossed a cutting point show up as
        # spurious loss/gain in the per-aggregate comparison.
        assert spurious_without > 0

    def test_no_inconsistencies_from_reordering(self, reordered_run):
        _, session = reordered_run
        assert session.verifier_for("L").check_consistency() == []


class TestBiasResistance:
    """The Section 3.2 attack against a predictable protocol vs against VPM."""

    @pytest.fixture(scope="class")
    def congestion_condition(self):
        return dict(
            delay_model=CongestionDelayModel(scenario="udp-burst", seed=511),
            loss_model=BernoulliLossModel(0.02, seed=512),
        )

    def _run_vpm(self, path, packets, predicate, seed):
        scenario = PathScenario(seed=seed)
        scenario.configure_domain(
            "X",
            SegmentCondition(
                delay_model=CongestionDelayModel(scenario="udp-burst", seed=seed + 1),
                preferential_predicate=predicate,
                preferential_delay=0.2e-3,
            ),
        )
        observation = scenario.run(packets)
        session = VPMSession(
            path, configs={d.name: make_config(sampling_rate=0.05) for d in path.domains}
        )
        session.run(observation)
        performance = session.estimate("L", "X")
        truth = observation.truth_for("X")
        return performance, truth

    def test_biased_treatment_cannot_fool_vpm(self, path, integration_packets, digester):
        """Fast-pathing a blind 5% of traffic barely moves VPM's estimate."""
        attack = BiasedTreatmentAttack(digester=digester, guess_rate=0.05)
        biased_perf, biased_truth = self._run_vpm(
            path, integration_packets, attack.blind_guess_predicate(), seed=520
        )
        true_q90 = biased_truth.delay_quantiles([0.9])[0.9]
        estimated_q90 = biased_perf.delay_quantile(0.9)
        # The estimate still tracks the true (population) delay closely.
        assert estimated_q90 == pytest.approx(true_q90, rel=0.3)

    def test_biased_treatment_fools_trajectory_sampling(
        self, path, integration_packets, digester
    ):
        """The same attacker against TS++ makes the measured delay collapse."""
        protocol = TrajectorySamplingPlusPlus(sampling_rate=0.05)
        attack = BiasedTreatmentAttack(digester=digester)
        predicate = attack.predicate_against(protocol)

        scenario = PathScenario(seed=530)
        scenario.configure_domain(
            "X",
            SegmentCondition(
                delay_model=CongestionDelayModel(scenario="udp-burst", seed=531),
                preferential_predicate=predicate,
                preferential_delay=0.2e-3,
            ),
        )
        observation = scenario.run(integration_packets)
        ingress = [
            (digester.digest(packet), time) for packet, time in observation.at_hop(4)
        ]
        egress = [
            (digester.digest(packet), time) for packet, time in observation.at_hop(5)
        ]
        estimate = protocol.run(ingress, egress)
        truth = observation.truth_for("X")
        true_q90 = truth.delay_quantiles([0.9])[0.9]
        # TS++ reports (roughly) the preferential delay, wildly underestimating
        # the delay the rest of the traffic experienced.
        assert estimate.delay_quantiles[0.9] < 0.2 * true_q90

    def test_vpm_attacker_cannot_predict_samples(self, path, integration_packets, digester):
        """The blind guess overlaps the actually sampled set only at chance level."""
        attack = BiasedTreatmentAttack(digester=digester, guess_rate=0.05)
        predicate = attack.blind_guess_predicate()
        scenario = PathScenario(seed=540)
        observation = scenario.run(integration_packets)
        session = VPMSession(
            path, configs={d.name: make_config(sampling_rate=0.05) for d in path.domains}
        )
        session.run(observation)
        sampled_ids = session.verifier_for("L").sample_receipt_for(4).pkt_ids
        guessed_uids = {
            digester.digest(packet)
            for packet, _ in observation.at_hop(4)
            if predicate(packet)
        }
        overlap = len(sampled_ids & guessed_uids) / len(sampled_ids)
        # At a 5% guessing budget the expected overlap is 5%; far from the
        # 100% an attacker achieves against a predictable protocol.
        assert overlap < 0.15
