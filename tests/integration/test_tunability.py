"""Integration tests: tunability (Sections 5.2, 6.2, 7.2).

Each HOP chooses its own sampling and aggregation rate; accuracy must degrade
gracefully with fewer resources, and differently tuned HOPs must still produce
comparable (joinable, verifiable) receipts.
"""

from __future__ import annotations

import pytest

from repro.analysis.metrics import delay_accuracy_report
from repro.core.aggregation import AggregatorConfig
from repro.core.hop import HOPConfig
from repro.core.protocol import VPMSession
from repro.core.sampling import SamplerConfig
from repro.simulation.scenario import PathScenario, SegmentCondition
from repro.traffic.delay_models import CongestionDelayModel
from repro.traffic.loss_models import GilbertElliottLossModel


def make_config(sampling_rate: float, aggregate_size: int = 1000) -> HOPConfig:
    return HOPConfig(
        sampler=SamplerConfig(sampling_rate=sampling_rate, marker_rate=0.005),
        aggregator=AggregatorConfig(expected_aggregate_size=aggregate_size),
    )


@pytest.fixture(scope="module")
def congested_observation(integration_packets):
    scenario = PathScenario(seed=401)
    scenario.configure_domain(
        "X",
        SegmentCondition(
            delay_model=CongestionDelayModel(scenario="udp-burst", seed=402),
            loss_model=GilbertElliottLossModel.from_target_rate(0.1, seed=403),
        ),
    )
    return scenario.run(integration_packets)


class TestGracefulDegradation:
    def test_accuracy_degrades_smoothly_with_sampling_rate(
        self, path, congested_observation
    ):
        truth = congested_observation.truth_for("X")
        errors = {}
        sample_counts = {}
        for rate in (0.10, 0.02, 0.005):
            session = VPMSession(
                path, configs={d.name: make_config(rate) for d in path.domains}
            )
            session.run(congested_observation)
            performance = session.estimate("L", "X")
            report = delay_accuracy_report(performance, truth)
            errors[rate] = report.max_error_ms
            sample_counts[rate] = performance.delay_sample_count
        # More sampling -> more matched samples.
        assert sample_counts[0.10] > sample_counts[0.02] > sample_counts[0.005]
        # Even the cheapest configuration stays within a few milliseconds.
        assert errors[0.005] < 10.0
        # And the most expensive one is tighter than (or equal to) the cheapest.
        assert errors[0.10] <= errors[0.005] + 1.0

    def test_receipt_cost_scales_with_tuning(self, path, congested_observation):
        expensive = VPMSession(
            path, configs={d.name: make_config(0.1, 500) for d in path.domains}
        )
        expensive.run(congested_observation)
        cheap = VPMSession(
            path, configs={d.name: make_config(0.005, 5000) for d in path.domains}
        )
        cheap.run(congested_observation)
        assert (
            cheap.overhead().receipt_bytes_per_packet
            < expensive.overhead().receipt_bytes_per_packet / 3
        )


class TestIndependentTuning:
    def test_mixed_rates_still_estimate_and_verify(self, path, congested_observation):
        """Each domain picks a different sampling rate; everything still works."""
        configs = {
            "S": make_config(0.02),
            "L": make_config(0.10),
            "X": make_config(0.05),
            "N": make_config(0.01),
            "D": make_config(0.02),
        }
        session = VPMSession(path, configs=configs)
        session.run(congested_observation)
        # No inconsistencies despite heterogeneous tuning.
        assert session.verifier_for("L").check_consistency() == []
        performance = session.estimate("L", "X")
        assert performance.delay_sample_count > 0
        assert performance.offered_packets > 0

    def test_verification_quality_limited_by_neighbor_rate(
        self, path, congested_observation
    ):
        """Section 7.2: N's sampling rate bounds how well L can verify X."""
        def run_with_neighbor_rate(rate: float) -> int:
            configs = {d.name: make_config(0.05) for d in path.domains}
            configs["L"] = make_config(0.05)
            configs["N"] = make_config(rate)
            session = VPMSession(path, configs=configs)
            session.run(congested_observation)
            independent = session.verifier_for("L").estimate_domain_via_neighbors("X")
            return independent.delay_sample_count

        high = run_with_neighbor_rate(0.05)
        low = run_with_neighbor_rate(0.005)
        assert high > 2 * low

    def test_mixed_aggregation_rates_join_at_coarser_granularity(
        self, path, congested_observation
    ):
        configs = {d.name: make_config(0.02, 500) for d in path.domains}
        configs["N"] = make_config(0.02, 4000)  # N aggregates much more coarsely
        session = VPMSession(path, configs=configs)
        session.run(congested_observation)
        fine = session.estimate("L", "X")  # X's two HOPs both use 500
        verifier = session.verifier_for("L")
        coarse = verifier._performance_between("X", 3, 6)  # spans N's coarse ingress
        assert fine.mean_loss_granularity < coarse.mean_loss_granularity
        # The loss numbers still agree (X's loss is what it is).
        assert coarse.lost_packets >= fine.lost_packets
