"""Integration tests for the declarative experiment runner.

The contracts under test:

* an ``Experiment`` cell reproduces, value for value, what the hand-wired
  engine pipeline (scenario → session → verifier) computes for the same
  seeds — the API is a front door, not a different implementation;
* the batch and scalar engines produce identical cells;
* a parallel sweep serializes byte-identically to a serial sweep;
* adversary specs reproduce the paper's lying/collusion outcomes;
* campaigns built from specs run and accumulate.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.api import (
    AdversarySpec,
    CellResult,
    ConditionSpec,
    EstimationSpec,
    Experiment,
    ExperimentSpec,
    HOPSpec,
    PathSpec,
    ProtocolSpec,
    SweepResult,
    TrafficSpec,
)
from repro.core.campaign import MeasurementCampaign
from repro.core.protocol import VPMSession
from repro.simulation.scenario import PathScenario, SegmentCondition
from repro.traffic.delay_models import JitterDelayModel
from repro.traffic.loss_models import BernoulliLossModel
from repro.traffic.workload import make_workload


def _smoke_spec(**overrides) -> ExperimentSpec:
    base = dict(
        name="api-integration",
        seed=13,
        traffic=TrafficSpec(workload="smoke-sequence"),
        path=PathSpec(
            conditions={
                "X": ConditionSpec(
                    delay="jitter",
                    delay_params={"base_delay": 2e-3, "jitter_std": 0.5e-3},
                    loss="bernoulli",
                    loss_params={"loss_rate": 0.1},
                )
            }
        ),
        protocol=ProtocolSpec(default=HOPSpec(sampling_rate=0.02, aggregate_size=500)),
        estimation=EstimationSpec(observer="L", targets=("X",)),
    )
    base.update(overrides)
    return ExperimentSpec(**base)


class TestCellEquivalence:
    def test_cell_matches_hand_wired_pipeline(self):
        """The API front door computes exactly what the engine layer computes."""
        spec = _smoke_spec()
        cell = Experiment(spec).run()

        # Hand-wire the same experiment: same traffic seed, same model seeds
        # (the spec derives them, so we build the spec's own condition), same
        # protocol knobs.
        batch = spec.traffic.build(spec.seed).packet_batch()
        scenario = PathScenario(seed=spec.path.effective_seed(spec.seed))
        scenario.configure_domain("X", spec.path.conditions["X"].build(spec.seed, "X"))
        observation = scenario.run_batch(batch)
        session = VPMSession(
            scenario.path, configs=spec.protocol.build_configs(scenario.path)
        )
        session.run(observation)
        performance = session.verifier_for("L", quantiles=spec.estimation.quantiles
                                           ).estimate_domain("X")

        target = cell.target("X")
        assert target.estimate.loss_rate == performance.loss_rate
        assert target.estimate.delay_sample_count == performance.delay_sample_count
        for entry in target.estimate.delay_quantiles:
            assert entry.estimate == performance.delay_quantiles[entry.quantile].estimate
            assert entry.lower == performance.delay_quantiles[entry.quantile].lower
            assert entry.upper == performance.delay_quantiles[entry.quantile].upper
        truth = observation.truth_for("X")
        assert target.truth.loss_rate == truth.loss_rate
        assert target.truth.offered_packets == truth.offered_packets

    def test_batch_and_scalar_engines_identical(self):
        batch_cell = Experiment(_smoke_spec(engine="batch")).run()
        scalar_cell = Experiment(_smoke_spec(engine="scalar")).run()
        batch_dict = batch_cell.to_dict()
        scalar_dict = scalar_cell.to_dict()
        # Only the engine tag in the recorded spec may differ.
        assert batch_dict.pop("spec")["engine"] == "batch"
        assert scalar_dict.pop("spec")["engine"] == "scalar"
        assert batch_dict == scalar_dict

    def test_estimate_is_close_to_truth(self):
        cell = Experiment(_smoke_spec()).run()
        target = cell.target("X")
        assert target.verification.accepted
        assert target.estimate.loss_rate == pytest.approx(
            target.truth.loss_rate, abs=0.02
        )
        assert target.delay_accuracy((0.5, 0.9)) < 1e-3
        assert cell.overhead.receipt_bytes_per_packet > 0

    def test_result_json_round_trip(self):
        cell = Experiment(_smoke_spec()).run()
        assert CellResult.from_json(cell.to_json()).to_json() == cell.to_json()
        respawned = ExperimentSpec.from_dict(cell.spec)
        assert Experiment(respawned).run().to_json() == cell.to_json()


class TestSweepDeterminism:
    GRID = {
        "protocol.default.sampling_rate": [0.05, 0.01],
        "path.conditions.X.loss_params.loss_rate": [0.0, 0.25],
    }

    def test_parallel_sweep_byte_identical_to_serial(self):
        """A 2x2 sweep with workers=4 serializes exactly like workers=1."""
        serial = Experiment(_smoke_spec()).sweep(self.GRID, workers=1)
        parallel = Experiment(_smoke_spec()).sweep(self.GRID, workers=4)
        assert len(serial) == 4
        assert serial.to_json() == parallel.to_json()

    def test_sweep_grid_order_and_overrides(self):
        sweep = Experiment(_smoke_spec()).sweep(self.GRID, workers=1)
        overrides = [cell.overrides for cell in sweep]
        assert overrides == [
            {"protocol.default.sampling_rate": 0.05,
             "path.conditions.X.loss_params.loss_rate": 0.0},
            {"protocol.default.sampling_rate": 0.05,
             "path.conditions.X.loss_params.loss_rate": 0.25},
            {"protocol.default.sampling_rate": 0.01,
             "path.conditions.X.loss_params.loss_rate": 0.0},
            {"protocol.default.sampling_rate": 0.01,
             "path.conditions.X.loss_params.loss_rate": 0.25},
        ]
        # Higher sampling rate ⇒ at least as many matched samples.
        assert (
            sweep.cells[0].result.target("X").estimate.delay_sample_count
            >= sweep.cells[2].result.target("X").estimate.delay_sample_count
        )
        # Lossy cells see the loss.
        assert sweep.cells[1].result.target("X").truth.loss_rate > 0.15
        assert sweep.cells[0].result.target("X").truth.loss_rate == 0.0

    def test_sweep_json_round_trip(self):
        sweep = Experiment(_smoke_spec()).sweep(
            {"protocol.default.sampling_rate": [0.05, 0.01]}, workers=1
        )
        assert SweepResult.from_json(sweep.to_json()).to_json() == sweep.to_json()

    def test_workers_validation(self):
        with pytest.raises(ValueError, match="workers"):
            Experiment(_smoke_spec()).sweep(self.GRID, workers=0)


class TestAdversarySpecs:
    def _base(self) -> ExperimentSpec:
        return _smoke_spec(
            path=PathSpec(
                conditions={
                    "X": ConditionSpec(
                        delay="constant",
                        delay_params={"delay": 15e-3},
                        loss="bernoulli",
                        loss_params={"loss_rate": 0.2},
                    )
                }
            ),
            estimation=EstimationSpec(observer="L", targets=("X", "N")),
        )

    def test_lying_domain_is_exposed(self):
        spec = dataclasses.replace(
            self._base(),
            adversaries=(
                AdversarySpec(kind="lying", domain="X", params={"claimed_delay": 0.5e-3}),
            ),
        )
        cell = Experiment(spec).run()
        target = cell.target("X")
        # The lie hides the loss ...
        assert target.estimate.loss_rate < 0.01
        assert target.truth.loss_rate > 0.15
        # ... but the receipts no longer verify.
        assert not target.verification.accepted
        assert cell.consistency_findings > 0

    def test_collusion_shifts_blame_to_the_accomplice(self):
        spec = dataclasses.replace(
            self._base(),
            adversaries=(
                AdversarySpec(kind="lying", domain="X", params={"claimed_delay": 0.5e-3}),
                AdversarySpec(kind="colluding", domain="N", params={"colluding_with": "X"}),
            ),
        )
        cell = Experiment(spec).run()
        assert cell.consistency_findings == 0
        assert cell.target("X").estimate.loss_rate < 0.01
        assert cell.target("N").estimate.loss_rate == pytest.approx(
            cell.target("X").truth.loss_rate, abs=0.02
        )

    def test_agent_adversary_at_non_deployed_domain_rejected(self):
        spec = dataclasses.replace(
            self._base(),
            protocol=ProtocolSpec(default=HOPSpec(), domains={"X": None}),
            adversaries=(AdversarySpec(kind="lying", domain="X"),),
        )
        with pytest.raises(ValueError, match="declares that domain non-deployed"):
            Experiment(spec).run()

    def test_agent_adversary_off_path_rejected(self):
        spec = dataclasses.replace(
            self._base(),
            adversaries=(AdversarySpec(kind="lying", domain="Q"),),
        )
        with pytest.raises(ValueError, match="not on the path"):
            Experiment(spec).run()

    def test_colluder_without_liar_is_rejected(self):
        spec = dataclasses.replace(
            self._base(),
            adversaries=(
                AdversarySpec(kind="colluding", domain="N", params={"colluding_with": "X"}),
            ),
        )
        with pytest.raises(ValueError, match="list the 'lying' spec first"):
            Experiment(spec).run()

    @pytest.mark.parametrize("engine", ["batch", "scalar"])
    def test_condition_adversaries_run_under_both_engines(self, engine):
        spec = dataclasses.replace(
            self._base(),
            engine=engine,
            adversaries=(
                AdversarySpec(kind="marker-drop", domain="X"),
                AdversarySpec(kind="biased-treatment", domain="X",
                              params={"guess_rate": 0.02}),
            ),
        )
        cell = Experiment(spec).run()
        assert cell.target("X").truth.offered_packets > 0

    def test_condition_adversaries_identical_across_engines(self):
        cells = {}
        for engine in ("batch", "scalar"):
            spec = dataclasses.replace(
                self._base(),
                engine=engine,
                adversaries=(AdversarySpec(kind="marker-drop", domain="X"),),
            )
            payload = Experiment(spec).run().to_dict()
            payload["spec"].pop("engine")
            cells[engine] = payload
        assert cells["batch"] == cells["scalar"]


class TestCampaignFromSpec:
    def test_campaign_accumulates_intervals(self):
        spec = _smoke_spec(
            traffic=TrafficSpec(workload=None, packet_count=2000),
            estimation=EstimationSpec(observer="S", targets=("X",)),
        )
        experiment = Experiment(spec)
        campaign = experiment.campaign()
        assert isinstance(campaign, MeasurementCampaign)
        result = campaign.run(experiment.interval_packets(2))
        assert result.interval_count == 2
        assert result.total_offered_packets > 0
        assert result.loss_rate == pytest.approx(0.1, abs=0.05)

    def test_from_spec_classmethod(self):
        campaign = MeasurementCampaign.from_spec(_smoke_spec())
        assert campaign.target == "X"
        assert campaign.observer == "L"

    def test_interval_packets_are_seed_spaced_and_reproducible(self):
        experiment = Experiment(_smoke_spec(traffic=TrafficSpec(workload=None, packet_count=500)))
        first = experiment.interval_packets(2)
        second = experiment.interval_packets(2)
        assert [p.uid for p in first[0]] == [p.uid for p in second[0]]
        assert [p.send_time for p in first[0]] != [p.send_time for p in first[1]]


class TestSessionErgonomics:
    def test_single_hop_config_applies_to_every_domain(self):
        """Satellite: VPMSession accepts one HOPConfig for all domains."""
        from repro.core.aggregation import AggregatorConfig
        from repro.core.hop import HOPConfig
        from repro.core.sampling import SamplerConfig

        packets = make_workload("smoke-sequence", seed=1).packets()
        scenario = PathScenario(seed=2)
        scenario.configure_domain(
            "X",
            SegmentCondition(
                delay_model=JitterDelayModel(2e-3, 0.5e-3, seed=3),
                loss_model=BernoulliLossModel(0.1, seed=4),
            ),
        )
        observation = scenario.run(packets)
        config = HOPConfig(
            sampler=SamplerConfig(sampling_rate=0.02),
            aggregator=AggregatorConfig(expected_aggregate_size=500),
        )
        single = VPMSession(scenario.path, configs=config)
        single.run(observation)
        mapping = VPMSession(
            scenario.path,
            configs={domain.name: config for domain in scenario.path.domains},
        )
        mapping.run(observation)
        assert set(single.agents) == set(mapping.agents)
        assert single.estimate("L", "X").loss_rate == mapping.estimate("L", "X").loss_rate
