"""Three-way differential test matrix: scalar vs batch vs streaming engines.

Every registered delay model, loss model and adversary runs under all three
execution engines on the same spec; the engines must produce

* byte-identical ``CellResult.to_json()`` (estimates, truth, verdicts,
  overhead — the embedded spec is the same object, so any divergence is a
  genuine result difference), and
* identical receipts at every HOP (``time_sum`` at its documented
  10-significant-digit tolerance, everything else bit-exact).

The one declared exception: ``CongestionDelayModel`` simulates the whole
arrival series per call and is not streamable — the streaming engine must
refuse it with a clear error rather than silently produce different traffic,
and the scalar/batch pair is still compared.
"""

from __future__ import annotations

import pytest

from repro.api import ExperimentSpec
from repro.api.registry import ADVERSARIES, DELAY_MODELS, LOSS_MODELS
from repro.api.runner import run_cell
from repro.api.spec import AdversarySpec, ConditionSpec, PathSpec, TrafficSpec

from tests.conformance.canon import (
    canonical_receipts,
    run_batch_reports,
    run_scalar_reports,
    run_streaming_reports,
)

CHUNK_SIZE = 512

# Minimal valid parameters per registered component (defaults where possible).
DELAY_PARAMS: dict[str, dict] = {
    "constant": {},
    "jitter": {"base_delay": 0.8e-3, "jitter_std": 0.3e-3},
    "empirical": {"series": [0.5e-3, 1.2e-3, 0.7e-3, 2.0e-3]},
    "congestion": {"utilization": 0.9},
}
LOSS_PARAMS: dict[str, dict] = {
    "none": {},
    "bernoulli": {"loss_rate": 0.04},
    "gilbert-elliott": {"p": 0.01, "r": 0.2},
    "gilbert-elliott-rate": {"target_rate": 0.05},
}
ADVERSARY_SPECS: dict[str, tuple[AdversarySpec, ...]] = {
    "lying": (AdversarySpec(kind="lying", domain="X"),),
    "colluding": (
        AdversarySpec(kind="lying", domain="X"),
        AdversarySpec(kind="colluding", domain="N", params={"colluding_with": "X"}),
    ),
    "marker-drop": (AdversarySpec(kind="marker-drop", domain="X"),),
    "biased-treatment": (
        AdversarySpec(kind="biased-treatment", domain="X", params={"guess_rate": 0.02}),
    ),
}

NON_STREAMABLE_DELAY = {"congestion"}


def _spec(condition: ConditionSpec, adversaries=()) -> ExperimentSpec:
    return ExperimentSpec(
        name="engine-matrix",
        seed=42,
        traffic=TrafficSpec(workload="smoke-sequence", packet_count=1500),
        path=PathSpec(conditions={"X": condition}),
        adversaries=adversaries,
    )


def _assert_three_way(spec: ExperimentSpec, streaming_ok: bool = True) -> None:
    batch = run_cell(spec, engine="batch")
    scalar = run_cell(spec, engine="scalar")
    assert scalar.to_json() == batch.to_json()

    batch_receipts = canonical_receipts(run_batch_reports(spec))
    assert canonical_receipts(run_scalar_reports(spec)) == batch_receipts

    if not streaming_ok:
        with pytest.raises(ValueError, match="not streamable"):
            run_cell(spec, engine="streaming", chunk_size=CHUNK_SIZE)
        return

    streaming = run_cell(spec, engine="streaming", chunk_size=CHUNK_SIZE)
    assert streaming.to_json() == batch.to_json()
    assert (
        canonical_receipts(run_streaming_reports(spec, chunk_size=CHUNK_SIZE))
        == batch_receipts
    )


class TestRegistryCoverage:
    """The matrix must stay complete as components are registered."""

    def test_all_registered_delay_models_covered(self):
        assert set(DELAY_MODELS.names()) == set(DELAY_PARAMS)

    def test_all_registered_loss_models_covered(self):
        assert set(LOSS_MODELS.names()) == set(LOSS_PARAMS)

    def test_all_registered_adversaries_covered(self):
        assert set(ADVERSARIES.names()) == set(ADVERSARY_SPECS)


@pytest.mark.parametrize("delay", sorted(DELAY_PARAMS))
def test_delay_model_engine_parity(delay):
    condition = ConditionSpec(delay=delay, delay_params=DELAY_PARAMS[delay])
    _assert_three_way(_spec(condition), streaming_ok=delay not in NON_STREAMABLE_DELAY)


@pytest.mark.parametrize("loss", sorted(LOSS_PARAMS))
def test_loss_model_engine_parity(loss):
    condition = ConditionSpec(
        delay="jitter",
        delay_params={"base_delay": 0.8e-3, "jitter_std": 0.2e-3},
        loss=loss,
        loss_params=LOSS_PARAMS[loss],
    )
    _assert_three_way(_spec(condition))


@pytest.mark.parametrize("adversary", sorted(ADVERSARY_SPECS))
def test_adversary_engine_parity(adversary):
    condition = ConditionSpec(
        delay="jitter",
        delay_params={"base_delay": 0.8e-3, "jitter_std": 0.2e-3},
        loss="bernoulli",
        loss_params={"loss_rate": 0.03},
    )
    _assert_three_way(_spec(condition, ADVERSARY_SPECS[adversary]))


def test_reordering_engine_parity():
    condition = ConditionSpec(
        delay="jitter",
        delay_params={"base_delay": 0.8e-3, "jitter_std": 0.2e-3},
        reordering="window",
        reordering_params={"window": 0.4e-3, "reorder_probability": 0.15},
    )
    _assert_three_way(_spec(condition))
