"""Differential test matrices: scalar vs batch vs streaming, path and mesh.

Every registered delay model, loss model and adversary runs under all three
execution engines on the same spec; the engines must produce

* byte-identical ``CellResult.to_json()`` (estimates, truth, verdicts,
  overhead — the embedded spec is the same object, so any divergence is a
  genuine result difference), and
* identical receipts at every HOP (``time_sum`` at its documented
  10-significant-digit tolerance, everything else bit-exact).

The one declared exception: ``CongestionDelayModel`` simulates the whole
arrival series per call and is not streamable — the streaming engine must
refuse it with a clear error rather than silently produce different traffic,
and the scalar/batch pair is still compared.

The mesh matrix runs every registered *topology* through the mesh runner on
both mesh engines (batch vs streaming, plus a sharded pass), with the same
byte-identity requirements on ``MeshResult.to_json()`` and receipts, and a
registry-completeness guard so new topologies cannot silently skip it.  The
acceptance-scale case — a ≥8-domain, ≥6-path random mesh under ``shards=4``
— lives here too.
"""

from __future__ import annotations

import pytest

from repro.api import ExperimentSpec
from repro.api.registry import ADVERSARIES, DELAY_MODELS, LOSS_MODELS, TOPOLOGIES
from repro.api.runner import _build_mesh_cell, run_cell, run_mesh_cell
from repro.api.spec import (
    AdversarySpec,
    ConditionSpec,
    MeshSpec,
    PathSpec,
    TopologySpec,
    TrafficSpec,
)

from tests.conformance.canon import (
    canonical_receipts,
    run_batch_reports,
    run_mesh_batch_reports,
    run_mesh_streaming_reports,
    run_scalar_reports,
    run_streaming_reports,
)

CHUNK_SIZE = 512

# Minimal valid parameters per registered component (defaults where possible).
DELAY_PARAMS: dict[str, dict] = {
    "constant": {},
    "jitter": {"base_delay": 0.8e-3, "jitter_std": 0.3e-3},
    "empirical": {"series": [0.5e-3, 1.2e-3, 0.7e-3, 2.0e-3]},
    "congestion": {"utilization": 0.9},
}
LOSS_PARAMS: dict[str, dict] = {
    "none": {},
    "bernoulli": {"loss_rate": 0.04},
    "gilbert-elliott": {"p": 0.01, "r": 0.2},
    "gilbert-elliott-rate": {"target_rate": 0.05},
}
ADVERSARY_SPECS: dict[str, tuple[AdversarySpec, ...]] = {
    "lying": (AdversarySpec(kind="lying", domain="X"),),
    "colluding": (
        AdversarySpec(kind="lying", domain="X"),
        AdversarySpec(kind="colluding", domain="N", params={"colluding_with": "X"}),
    ),
    "marker-drop": (AdversarySpec(kind="marker-drop", domain="X"),),
    "biased-treatment": (
        AdversarySpec(kind="biased-treatment", domain="X", params={"guess_rate": 0.02}),
    ),
}

NON_STREAMABLE_DELAY = {"congestion"}


def _spec(condition: ConditionSpec, adversaries=()) -> ExperimentSpec:
    return ExperimentSpec(
        name="engine-matrix",
        seed=42,
        traffic=TrafficSpec(workload="smoke-sequence", packet_count=1500),
        path=PathSpec(conditions={"X": condition}),
        adversaries=adversaries,
    )


def _assert_three_way(spec: ExperimentSpec, streaming_ok: bool = True) -> None:
    batch = run_cell(spec, engine="batch")
    scalar = run_cell(spec, engine="scalar")
    assert scalar.to_json() == batch.to_json()

    batch_receipts = canonical_receipts(run_batch_reports(spec))
    assert canonical_receipts(run_scalar_reports(spec)) == batch_receipts

    if not streaming_ok:
        with pytest.raises(ValueError, match="not streamable"):
            run_cell(spec, engine="streaming", chunk_size=CHUNK_SIZE)
        return

    streaming = run_cell(spec, engine="streaming", chunk_size=CHUNK_SIZE)
    assert streaming.to_json() == batch.to_json()
    assert (
        canonical_receipts(run_streaming_reports(spec, chunk_size=CHUNK_SIZE))
        == batch_receipts
    )


class TestRegistryCoverage:
    """The matrix must stay complete as components are registered."""

    def test_all_registered_delay_models_covered(self):
        assert set(DELAY_MODELS.names()) == set(DELAY_PARAMS)

    def test_all_registered_loss_models_covered(self):
        assert set(LOSS_MODELS.names()) == set(LOSS_PARAMS)

    def test_all_registered_adversaries_covered(self):
        assert set(ADVERSARIES.names()) == set(ADVERSARY_SPECS)


@pytest.mark.parametrize("delay", sorted(DELAY_PARAMS))
def test_delay_model_engine_parity(delay):
    condition = ConditionSpec(delay=delay, delay_params=DELAY_PARAMS[delay])
    _assert_three_way(_spec(condition), streaming_ok=delay not in NON_STREAMABLE_DELAY)


@pytest.mark.parametrize("loss", sorted(LOSS_PARAMS))
def test_loss_model_engine_parity(loss):
    condition = ConditionSpec(
        delay="jitter",
        delay_params={"base_delay": 0.8e-3, "jitter_std": 0.2e-3},
        loss=loss,
        loss_params=LOSS_PARAMS[loss],
    )
    _assert_three_way(_spec(condition))


@pytest.mark.parametrize("adversary", sorted(ADVERSARY_SPECS))
def test_adversary_engine_parity(adversary):
    condition = ConditionSpec(
        delay="jitter",
        delay_params={"base_delay": 0.8e-3, "jitter_std": 0.2e-3},
        loss="bernoulli",
        loss_params={"loss_rate": 0.03},
    )
    _assert_three_way(_spec(condition, ADVERSARY_SPECS[adversary]))


def test_reordering_engine_parity():
    condition = ConditionSpec(
        delay="jitter",
        delay_params={"base_delay": 0.8e-3, "jitter_std": 0.2e-3},
        reordering="window",
        reordering_params={"window": 0.4e-3, "reorder_probability": 0.15},
    )
    _assert_three_way(_spec(condition))


# -- mesh matrix ----------------------------------------------------------------------

MESH_CHUNK_SIZE = 256

# One pinned TopologySpec per registered topology (parameters chosen so every
# generator actually shares HOPs where it can), plus the transit domains the
# matrix installs conditions on for that pinned instance.
TOPOLOGY_SPECS: dict[str, tuple[TopologySpec, tuple[str, ...]]] = {
    "figure1": (TopologySpec(kind="figure1", seed=0), ("X",)),
    "star": (TopologySpec(kind="star", params={"path_count": 3}, seed=0), ("X",)),
    "mesh-random": (
        TopologySpec(
            kind="mesh-random",
            params={"transit_domains": 3, "stub_domains": 4, "path_count": 4},
            seed=2026,
        ),
        ("T1", "T2", "T3"),
    ),
}

_MESH_CONDITION = ConditionSpec(
    delay="jitter",
    delay_params={"base_delay": 0.9e-3, "jitter_std": 0.3e-3},
    loss="bernoulli",
    loss_params={"loss_rate": 0.04},
)


def _mesh_spec(name: str, lying_domain: str | None = None) -> MeshSpec:
    topology, transit_domains = TOPOLOGY_SPECS[name]
    return MeshSpec(
        name=f"mesh-matrix-{name}",
        seed=42,
        topology=topology,
        traffic=TrafficSpec(workload="smoke-sequence", packet_count=1200),
        conditions={domain: _MESH_CONDITION for domain in transit_domains},
        adversaries=(
            (AdversarySpec(kind="lying", domain=lying_domain),)
            if lying_domain is not None
            else ()
        ),
    )


def _assert_mesh_two_way(spec: MeshSpec, shards: int = 1) -> None:
    batch = run_mesh_cell(spec, engine="batch")
    streaming = run_mesh_cell(
        spec, engine="streaming", shards=shards, chunk_size=MESH_CHUNK_SIZE
    )
    assert streaming.to_json() == batch.to_json()
    assert canonical_receipts(
        run_mesh_streaming_reports(spec, shards=shards, chunk_size=MESH_CHUNK_SIZE)
    ) == canonical_receipts(run_mesh_batch_reports(spec))


class TestMeshRegistryCoverage:
    """The mesh matrix must stay complete as topologies are registered."""

    def test_all_registered_topologies_covered(self):
        assert set(TOPOLOGIES.names()) == set(TOPOLOGY_SPECS)

    def test_every_matrix_condition_domain_is_transit(self):
        for name, (topology, transit_domains) in TOPOLOGY_SPECS.items():
            _, paths = topology.build(42)
            actual = {
                segment[0].name
                for path in paths
                for segment in path.domain_segments()
            }
            assert set(transit_domains) <= actual, (
                f"{name}: matrix names non-transit domains "
                f"{sorted(set(transit_domains) - actual)}"
            )


@pytest.mark.parametrize("name", sorted(TOPOLOGY_SPECS))
def test_topology_mesh_engine_parity(name):
    _assert_mesh_two_way(_mesh_spec(name))


def test_star_mesh_lying_engine_parity():
    _assert_mesh_two_way(_mesh_spec("star", lying_domain="X"), shards=2)


def test_acceptance_scale_mesh_sharded_byte_identical():
    """A ≥8-domain, ≥6-path mesh: batch vs streaming shards=4, byte-identical.

    The ISSUE-4 acceptance bar: per-HOP receipts equal across engines and
    shard counts at mesh scale, with the isolation-parity machinery already
    covered by the property suite.
    """
    topology = TopologySpec(
        kind="mesh-random",
        params={
            "transit_domains": 4,
            "stub_domains": 6,
            "transit_degree": 2.5,
            "path_count": 6,
        },
        seed=77,
    )
    built, paths = topology.build(7)
    domains = {hop.domain.name for path in paths for hop in path.hops}
    assert len(domains) >= 8, f"only {len(domains)} domains on paths: {sorted(domains)}"
    assert len(paths) >= 6
    transit = sorted(
        {segment[0].name for path in paths for segment in path.domain_segments()}
    )
    spec = MeshSpec(
        name="mesh-acceptance",
        seed=7,
        topology=topology,
        traffic=TrafficSpec(workload="smoke-sequence", packet_count=1000),
        conditions={domain: _MESH_CONDITION for domain in transit},
    )
    cell = _build_mesh_cell(spec.to_dict())
    shared = {
        hop_id
        for hop_id in {
            hop.hop_id for path in cell.scenario.paths for hop in path.hops
        }
        if sum(
            any(hop.hop_id == hop_id for hop in path.hops)
            for path in cell.scenario.paths
        )
        > 1
    }
    assert shared, "acceptance mesh must actually share HOPs between paths"
    _assert_mesh_two_way(spec, shards=4)
