"""Integration tests: partial deployment (Section 8) and faulty-link handling."""

from __future__ import annotations

import pytest

from repro.core.protocol import VPMSession
from repro.net.link import InterDomainLink, LinkSpec
from repro.simulation.scenario import PathScenario, SegmentCondition
from repro.traffic.delay_models import ConstantDelayModel
from repro.traffic.loss_models import BernoulliLossModel


class TestPartialDeployment:
    @pytest.fixture(scope="class")
    def lossy_x_observation(self, integration_packets):
        scenario = PathScenario(seed=601)
        scenario.configure_domain(
            "X",
            SegmentCondition(
                delay_model=ConstantDelayModel(8e-3),
                loss_model=BernoulliLossModel(0.15, seed=602),
            ),
        )
        return scenario.run(integration_packets)

    def test_non_deployed_domain_cannot_be_measured_but_others_can(
        self, path, lossy_x_observation, default_hop_config
    ):
        configs = {d.name: default_hop_config for d in path.domains}
        configs["X"] = None  # X has not deployed VPM
        session = VPMSession(path, configs=configs)
        session.run(lossy_x_observation)
        verifier = session.verifier_for("L")
        # X produces no receipts...
        x_performance = verifier.estimate_domain("X")
        assert x_performance.offered_packets == 0
        assert x_performance.delay_sample_count == 0
        # ...but its neighbors' receipts still bound what happened across it:
        # the neighbor-based estimate attributes the loss and delay to the
        # segment containing X, so X cannot hide behind non-deployment.
        independent = verifier.estimate_domain_via_neighbors("X")
        truth = lossy_x_observation.truth_for("X")
        assert independent.delay_quantile(0.9) == pytest.approx(
            truth.delay_quantiles([0.9])[0.9], rel=0.3
        )
        assert independent.loss_rate == pytest.approx(truth.loss_rate, abs=0.03)

    def test_single_deployed_domain_still_produces_verifiable_receipts(
        self, path, lossy_x_observation, default_hop_config
    ):
        configs = {d.name: None for d in path.domains}
        configs["L"] = default_hop_config  # only L deploys
        session = VPMSession(path, configs=configs)
        reports = session.run(lossy_x_observation)
        assert set(reports) == {2, 3}
        verifier = session.verifier_for("S")
        performance = verifier.estimate_domain("L")
        assert performance.offered_packets > 0
        assert performance.loss_rate == 0.0
        # No consistency findings: there is nothing to cross-check against.
        assert verifier.check_consistency() == []


class TestFaultyLink:
    def test_lossy_interdomain_link_flagged_for_both_neighbors(
        self, path, integration_packets, default_hop_config
    ):
        scenario = PathScenario(seed=611)
        scenario.configure_link(
            5, 6, InterDomainLink(spec=LinkSpec(), loss_rate=0.05, seed=612)
        )
        observation = scenario.run(integration_packets)
        session = VPMSession(
            path, configs={d.name: default_hop_config for d in path.domains}
        )
        session.run(observation)
        findings = session.verifier_for("L").check_consistency()
        assert findings
        assert {(finding.upstream_hop, finding.downstream_hop) for finding in findings} == {
            (5, 6)
        }
        # The ambiguity is intentional: the verifier cannot tell a faulty link
        # from a lie; both X and N are notified (verify_domain flags both).
        assert not session.verify("L", "X").accepted
        assert not session.verify("L", "N").accepted

    def test_slow_interdomain_link_violates_max_diff(
        self, path, integration_packets, default_hop_config
    ):
        scenario = PathScenario(seed=621)
        scenario.configure_link(
            5,
            6,
            InterDomainLink(
                spec=LinkSpec(max_diff=1e-3, nominal_delay=100e-6),
                excess_delay=5e-3,  # pushes the link beyond its MaxDiff
                seed=622,
            ),
        )
        observation = scenario.run(integration_packets)
        session = VPMSession(
            path, configs={d.name: default_hop_config for d in path.domains}
        )
        session.run(observation)
        findings = session.verifier_for("L").check_consistency()
        assert any(finding.kind == "delay-bound-violation" for finding in findings)

    def test_healthy_links_raise_nothing(self, path, integration_packets, default_hop_config):
        scenario = PathScenario(seed=631)
        observation = scenario.run(integration_packets)
        session = VPMSession(
            path, configs={d.name: default_hop_config for d in path.domains}
        )
        session.run(observation)
        assert session.verifier_for("L").check_consistency() == []
