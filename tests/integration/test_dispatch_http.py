"""Integration tests: HTTP-transport dispatch over real sockets.

The ISSUE acceptance criterion, end to end: a campaign dispatched over the
``/api/v1/dispatch/…`` protocol — worker subprocesses that share **no**
filesystem with the coordinator, including workers SIGKILLed mid-interval
on a seeded chaos schedule and uploads truncated mid-body — finishes with a
run store **byte-identical** (``RunStore.digest()`` and a full directory
diff) to an uninterrupted single-host ``repro run`` of the same spec.
"""

from __future__ import annotations

import filecmp
import json
import os
import subprocess
import sys
import threading
import urllib.error
import urllib.request
from pathlib import Path

import pytest

import repro
from repro.api.spec import (
    CampaignSpec,
    ConditionSpec,
    ExperimentSpec,
    HOPSpec,
    PathSpec,
    ProtocolSpec,
    SLATargetSpec,
    TrafficSpec,
)
from repro.dist import ChaosSchedule, DispatchCoordinator, dispatch_campaign
from repro.dist.dispatch import DispatchWorker
from repro.dist.net import DIGEST_HEADER, WORKER_HEADER, HTTPTransport, record_digest
from repro.engine.campaign import CampaignRunner, interval_record
from repro.store import RunStore, stable_json


def _spec(name: str, intervals: int, seed: int = 97) -> CampaignSpec:
    return CampaignSpec(
        name=name,
        intervals=intervals,
        cell=ExperimentSpec(
            seed=seed,
            traffic=TrafficSpec(workload=None, packet_count=300),
            path=PathSpec(
                conditions={
                    "X": ConditionSpec(
                        delay="jitter",
                        delay_params={"base_delay": 1e-3, "jitter_std": 0.2e-3},
                    )
                }
            ),
            protocol=ProtocolSpec(
                default=HOPSpec(sampling_rate=0.2, marker_rate=0.02, aggregate_size=150)
            ),
        ),
        sla=SLATargetSpec(delay_bound=10e-3, delay_quantile=0.9, loss_bound=0.05),
    )


def _direct_run(base: Path, spec: CampaignSpec) -> RunStore:
    store = RunStore.create(base / "direct", spec)
    CampaignRunner(spec, store).run()
    return store


def _child_env() -> dict[str, str]:
    package_parent = str(Path(repro.__file__).resolve().parent.parent)
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [package_parent, env["PYTHONPATH"]]
        if env.get("PYTHONPATH")
        else [package_parent]
    )
    return env


def _assert_stores_identical(dispatched: Path, direct: Path) -> None:
    """Byte-identity both ways: store digests and a full directory diff."""
    assert RunStore.open(dispatched).digest() == RunStore.open(direct).digest()
    comparison = filecmp.dircmp(dispatched, direct)
    assert comparison.left_only == []  # no dispatch scratch left behind
    assert comparison.right_only == []
    mismatched = [
        name
        for name in comparison.common_files
        if (dispatched / name).read_bytes() != (direct / name).read_bytes()
    ]
    assert mismatched == []


class _CommitOnlyCoordinator:
    """A workers=0 HTTP coordinator running in a background thread.

    The multi-host topology in miniature: the coordinator thread owns the
    store and commits; the test body plays the remote, mount-less workers
    against ``coordinator.http_url``.
    """

    def __init__(self, run_dir: Path, spec: CampaignSpec, lease: float = 30.0):
        store = RunStore.create(run_dir, spec)
        self.coordinator = DispatchCoordinator(
            store, workers=0, lease=lease, transport="http"
        )
        self.thread = threading.Thread(target=self.coordinator.run, daemon=True)

    def __enter__(self) -> DispatchCoordinator:
        self.thread.start()
        return self.coordinator

    def __exit__(self, *exc_info: object) -> None:
        self.thread.join(timeout=120.0)
        assert not self.thread.is_alive(), "coordinator never finished committing"


class TestHTTPPool:
    def test_http_workers_match_direct_run(self, tmp_path):
        spec = _spec("http-pool", intervals=6)
        direct = _direct_run(tmp_path, spec)
        outcome = dispatch_campaign(
            tmp_path / "dispatched", spec=spec, workers=4, transport="http"
        )
        assert outcome.completed
        _assert_stores_identical(tmp_path / "dispatched", Path(direct.path))

    def test_seeded_kills_still_byte_identical(self, tmp_path):
        # Chaos SIGKILLs prefer a worker currently holding a claim, so these
        # kills land mid-interval; the coordinator-clock lease must lapse and
        # another HTTP worker must recompute the interval to identical bytes.
        spec = _spec("http-chaos", intervals=8)
        direct = _direct_run(tmp_path, spec)
        outcome = dispatch_campaign(
            tmp_path / "dispatched",
            spec=spec,
            workers=4,
            lease=3.0,  # short lease so a killed worker's claim lapses fast
            chaos=ChaosSchedule(seed=4242, kills=3, min_delay=0.2, max_delay=0.8),
            transport="http",
        )
        assert outcome.completed
        _assert_stores_identical(tmp_path / "dispatched", Path(direct.path))


class TestUploadFaults:
    def test_truncated_upload_rejected_then_reupload_idempotent(self, tmp_path):
        spec = _spec("http-truncated", intervals=2)
        direct = _direct_run(tmp_path, spec)
        run_dir = tmp_path / "dispatched"
        with _CommitOnlyCoordinator(run_dir, spec) as coordinator:
            base = (
                f"{coordinator.http_url}/api/v1/dispatch/{coordinator.run_id}"
            )
            line = (
                stable_json(dict(interval_record(spec, 0))) + "\n"
            ).encode("utf-8")

            def upload(body: bytes, digest: str):
                request = urllib.request.Request(
                    f"{base}/records/0", data=body, method="PUT"
                )
                request.add_header(WORKER_HEADER, "test-worker")
                request.add_header(DIGEST_HEADER, digest)
                try:
                    with urllib.request.urlopen(request, timeout=30) as response:
                        return response.status, json.loads(response.read())
                except urllib.error.HTTPError as exc:
                    return exc.code, json.loads(exc.read())

            # A body truncated mid-upload fails the digest check — 400, the
            # retryable class — and nothing is staged for the coordinator.
            status, body = upload(line[: len(line) // 2], record_digest(line))
            assert status == 400
            assert body["error"]["code"] == "digest_mismatch"
            assert "retry" in body["error"]["message"]

            # The intact re-upload lands; a second identical upload (a retry
            # after a lost response) is acknowledged as a duplicate.
            status, body = upload(line, record_digest(line))
            assert status == 200 and body["duplicate"] is False
            status, body = upload(line, record_digest(line))
            assert status == 200 and body["duplicate"] is True

            # An in-process HTTP worker computes whatever remains.
            DispatchWorker(
                HTTPTransport(
                    coordinator.http_url, coordinator.run_id, worker_id="finisher"
                )
            ).run()
        _assert_stores_identical(run_dir, Path(direct.path))

    def test_upload_without_worker_header_rejected(self, tmp_path):
        spec = _spec("http-noworker", intervals=1)
        run_dir = tmp_path / "dispatched"
        with _CommitOnlyCoordinator(run_dir, spec) as coordinator:
            request = urllib.request.Request(
                f"{coordinator.http_url}/api/v1/dispatch/"
                f"{coordinator.run_id}/claims/0",
                method="POST",
            )
            with pytest.raises(urllib.error.HTTPError) as exc:
                urllib.request.urlopen(request, timeout=30)
            assert exc.value.code == 400
            assert json.loads(exc.value.read())["error"]["code"] == "missing_worker"
            # Let the run finish so the context manager can join.
            DispatchWorker(
                HTTPTransport(coordinator.http_url, coordinator.run_id)
            ).run()


class TestCLI:
    def test_worker_only_http_cli_no_shared_filesystem(self, tmp_path):
        # The real multi-host shape: the worker subprocess gets a URL and a
        # run id — no run directory, no policy flags, no mount.
        spec = _spec("http-cli-worker", intervals=4)
        direct = _direct_run(tmp_path, spec)
        run_dir = tmp_path / "dispatched"
        with _CommitOnlyCoordinator(run_dir, spec) as coordinator:
            worker = subprocess.Popen(
                [
                    sys.executable,
                    "-m",
                    "repro.cli",
                    "dispatch",
                    "--worker-only",
                    "--transport",
                    "http",
                    "--coordinator",
                    coordinator.http_url,
                    "--run-id",
                    coordinator.run_id,
                    "--worker-id",
                    "remote-0",
                ],
                env=_child_env(),
                stdout=subprocess.PIPE,
                text=True,
            )
            stdout, _ = worker.communicate(timeout=240.0)
            assert worker.returncode == 0, stdout
            computed = int(stdout.split("computed ")[1].split(" ")[0])
            assert computed == spec.intervals  # every interval came over HTTP
        _assert_stores_identical(run_dir, Path(direct.path))

    def test_cli_coordinator_http_transport(self, tmp_path):
        spec = _spec("http-cli-coord", intervals=4)
        direct = _direct_run(tmp_path, spec)
        spec_file = tmp_path / "spec.json"
        spec_file.write_text(spec.to_json())
        run_dir = tmp_path / "dispatched"
        result = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "dispatch",
                str(run_dir),
                "--spec",
                str(spec_file),
                "--transport",
                "http",
                "--workers",
                "2",
                "--quiet",
            ],
            env=_child_env(),
            capture_output=True,
            text=True,
            timeout=240.0,
        )
        assert result.returncode == 0, result.stderr
        _assert_stores_identical(run_dir, Path(direct.path))

    def test_http_worker_cli_rejects_filesystem_era_flags(self, tmp_path):
        env = _child_env()
        base = [
            sys.executable,
            "-m",
            "repro.cli",
            "dispatch",
            "--worker-only",
            "--transport",
            "http",
            "--coordinator",
            "http://127.0.0.1:1",
            "--run-id",
            "r",
        ]

        def run(argv):
            return subprocess.run(
                argv, env=env, capture_output=True, text=True, timeout=120.0
            )

        missing = run(base[:-2])  # no --run-id
        assert missing.returncode != 0 and "--run-id" in missing.stderr
        with_dir = run([*base[:4], str(tmp_path / "run"), *base[4:]])
        assert with_dir.returncode != 0 and "no filesystem" in with_dir.stderr
        with_lease = run([*base, "--lease", "5"])
        assert with_lease.returncode != 0
        assert "coordinator-defined" in with_lease.stderr
        with_knobs = run([*base, "--engine", "batch"])
        assert with_knobs.returncode != 0
        assert "config endpoint" in with_knobs.stderr

    def test_coordinator_flags_rejected_without_http_worker(self, tmp_path):
        spec = _spec("http-cli-misuse", intervals=1)
        run_dir = tmp_path / "run"
        RunStore.create(run_dir, spec)
        result = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "dispatch",
                str(run_dir),
                "--coordinator",
                "http://127.0.0.1:1",
            ],
            env=_child_env(),
            capture_output=True,
            text=True,
            timeout=120.0,
        )
        assert result.returncode != 0
        assert "--worker-only --transport http" in result.stderr


class TestResume:
    def test_interrupted_http_dispatch_resumes(self, tmp_path):
        # A coordinator that commits a prefix and "dies" must finish from
        # the committed prefix on re-dispatch — same contract as fs mode.
        spec = _spec("http-resume", intervals=4)
        direct = _direct_run(tmp_path, spec)
        store = RunStore.create(tmp_path / "dispatched", spec)
        CampaignRunner(spec, store).run(max_intervals=2)  # the "first life"
        outcome = dispatch_campaign(
            tmp_path / "dispatched", workers=2, transport="http"
        )
        assert outcome.completed
        assert outcome.intervals_run == 2  # only the remaining tail
        _assert_stores_identical(tmp_path / "dispatched", Path(direct.path))
