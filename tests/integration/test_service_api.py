"""Integration tests: the measurement service over a live wsgiref server.

These exercise the ISSUE acceptance criteria end to end — a real HTTP
round-trip (submit as JSON, poll committed records with the ``?since=``
cursor, read the report), the spec validator's message surfacing in a 4xx,
concurrent submissions, and the crash-handoff property: a worker killed
mid-interval is re-dispatched via resume and the finished store is
byte-identical to a direct ``repro run`` of the same spec.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.api.spec import (
    CampaignSpec,
    ConditionSpec,
    ExperimentSpec,
    HOPSpec,
    PathSpec,
    ProtocolSpec,
    SLATargetSpec,
    TrafficSpec,
)
from repro.engine.campaign import CampaignRunner
from repro.service import JobQueue, ServiceApp, make_service_server
from repro.store import RunStore


def _spec(name: str, intervals: int = 2, seed: int = 71) -> CampaignSpec:
    return CampaignSpec(
        name=name,
        intervals=intervals,
        cell=ExperimentSpec(
            seed=seed,
            traffic=TrafficSpec(workload=None, packet_count=300),
            path=PathSpec(
                conditions={
                    "X": ConditionSpec(
                        delay="jitter",
                        delay_params={"base_delay": 1e-3, "jitter_std": 0.2e-3},
                    )
                }
            ),
            protocol=ProtocolSpec(
                default=HOPSpec(sampling_rate=0.2, marker_rate=0.02, aggregate_size=150)
            ),
        ),
        sla=SLATargetSpec(delay_bound=10e-3, delay_quantile=0.9, loss_bound=0.05),
    )


@pytest.fixture(scope="module")
def service(tmp_path_factory):
    """A live threaded service (real sockets, subprocess workers)."""
    store_root = tmp_path_factory.mktemp("service-store")
    queue = JobQueue(store_root, workers=2, execution="subprocess")
    app = ServiceApp(store_root, queue=queue)
    server = make_service_server("127.0.0.1", 0, app)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    try:
        yield {
            "base": f"http://{host}:{port}",
            "store_root": store_root,
            "queue": queue,
        }
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=10)
        queue.shutdown(wait=False)


def _request(base, path, method="GET", body=None, timeout=60.0):
    """(status, parsed-JSON) for one API call; 4xx/5xx never raise."""
    data = None
    request = urllib.request.Request(base + path, method=method)
    if body is not None:
        data = json.dumps(body).encode("utf-8")
        request.add_header("Content-Type", "application/json")
    try:
        with urllib.request.urlopen(request, data=data, timeout=timeout) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def _wait_complete(service, run_id, timeout=240.0):
    """Drive the ``?since=`` cursor until the run reports complete."""
    deadline = time.monotonic() + timeout
    cursor = 0
    collected = []
    while time.monotonic() < deadline:
        status, page = _request(
            service["base"], f"/api/v1/runs/{run_id}/records?since={cursor}&wait=2"
        )
        assert status == 200, page
        assert page["since"] == cursor
        collected.extend(page["records"])
        cursor = page["next"]
        if page["complete"]:
            return collected
    raise AssertionError(f"run {run_id} did not complete within {timeout}s")


def _wait_job(service, job_id, timeout=240.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        status, payload = _request(service["base"], f"/api/v1/jobs/{job_id}")
        assert status == 200, payload
        if payload["job"]["state"] in ("completed", "failed"):
            return payload["job"]
        time.sleep(0.2)
    raise AssertionError(f"job {job_id} still active after {timeout}s")


def _store_bytes(store_dir):
    """The byte-identity fingerprint of a run store (every durable file)."""
    return {
        path.name: path.read_bytes()
        for path in sorted(store_dir.iterdir())
        if path.is_file()
    }


def test_dashboard_and_health(service):
    with urllib.request.urlopen(service["base"] + "/", timeout=30) as response:
        assert response.status == 200
        assert response.headers["Content-Type"].startswith("text/html")
        page = response.read().decode("utf-8")
    assert "<html" in page and "repro measurement service" in page

    status, health = _request(service["base"], "/api/v1/health")
    assert status == 200
    assert health["status"] == "ok"
    assert health["queue"]["workers"] == 2


def test_submit_poll_report_round_trip(service, tmp_path):
    spec = _spec("roundtrip", intervals=2)
    status, accepted = _request(
        service["base"],
        "/api/v1/jobs",
        method="POST",
        body={"spec": spec.to_dict(), "run_id": "roundtrip-run"},
    )
    assert status == 202, accepted
    job = accepted["job"]
    assert job["state"] in ("queued", "running")

    records = _wait_complete(service, "roundtrip-run")
    assert [record["interval"] for record in records] == [0, 1]
    assert all("delay_samples" not in record for record in records)
    assert _wait_job(service, job["id"])["state"] == "completed"

    status, report = _request(service["base"], "/api/v1/runs/roundtrip-run/report")
    assert status == 200
    assert report["intervals"]["complete"] is True
    assert report["summary_matches_store"] is True
    assert report["spec_hash"] == spec.spec_hash()

    status, detail = _request(service["base"], "/api/v1/runs/roundtrip-run")
    assert status == 200
    assert detail["intervals"]["complete"] is True and detail["summary"] is not None
    assert detail["job"]["id"] == job["id"]

    status, listing = _request(service["base"], "/api/v1/runs?name=roundtrip")
    assert status == 200
    assert [entry["run"] for entry in listing["runs"]] == ["roundtrip-run"]

    status, frozen = _request(service["base"], "/api/v1/runs/roundtrip-run/spec")
    assert status == 200
    assert frozen["spec"] == spec.to_dict()

    # The acceptance criterion: the HTTP-submitted store is byte-identical
    # to a direct programmatic run of the same spec.
    direct = RunStore.create(tmp_path / "direct", spec)
    CampaignRunner(spec, direct).run()
    assert _store_bytes(service["store_root"] / "roundtrip-run") == _store_bytes(
        tmp_path / "direct"
    )


def test_invalid_spec_carries_validator_message(service):
    payload = _spec("invalid").to_dict()
    payload["intervals"] = 0
    status, body = _request(
        service["base"], "/api/v1/jobs", method="POST", body={"spec": payload}
    )
    assert status == 400
    assert body["error"]["message"].startswith("invalid campaign spec: ")
    assert "intervals must be > 0" in body["error"]["message"]
    assert body["error"]["code"] == "bad_request"


def test_malformed_requests(service):
    assert _request(service["base"], "/api/v1/nowhere")[0] == 404
    assert _request(service["base"], "/api/v1/runs/absent-run/report")[0] == 404
    # %2e%2e decodes to ".." server-side (the client would normalize a
    # literal ".." away before sending); the run-id guard must reject it.
    assert _request(service["base"], "/api/v1/runs/%2e%2e/report")[0] == 400
    status, body = _request(service["base"], "/api/v1/health", method="POST", body={})
    assert status == 405
    assert body["error"]["code"] == "method_not_allowed"
    status, body = _request(service["base"], "/api/v1/jobs", method="POST", body={})
    assert status == 400 and "'spec'" in body["error"]["message"]
    status, body = _request(service["base"], "/api/v1/compare?runs=just-one")
    assert status == 400 and "at least two" in body["error"]["message"]


def _raw_get(base, path, method="GET"):
    """(status, headers, parsed-JSON) for one call, headers included."""
    request = urllib.request.Request(base + path, method=method)
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, dict(response.headers), json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, dict(exc.headers), json.loads(exc.read())


def test_legacy_paths_alias_v1_with_deprecation(service):
    status, headers, legacy = _raw_get(service["base"], "/api/health")
    assert status == 200
    assert headers.get("Deprecation") == "true"
    assert headers.get("Link") == '</api/v1/health>; rel="successor-version"'
    v1_status, v1_headers, v1 = _raw_get(service["base"], "/api/v1/health")
    assert v1_status == 200
    assert "Deprecation" not in v1_headers
    assert legacy == v1
    # Errors on legacy paths carry the deprecation headers too.
    status, headers, _ = _raw_get(service["base"], "/api/nowhere")
    assert status == 404 and headers.get("Deprecation") == "true"
    # Dispatch endpoints were born versioned: no legacy alias exists.
    status, _, body = _raw_get(service["base"], "/api/dispatch/some-run")
    assert status == 404
    assert "/api/v1" in body["error"]["message"]
    # ...and this instance hosts no dispatch registry under v1 either.
    status, _, body = _raw_get(service["base"], "/api/v1/dispatch/some-run")
    assert status == 503 and body["error"]["code"] == "no_dispatch"


def test_error_envelope_names_bad_parameters(service):
    status, body = _request(service["base"], "/api/v1/runs?limit=zero")
    assert status == 400
    assert body["error"]["code"] == "bad_parameter"
    assert body["error"]["detail"]["parameter"] == "limit"
    assert "'limit'" in body["error"]["message"]
    status, body = _request(service["base"], "/api/v1/runs/whatever/records?since=x")
    assert status == 400
    assert body["error"]["detail"]["parameter"] == "since"
    status, body = _request(service["base"], "/api/v1/runs?complete=perhaps")
    assert status == 400
    assert body["error"]["detail"]["parameter"] == "complete"


def test_runs_pagination(service):
    spec = _spec("pagination", intervals=1, seed=200)
    for suffix in ("a", "b", "c"):
        RunStore.create(service["store_root"] / f"page-run-{suffix}", spec)
    status, first = _request(service["base"], "/api/v1/runs?name=pagination&limit=2")
    assert status == 200
    assert [e["run"] for e in first["runs"]] == ["page-run-a", "page-run-b"]
    assert first["next_cursor"] == "page-run-b"
    status, second = _request(
        service["base"],
        f"/api/v1/runs?name=pagination&limit=2&cursor={first['next_cursor']}",
    )
    assert status == 200
    assert [e["run"] for e in second["runs"]] == ["page-run-c"]
    assert second["next_cursor"] is None
    # No limit = the whole listing, next_cursor null.
    status, full = _request(service["base"], "/api/v1/runs?name=pagination")
    assert status == 200
    assert len(full["runs"]) == 3 and full["next_cursor"] is None


def test_jobs_pagination(service):
    # Guarantee at least one job regardless of which tests ran before.
    status, accepted = _request(
        service["base"],
        "/api/v1/jobs",
        method="POST",
        body={"spec": _spec("page-job", intervals=1, seed=210).to_dict()},
    )
    assert status == 202, accepted
    status, full = _request(service["base"], "/api/v1/jobs")
    assert status == 200 and full["next_cursor"] is None
    all_ids = [job["id"] for job in full["jobs"]]
    assert all_ids
    paged, cursor = [], None
    while True:
        path = "/api/v1/jobs?limit=1" + (f"&cursor={cursor}" if cursor else "")
        status, page = _request(service["base"], path)
        assert status == 200 and len(page["jobs"]) <= 1
        paged.extend(job["id"] for job in page["jobs"])
        cursor = page["next_cursor"]
        if cursor is None:
            break
    assert paged == all_ids
    status, body = _request(service["base"], "/api/v1/jobs?cursor=no-such-job")
    assert status == 400 and body["error"]["code"] == "invalid_cursor"
    _wait_job(service, accepted["job"]["id"])


def test_concurrent_submissions(service):
    specs = [_spec(f"burst-{i}", intervals=1, seed=100 + i) for i in range(3)]
    results = [None] * len(specs)

    def submit(i):
        results[i] = _request(
            service["base"],
            "/api/v1/jobs",
            method="POST",
            body={"spec": specs[i].to_dict(), "run_id": f"burst-run-{i}"},
        )

    threads = [threading.Thread(target=submit, args=(i,)) for i in range(len(specs))]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    for status, accepted in results:
        assert status == 202, accepted
    # Wait for the *jobs* (not just the records) so the duplicate probe
    # below deterministically hits the held-store rejection, never the
    # transient active-job one.
    for status, accepted in results:
        assert _wait_job(service, accepted["job"]["id"])["state"] == "completed"
    for i in range(len(specs)):
        _wait_complete(service, f"burst-run-{i}")
        status, report = _request(service["base"], f"/api/v1/runs/burst-run-{i}/report")
        assert status == 200 and report["intervals"]["complete"] is True

    # A duplicate of an already-finished run is rejected with a conflict.
    status, body = _request(
        service["base"],
        "/api/v1/jobs",
        method="POST",
        body={"spec": specs[0].to_dict(), "run_id": "burst-run-0"},
    )
    assert status == 409 and "already holds a store" in body["error"]["message"]


def test_compare_across_runs(service):
    for run_id in ("burst-run-0", "burst-run-1"):
        _wait_complete(service, run_id)
    status, body = _request(
        service["base"], "/api/v1/compare?runs=burst-run-0,burst-run-1"
    )
    assert status == 200
    assert [run["run"] for run in body["runs"]] == ["burst-run-0", "burst-run-1"]
    assert "X" in body["domains"]
    per_run = body["domains"]["X"]
    assert set(per_run) == {"burst-run-0", "burst-run-1"}
    for entry in per_run.values():
        assert entry["delay_sample_count"] > 0


def test_job_endpoints_hammered_while_events_stream(tmp_path):
    """Hammer /api/jobs while an inprocess job appends events concurrently.

    Inprocess workers append to ``job.events`` on every interval commit;
    the HTTP layer serializes jobs through the queue's lock-holding
    snapshots, so every response under fire must be a clean 200 with
    internally-consistent JSON — never a 500 from a dict mutated during
    serialization, never a torn event list.
    """
    queue = JobQueue(tmp_path / "store", workers=2, execution="inprocess")
    app = ServiceApp(tmp_path / "store", queue=queue)
    server = make_service_server("127.0.0.1", 0, app)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    base = f"http://{host}:{port}"
    try:
        specs = [_spec(f"hammer-{i}", intervals=3, seed=130 + i) for i in range(2)]
        job_ids = []
        for i, spec in enumerate(specs):
            status, accepted = _request(
                base,
                "/api/v1/jobs",
                method="POST",
                body={"spec": spec.to_dict(), "run_id": f"hammer-run-{i}"},
            )
            assert status == 202, accepted
            job_ids.append(accepted["job"]["id"])

        stop = threading.Event()
        failures = []

        def hammer():
            while not stop.is_set():
                for path in ("/api/v1/jobs", f"/api/v1/jobs/{job_ids[0]}"):
                    status, payload = _request(base, path, timeout=30.0)
                    if status != 200:
                        failures.append((path, status, payload))
                        return
                    jobs = payload["jobs"] if "jobs" in payload else [payload["job"]]
                    for job in jobs:
                        kinds = {event["kind"] for event in job["events"]}
                        if not kinds <= {"interval_committed", "run_complete"}:
                            failures.append((path, "torn events", job["events"]))
                            return

        hammers = [threading.Thread(target=hammer) for _ in range(4)]
        for worker in hammers:
            worker.start()
        try:
            for job_id in job_ids:
                deadline = time.monotonic() + 240.0
                while time.monotonic() < deadline:
                    status, payload = _request(base, f"/api/v1/jobs/{job_id}")
                    assert status == 200, payload
                    if payload["job"]["state"] in ("completed", "failed"):
                        break
                    time.sleep(0.1)
                assert payload["job"]["state"] == "completed", payload
        finally:
            stop.set()
            for worker in hammers:
                worker.join(timeout=30.0)
        assert failures == []
        # Every job's final event stream is exactly the campaign's commits.
        status, payload = _request(base, "/api/v1/jobs")
        assert status == 200
        for job in payload["jobs"]:
            kinds = [event["kind"] for event in job["events"]]
            assert kinds == ["interval_committed"] * 3 + ["run_complete"]
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=10)
        queue.shutdown(wait=False)


def test_killed_worker_resumes_to_byte_identical_store(service, tmp_path):
    """SIGINT a worker mid-campaign; the re-dispatched resume must converge
    on a store byte-identical to an uninterrupted direct run."""
    spec = _spec("chaos", intervals=3, seed=83)
    # The throttle opens a deterministic kill window after each interval.
    status, accepted = _request(
        service["base"],
        "/api/v1/jobs",
        method="POST",
        body={
            "spec": spec.to_dict(),
            "run_id": "chaos-run",
            "policy": {"throttle": 0.8},
        },
    )
    assert status == 202, accepted
    job_id = accepted["job"]["id"]

    # Wait for at least one committed interval, then kill the child.
    deadline = time.monotonic() + 120.0
    while time.monotonic() < deadline:
        status, page = _request(
            service["base"], "/api/v1/runs/chaos-run/records?since=0&wait=2"
        )
        assert status == 200, page
        if page["next"] >= 1:
            break
    assert page["next"] >= 1, "no interval committed before the kill"
    assert not page["complete"], "campaign finished before the kill window"

    status, killed = _request(
        service["base"], f"/api/v1/jobs/{job_id}/kill", method="POST", body={}
    )
    assert status == 200
    assert killed["killed"] is True, killed

    final = _wait_job(service, job_id)
    assert final["state"] == "completed", final["error"]
    assert final["attempts"] >= 2  # the killed attempt plus the resume

    _wait_complete(service, "chaos-run")
    direct = RunStore.create(tmp_path / "direct", spec)
    CampaignRunner(spec, direct).run()
    assert _store_bytes(service["store_root"] / "chaos-run") == _store_bytes(
        tmp_path / "direct"
    )
