"""End-to-end integration tests: the honest VPM pipeline.

These tests run the full chain the paper's evaluation runs — synthetic trace,
congested domain X, receipt generation at every HOP, verification by domain L
— and check the computability property: the receipt-based estimates track the
ground truth.
"""

from __future__ import annotations

import pytest

from repro.analysis.metrics import delay_accuracy_report, loss_granularity_report
from repro.analysis.sla import SLASpec, check_sla
from repro.core.protocol import VPMSession
from repro.simulation.scenario import PathScenario, SegmentCondition
from repro.traffic.delay_models import CongestionDelayModel
from repro.traffic.loss_models import GilbertElliottLossModel


@pytest.fixture(scope="module")
def congested_run(path, integration_packets, default_hop_config):
    """One full run with X congested (UDP burst) and losing ~10% of traffic."""
    scenario = PathScenario(seed=201)
    scenario.configure_domain(
        "X",
        SegmentCondition(
            delay_model=CongestionDelayModel(scenario="udp-burst", seed=202),
            loss_model=GilbertElliottLossModel.from_target_rate(0.10, seed=203),
        ),
    )
    observation = scenario.run(integration_packets)
    session = VPMSession(
        path, configs={domain.name: default_hop_config for domain in path.domains}
    )
    session.run(observation)
    return observation, session


class TestComputability:
    def test_delay_quantiles_track_ground_truth(self, congested_run):
        observation, session = congested_run
        truth = observation.truth_for("X")
        performance = session.estimate("L", "X")
        report = delay_accuracy_report(performance, truth)
        # The paper reports ~2 ms accuracy at 1% sampling and 25% loss; at 5%
        # sampling and 10% loss the error must comfortably stay below 5 ms.
        assert report.max_error_ms < 5.0
        assert performance.delay_sample_count > 100

    def test_loss_rate_exact(self, congested_run):
        observation, session = congested_run
        truth = observation.truth_for("X")
        performance = session.estimate("L", "X")
        assert performance.lost_packets == len(truth.lost)
        assert performance.loss_rate == pytest.approx(truth.loss_rate, abs=1e-12)

    def test_loss_granularity_reported_in_seconds(self, congested_run):
        observation, session = congested_run
        performance = session.estimate("L", "X")
        report = loss_granularity_report(performance, observation.truth_for("X"))
        # 1000-packet aggregates at 100k packets/s -> ~10 ms granularity,
        # somewhat coarsened by lost cutting points.
        assert 0.005 < report.mean_granularity_seconds < 0.1

    def test_healthy_domains_measured_clean(self, congested_run):
        observation, session = congested_run
        for domain in ("L", "N"):
            performance = session.estimate("S", domain)
            assert performance.lost_packets == 0
            assert performance.delay_quantile(0.9) < 2e-3

    def test_every_on_path_domain_can_verify(self, congested_run, path):
        _, session = congested_run
        for observer in ("S", "L", "N", "D"):
            performance = session.estimate(observer, "X")
            assert performance.offered_packets > 0


class TestVerifiability:
    def test_honest_receipts_pass_consistency(self, congested_run):
        _, session = congested_run
        assert session.verifier_for("L").check_consistency() == []

    def test_honest_domain_accepted(self, congested_run):
        _, session = congested_run
        result = session.verify("L", "X")
        assert result.accepted
        assert result.independent is not None
        # The neighbor-derived estimate brackets the claimed one (it adds two
        # healthy inter-domain links).
        assert result.independent.delay_quantile(0.9) >= result.claimed.delay_quantile(
            0.9
        ) - 1e-4

    def test_independent_estimate_close_to_claimed(self, congested_run):
        _, session = congested_run
        result = session.verify("L", "X")
        claimed = result.claimed.delay_quantile(0.9)
        independent = result.independent.delay_quantile(0.9)
        assert independent == pytest.approx(claimed, rel=0.25)


class TestSLAWorkflow:
    def test_sla_violation_detected_for_congested_domain(self, congested_run):
        _, session = congested_run
        performance = session.estimate("L", "X")
        strict_sla = SLASpec(delay_bound=2e-3, delay_quantile=0.9, loss_bound=0.001)
        verdict = check_sla(performance, strict_sla)
        assert not verdict.compliant

    def test_sla_compliance_for_healthy_domain(self, congested_run):
        _, session = congested_run
        performance = session.estimate("S", "L")
        relaxed_sla = SLASpec(delay_bound=50e-3, delay_quantile=0.9, loss_bound=0.01)
        assert check_sla(performance, relaxed_sla).compliant


class TestOverhead:
    def test_receipt_overhead_small_fraction_of_traffic(self, congested_run):
        # This run is tuned far more aggressively than the paper's operating
        # point (5% sampling, 1000-packet aggregates over a 0.12 s trace, so
        # the AggTrans windows are a large fraction of each aggregate); even
        # so the receipt volume stays a small fraction of the traffic.  The
        # paper's own operating point (1% sampling, 100k-packet aggregates) is
        # checked against its published numbers in the overhead unit tests and
        # the E4 benchmark.
        _, session = congested_run
        overhead = session.overhead()
        assert overhead.bandwidth_overhead < 0.03
        assert overhead.receipt_bytes_per_packet < 10.0

    def test_temp_buffer_bounded_by_marker_spacing(self, congested_run):
        _, session = congested_run
        overhead = session.overhead()
        # Markers arrive every ~200 packets at marker_rate=0.005; the buffer
        # should stay within a small multiple of that.
        assert overhead.max_temp_buffer_packets < 5000
