"""End-to-end sketch-mode campaigns: sharding, kill/resume, reporting.

Sketch mode changes what a campaign *commits* (bounded sketch state instead
of raw sample hex) — so the invariants the exact tier proves must be re-proven
on the wire: engine/shard invariance byte-for-byte over the mesh conformance
scenario, byte-identical ``repro resume`` after a real SIGINT delivered to a
live ``repro run`` subprocess, and the error-bound annotations surfacing
through reports, ``repro compare`` and :func:`compare_runs`.
"""

from __future__ import annotations

import json
import signal
import subprocess
import sys
import time

import pytest

from repro.analysis.sketch import DelayQuantileSketch
from repro.api.spec import (
    CampaignSpec,
    ConditionSpec,
    EstimationSpec,
    ExperimentSpec,
    HOPSpec,
    PathSpec,
    ProtocolSpec,
    SLATargetSpec,
    TrafficSpec,
)
from repro.cli import main
from repro.engine.campaign import CampaignRunner
from repro.service.report import compare_runs, run_report
from repro.store import RunStore
from tests.conformance.scenarios import MESH_CONFORMANCE_SCENARIOS


def _sketch_campaign(name: str, intervals: int, seed: int, size: int) -> CampaignSpec:
    return CampaignSpec(
        name=name,
        intervals=intervals,
        cell=ExperimentSpec(
            seed=seed,
            traffic=TrafficSpec(workload=None, packet_count=300),
            path=PathSpec(
                conditions={
                    "X": ConditionSpec(
                        delay="jitter",
                        delay_params={"base_delay": 1e-3, "jitter_std": 0.3e-3},
                        loss="bernoulli",
                        loss_params={"loss_rate": 0.05},
                    )
                }
            ),
            protocol=ProtocolSpec(
                default=HOPSpec(sampling_rate=0.25, marker_rate=0.03, aggregate_size=100)
            ),
            estimation=EstimationSpec(
                observer="S", targets=("X",), mode="sketch", sketch_size=size
            ),
        ),
        sla=SLATargetSpec(delay_bound=8e-3, delay_quantile=0.9, loss_bound=0.2),
    )


def _store_files(path) -> dict[str, bytes]:
    return {
        name: (path / name).read_bytes()
        for name in ("spec.json", "records.jsonl", "summary.json")
    }


def test_sketch_mesh_campaign_is_shard_invariant(tmp_path):
    """Sketch-mode mesh campaign: shards=4 store == shards=1 store, byte-for-byte."""
    cell = MESH_CONFORMANCE_SCENARIOS["mesh-honest"].with_overrides(
        {"estimation_mode": "sketch", "sketch_size": 128}
    )
    spec = CampaignSpec(
        name="sketch-mesh",
        intervals=2,
        cell=cell,
        sla=SLATargetSpec(delay_bound=50e-3, delay_quantile=0.9, loss_bound=0.3),
    )

    single = RunStore.create(tmp_path / "shards-1", spec)
    CampaignRunner(spec, single, shards=1).run()
    sharded = RunStore.create(tmp_path / "shards-4", spec)
    CampaignRunner(spec, sharded, engine="streaming", shards=4).run()

    assert single.digest() == sharded.digest()
    assert _store_files(tmp_path / "shards-1") == _store_files(tmp_path / "shards-4")

    # the committed records carry sketch state only — and it decodes
    for record in single.records():
        assert "delay_samples" not in record
        for state in record["delay_sketch"].values():
            assert DelayQuantileSketch.from_state(state).sample_count > 0

    # campaign summary carries the error-bound annotation per domain
    summary = single.summary()
    for entry in summary["domains"].values():
        annotation = entry["estimation"]
        assert annotation["mode"] == "sketch"
        assert annotation["sketch_size"] == 128
        assert annotation["relative_error_bound"] == pytest.approx(1 / 129)
        for quantile_entry in entry["pooled_quantiles"].values():
            assert quantile_entry["lower"] <= quantile_entry["estimate"]
            assert quantile_entry["estimate"] <= quantile_entry["upper"]


def test_cli_sigint_then_resume_reproduces_uninterrupted_store(tmp_path):
    """SIGINT a live ``repro run`` subprocess mid-campaign; ``repro resume``
    must converge on a store byte-identical to an uninterrupted run."""
    spec = _sketch_campaign("sketch-chaos", intervals=3, seed=83, size=64)
    spec_file = tmp_path / "spec.json"
    spec_file.write_text(spec.to_json())

    uninterrupted = tmp_path / "uninterrupted"
    assert main(["run", str(spec_file), "--run-dir", str(uninterrupted), "--quiet"]) == 0

    killed = tmp_path / "killed"
    # The throttle opens a deterministic multi-second kill window after
    # every interval commit.
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.cli",
            "run",
            str(spec_file),
            "--run-dir",
            str(killed),
            "--throttle",
            "3",
            "--quiet",
        ],
    )
    try:
        records = killed / "records.jsonl"
        deadline = time.monotonic() + 120.0
        while time.monotonic() < deadline:
            if records.exists() and records.read_bytes().count(b"\n") >= 1:
                break
            if process.poll() is not None:
                pytest.fail("repro run exited before the kill window")
            time.sleep(0.05)
        else:
            pytest.fail("no interval committed before the kill deadline")
        process.send_signal(signal.SIGINT)
        returncode = process.wait(timeout=60.0)
    finally:
        if process.poll() is None:
            process.kill()
            process.wait()

    assert returncode != 0, "the interrupted run must not report success"
    committed = records.read_bytes().count(b"\n")
    assert 1 <= committed < spec.intervals, "kill landed outside the window"

    assert main(["resume", str(killed), "--quiet"]) == 0
    assert _store_files(killed) == _store_files(uninterrupted)
    assert RunStore.open(killed).digest() == RunStore.open(uninterrupted).digest()


def test_reports_and_compare_surface_error_bounds(tmp_path, capsys):
    runs = []
    for index in range(2):
        spec = _sketch_campaign(f"sketch-{index}", intervals=2, seed=11 + index, size=64)
        store = RunStore.create(tmp_path / f"run-{index}", spec)
        CampaignRunner(spec, store).run()
        runs.append(store)

    report = run_report(runs[0])
    annotation = report["summary"]["domains"]["X"]["estimation"]
    assert annotation == {
        "mode": "sketch",
        "sketch_size": 64,
        "relative_error_bound": 1 / 65,
        "bucket_count": annotation["bucket_count"],
    }
    assert annotation["bucket_count"] > 0

    comparison = compare_runs(runs)
    for entry in comparison["domains"]["X"].values():
        assert entry["estimation"]["relative_error_bound"] == 1 / 65
        for quantile_entry in entry["pooled_quantiles"].values():
            assert set(quantile_entry) >= {"estimate", "lower", "upper"}

    # CLI: ``repro report`` prints the tier line, ``repro compare`` the column
    assert main(["report", str(runs[0].path)]) == 0
    out = capsys.readouterr().out
    assert "estimation tier: sketch (size 64" in out
    assert "±" in out

    assert main(["compare", str(runs[0].path), str(runs[1].path)]) == 0
    out = capsys.readouterr().out
    assert "sketch ±" in out

    assert main(["compare", str(runs[0].path), str(runs[1].path), "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert [run["run"] for run in payload["runs"]] == ["run-0", "run-1"]
