"""Seek-based sharding and mid-interval checkpoints, end to end.

Two contracts from the streaming engine's seekable-state redesign:

* **Zero prefix replay** — a ``shards=N`` run dispatches each worker with a
  :class:`StreamCheckpoint` at its span boundary, so every worker evaluates
  *exactly* its own chunk span (``result.shard_chunks`` is the per-worker
  evaluation counter) while receipts and ground truth stay byte-identical to
  ``shards=1``.  Holds for the single-path and the mesh runner.

* **Mid-interval campaign resume** — a streaming campaign interval killed
  between chunk boundaries resumes from its persisted
  :class:`RunnerCheckpoint` (``<store>/interval.ckpt``) and finishes with a
  store byte-identical to an uninterrupted run; incompatible checkpoints are
  discarded and the interval simply reruns.
"""

from __future__ import annotations

import json
import pickle
from functools import partial

import numpy as np
import pytest

from repro.api.runner import _build_cell, _build_mesh_cell, run_cell_full
from repro.api.spec import (
    CampaignSpec,
    ConditionSpec,
    EstimationSpec,
    ExecutionPolicy,
    ExperimentSpec,
    HOPSpec,
    MeshSpec,
    PathSpec,
    ProtocolSpec,
    TopologySpec,
    TrafficSpec,
)
from repro.engine.campaign import CampaignRunner, interval_record
from repro.engine.mesh import MeshRunner
from repro.engine.streaming import StreamingRunner, _shard_bounds
from repro.reporting.serialization import receipts_digest
from repro.store import RunStore

CHUNK = 256

_CONDITION = ConditionSpec(
    delay="jitter",
    delay_params={"base_delay": 0.8e-3, "jitter_std": 0.3e-3},
    loss="gilbert-elliott",
    loss_params={"p": 0.01, "r": 0.2},
    reordering="window",
    reordering_params={"window": 0.4e-3, "reorder_probability": 0.15},
)


def _spec(packet_count: int = 1800) -> ExperimentSpec:
    return ExperimentSpec(
        name="seek-shard",
        seed=42,
        traffic=TrafficSpec(workload="smoke-sequence", packet_count=packet_count),
        path=PathSpec(conditions={"X": _CONDITION}),
    )


def _assert_truth_equal(truth_a, truth_b) -> None:
    assert truth_b.lost_packets == truth_a.lost_packets
    assert truth_b.delivered_packets == truth_a.delivered_packets
    assert np.array_equal(truth_b.delays(), truth_a.delays())


class TestShardedZeroReplay:
    def test_shards_match_single_and_evaluate_only_their_span(self):
        spec = _spec()
        setup = partial(_build_cell, spec.to_dict())
        single = StreamingRunner(setup, chunk_size=CHUNK).run()
        sharded = StreamingRunner(setup, chunk_size=CHUNK, shards=3).run()

        # The per-worker evaluation counters equal the balanced span sizes —
        # seek-based dispatch means no worker replayed a single prefix chunk.
        bounds = _shard_bounds(single.chunks, 3)
        spans = tuple(stop - start for start, stop in zip(bounds, bounds[1:]))
        assert sharded.shard_chunks == spans
        assert sum(sharded.shard_chunks) == single.chunks
        assert single.shard_chunks == (single.chunks,)

        assert receipts_digest(sharded.reports) == receipts_digest(single.reports)
        for name, truth in single.domain_truth.items():
            _assert_truth_equal(truth, sharded.domain_truth[name])
        assert sharded.link_losses == single.link_losses

    def test_more_shards_than_chunks(self):
        spec = _spec(packet_count=600)  # 3 chunks of 256
        setup = partial(_build_cell, spec.to_dict())
        single = StreamingRunner(setup, chunk_size=CHUNK).run()
        sharded = StreamingRunner(setup, chunk_size=CHUNK, shards=5).run()
        assert single.chunks == 3
        assert sharded.shard_chunks == (1, 1, 1, 0, 0)
        assert receipts_digest(sharded.reports) == receipts_digest(single.reports)

    def test_mesh_shards_match_single_and_evaluate_only_their_span(self):
        spec = MeshSpec(
            name="seek-shard-mesh",
            seed=42,
            topology=TopologySpec(kind="star", params={"path_count": 2}, seed=0),
            traffic=TrafficSpec(workload="smoke-sequence", packet_count=900),
            conditions={"X": _CONDITION},
        )
        setup = partial(_build_mesh_cell, spec.to_dict())
        single = MeshRunner(setup, chunk_size=CHUNK).run()
        sharded = MeshRunner(setup, chunk_size=CHUNK, shards=2).run()

        bounds = _shard_bounds(single.chunks, 2)
        spans = tuple(stop - start for start, stop in zip(bounds, bounds[1:]))
        assert sharded.shard_chunks == spans
        assert single.shard_chunks == (single.chunks,)
        assert receipts_digest(sharded.reports) == receipts_digest(single.reports)
        for index, path_truth in enumerate(single.path_truth):
            for name, truth in path_truth.items():
                _assert_truth_equal(truth, sharded.path_truth[index][name])


class TestPolicyApiParity:
    def test_policy_equals_legacy_kwargs(self):
        spec = _spec(packet_count=900)
        legacy = run_cell_full(spec, engine="streaming", shards=2, chunk_size=CHUNK)
        declarative = run_cell_full(
            spec, policy=ExecutionPolicy(engine="streaming", shards=2, chunk_size=CHUNK)
        )
        assert declarative.result.to_json() == legacy.result.to_json()
        assert receipts_digest(declarative.reports) == receipts_digest(legacy.reports)


# -- mid-interval campaign checkpoints -------------------------------------------------


def _campaign_cell(packet_count: int = 500) -> ExperimentSpec:
    return ExperimentSpec(
        name="seek-campaign-cell",
        seed=17,
        traffic=TrafficSpec(workload=None, packet_count=packet_count),
        path=PathSpec(
            conditions={
                "X": ConditionSpec(
                    delay="jitter",
                    delay_params={"base_delay": 1e-3, "jitter_std": 0.3e-3},
                    loss="bernoulli",
                    loss_params={"loss_rate": 0.03},
                )
            }
        ),
        protocol=ProtocolSpec(
            default=HOPSpec(sampling_rate=0.2, marker_rate=0.02, aggregate_size=200)
        ),
        estimation=EstimationSpec(observer="S", targets=("X",)),
    )


def _campaign_spec(intervals: int = 2) -> CampaignSpec:
    return CampaignSpec(
        name="seek-campaign", intervals=intervals, cell=_campaign_cell()
    )


# 500 packets at chunk_size=128 → 4 chunks per interval; checkpoint_every=1
# fires the sink at chunks 1, 2 and 3 (never at the final boundary).
CAMPAIGN_CHUNK = 128
STREAMING_POLICY = ExecutionPolicy(engine="streaming", chunk_size=CAMPAIGN_CHUNK)
CHECKPOINTING_POLICY = ExecutionPolicy(
    engine="streaming", chunk_size=CAMPAIGN_CHUNK, checkpoint_every=1
)


class TestMidIntervalCheckpoint:
    def test_interval_record_resume_is_byte_identical(self):
        spec = _campaign_spec()
        reference = interval_record(spec, 0, policy=STREAMING_POLICY)

        blobs: list[bytes] = []
        checkpointed = interval_record(
            spec,
            0,
            policy=CHECKPOINTING_POLICY,
            checkpoint_sink=lambda ckpt: blobs.append(pickle.dumps(ckpt)),
        )
        assert json.dumps(checkpointed, sort_keys=True) == json.dumps(
            reference, sort_keys=True
        )
        assert len(blobs) == 3

        resumed = interval_record(
            spec, 0, policy=STREAMING_POLICY, resume_from=pickle.loads(blobs[-1])
        )
        assert json.dumps(resumed, sort_keys=True) == json.dumps(
            reference, sort_keys=True
        )

    def test_kill_inside_interval_resumes_to_identical_store(self, tmp_path):
        spec = _campaign_spec()
        full = RunStore.create(tmp_path / "full", spec)
        CampaignRunner(spec, full).run()

        part = RunStore.create(tmp_path / "part", spec)
        killed = CampaignRunner(spec, part, policy=CHECKPOINTING_POLICY)
        inner_sink = killed._interval_checkpoint_sink(0)
        calls: list[int] = []

        def killer(checkpoint) -> None:
            inner_sink(checkpoint)
            calls.append(1)
            if len(calls) == 2:
                raise KeyboardInterrupt  # kill mid-interval, checkpoint durable

        with pytest.raises(KeyboardInterrupt):
            interval_record(
                spec, 0, policy=killed.policy, checkpoint_sink=killer
            )
        assert part.record_count == 0
        assert (tmp_path / "part" / CampaignRunner.CHECKPOINT_NAME).exists()

        resumed = CampaignRunner.resume(part, policy=CHECKPOINTING_POLICY)
        loaded = resumed._load_interval_checkpoint(0)
        assert loaded is not None and loaded.stream.chunk_index == 2
        outcome = resumed.run()
        assert outcome.completed

        # The checkpoint file never survives into the finished store, and the
        # store bytes match the uninterrupted default-engine run exactly.
        assert not (tmp_path / "part" / CampaignRunner.CHECKPOINT_NAME).exists()
        assert (tmp_path / "part" / "records.jsonl").read_bytes() == (
            tmp_path / "full" / "records.jsonl"
        ).read_bytes()
        assert (tmp_path / "part" / "summary.json").read_bytes() == (
            tmp_path / "full" / "summary.json"
        ).read_bytes()

    def test_incompatible_checkpoint_is_discarded(self, tmp_path):
        spec = _campaign_spec()
        store = RunStore.create(tmp_path / "run", spec)
        runner = CampaignRunner(spec, store, policy=CHECKPOINTING_POLICY)
        checkpoint_path = tmp_path / "run" / CampaignRunner.CHECKPOINT_NAME
        checkpoint_path.write_bytes(b"not a pickle")
        assert runner._load_interval_checkpoint(0) is None
        assert not checkpoint_path.exists()

        # A checkpoint for the wrong interval is equally discarded.
        blobs: list[bytes] = []
        interval_record(
            spec,
            0,
            policy=CHECKPOINTING_POLICY,
            checkpoint_sink=lambda ckpt: blobs.append(pickle.dumps(ckpt)),
        )
        checkpoint_path.write_bytes(
            pickle.dumps(
                {
                    "spec_hash": spec.spec_hash(),
                    "interval": 1,
                    "checkpoint": pickle.loads(blobs[-1]),
                }
            )
        )
        assert runner._load_interval_checkpoint(0) is None
        assert not checkpoint_path.exists()

    def test_checkpointing_run_leaves_clean_identical_store(self, tmp_path):
        spec = _campaign_spec()
        plain = RunStore.create(tmp_path / "plain", spec)
        CampaignRunner(spec, plain, policy=STREAMING_POLICY).run()
        checkpointing = RunStore.create(tmp_path / "ckpt", spec)
        CampaignRunner(spec, checkpointing, policy=CHECKPOINTING_POLICY).run()
        assert not (tmp_path / "ckpt" / CampaignRunner.CHECKPOINT_NAME).exists()
        assert checkpointing.digest() == plain.digest()

    def test_mesh_interval_rejects_mid_interval_checkpointing(self):
        spec = CampaignSpec(
            name="seek-mesh-campaign",
            intervals=1,
            cell=MeshSpec(
                seed=11,
                topology=TopologySpec(kind="star", params={"path_count": 2}, seed=0),
                traffic=TrafficSpec(workload=None, packet_count=300),
            ),
        )
        with pytest.raises(ValueError, match="single-path streaming"):
            interval_record(
                spec,
                0,
                policy=ExecutionPolicy(engine="streaming"),
                checkpoint_sink=lambda ckpt: None,
            )
