"""Unit tests for the mesh workload layer.

Covers the pieces under the mesh engines: scenario validation, the shared
receipt bus's per-pair slicing and permissions, cross-path triangulation,
the mesh lying agent, and MeshSpec round-tripping.
"""

from __future__ import annotations

import pytest

from repro.adversary.lying import MeshLyingDomainAgent
from repro.analysis.localization import SuspectLink, triangulate_suspects
from repro.api.spec import ConditionSpec, MeshSpec, TopologySpec, TrafficSpec
from repro.api.runner import _build_mesh_cell
from repro.core.protocol import MeshSession
from repro.engine.mesh import run_mesh_batch
from repro.net.topology import star_topology
from repro.reporting.dissemination import MeshReceiptBus, report_for_pair
from repro.simulation.mesh import MeshScenario
from repro.simulation.scenario import SegmentCondition


@pytest.fixture(scope="module")
def star():
    return star_topology(path_count=3)


def _fed_cell(adversaries=()):
    spec = MeshSpec(
        name="unit-mesh",
        seed=13,
        topology=TopologySpec(kind="star", params={"path_count": 3}, seed=0),
        traffic=TrafficSpec(workload=None, packet_count=600),
        conditions={
            "X": ConditionSpec(
                delay="constant",
                delay_params={"delay": 2e-3},
                loss="bernoulli",
                loss_params={"loss_rate": 0.1},
            )
        },
        adversaries=adversaries,
    )
    cell = _build_mesh_cell(spec.to_dict())
    run_mesh_batch(cell)
    return spec, cell


class TestMeshScenario:
    def test_rejects_duplicate_prefix_pairs(self, star):
        topology, paths = star
        with pytest.raises(ValueError, match="distinct prefix pairs"):
            MeshScenario(topology, (paths[0], paths[0]))

    def test_rejects_unknown_transit_domain(self, star):
        topology, paths = star
        scenario = MeshScenario(topology, paths)
        with pytest.raises(ValueError, match="transit domain of no mesh path"):
            scenario.configure_domain("S1", lambda index: SegmentCondition())

    def test_configure_builds_one_condition_per_crossing_path(self, star):
        topology, paths = star
        scenario = MeshScenario(topology, paths)
        built: list[int] = []

        def factory(index: int) -> SegmentCondition:
            built.append(index)
            return SegmentCondition()

        scenario.configure_domain("X", factory)
        assert built == [0, 1, 2]

    def test_run_batch_requires_one_batch_per_path(self, star):
        topology, paths = star
        scenario = MeshScenario(topology, paths)
        with pytest.raises(ValueError, match="one per path"):
            scenario.run_batch([])

    def test_override_rejects_non_transit_domain(self, star):
        # A condition-role adversary at an edge-only domain must fail loudly,
        # not silently leave the attack uninstalled.
        topology, paths = star
        scenario = MeshScenario(topology, paths)
        with pytest.raises(ValueError, match="cannot be overridden"):
            scenario.override_domain("S1", preferential_delay=1e-3)

    def test_condition_adversary_at_edge_domain_fails_at_build(self):
        from repro.api.spec import AdversarySpec

        spec = MeshSpec(
            topology=TopologySpec(kind="star", params={"path_count": 2}, seed=0),
            adversaries=(AdversarySpec(kind="marker-drop", domain="S1"),),
        )
        with pytest.raises(ValueError, match="cannot be overridden"):
            _build_mesh_cell(spec.to_dict())


class TestMeshReceiptBus:
    def test_slices_reports_per_pair(self):
        _, cell = _fed_cell()
        session = cell.session
        # X's ingress HOP on path 0 serves only pair 0; its reports hold
        # receipts for exactly that pair.
        path = session.paths[0]
        reports = session.bus.reports_visible_to("X", path.prefix_pair)
        assert reports
        for report in reports:
            for receipt in report.sample_receipts + report.aggregate_receipts:
                assert receipt.path_id.prefix_pair == path.prefix_pair

    def test_off_path_observer_sees_nothing(self):
        _, cell = _fed_cell()
        session = cell.session
        # S2 is not on path 0 (S1 -> X -> D1).
        assert session.bus.reports_visible_to("S2", session.paths[0].prefix_pair) == []

    def test_publish_validates_hop_ownership(self, star):
        topology, paths = star
        bus = MeshReceiptBus(paths)
        from repro.core.hop import HOPReport

        with pytest.raises(PermissionError, match="owned by"):
            bus.publish("S1", HOPReport(hop_id=2))  # HOP 2 belongs to X
        with pytest.raises(PermissionError, match="none of the mesh"):
            bus.publish("S1", HOPReport(hop_id=999))

    def test_rejects_duplicate_pairs(self, star):
        _, paths = star
        with pytest.raises(ValueError, match="duplicate prefix pair"):
            MeshReceiptBus((paths[0], paths[0]))

    def test_report_for_pair_keeps_only_matching_receipts(self):
        _, cell = _fed_cell()
        reports = cell.session._last_reports
        path = cell.session.paths[1]
        # S-side HOPs carry one pair; the filter is the identity there and
        # empty for any other pair.
        hop_id = path.hops[0].hop_id
        own = report_for_pair(reports[hop_id], path.prefix_pair)
        other = report_for_pair(reports[hop_id], cell.session.paths[0].prefix_pair)
        assert own.sample_receipts == reports[hop_id].sample_receipts
        assert own.aggregate_receipts == reports[hop_id].aggregate_receipts
        assert other.sample_receipts == ()
        assert other.aggregate_receipts == ()


class TestMeshSession:
    def test_requires_paths(self):
        with pytest.raises(ValueError, match="at least one path"):
            MeshSession(())

    def test_shared_collector_serves_all_crossing_paths(self, star):
        topology, paths = star
        session = MeshSession(paths)
        # X has 6 HOPs (ingress+egress per path), each registered for 1 path.
        agent = session.agents["X"]
        assert len(agent.hop_ids) == 6
        for hop_id in agent.hop_ids:
            assert agent.collector(hop_id).active_paths == 1

    def test_verifier_estimates_each_path_independently(self):
        spec, cell = _fed_cell()
        session = cell.session
        estimates = []
        for index, path in enumerate(session.paths):
            verifier = session.verifier_for(path.domains[0], index)
            performance = verifier.estimate_domain("X")
            estimates.append(performance.loss_rate)
            assert performance.offered_packets > 0
        # Independent bernoulli draws per path: rates are near 10% but not equal.
        assert len(set(estimates)) > 1
        for rate in estimates:
            assert rate == pytest.approx(0.1, abs=0.06)


class TestMeshLyingAgent:
    def test_fabricates_every_crossing_paths_egress(self):
        from repro.api.spec import AdversarySpec

        _, cell = _fed_cell()
        _, lying_cell = _fed_cell(
            adversaries=(AdversarySpec(kind="lying", domain="X"),)
        )
        assert isinstance(lying_cell.session.agents["X"], MeshLyingDomainAgent)
        for path in lying_cell.session.paths:
            ingress, egress = path.hops_of("X")
            honest_report = cell.session._last_reports[egress.hop_id]
            lying_report = lying_cell.session._last_reports[egress.hop_id]
            # The lie hides the 10% loss: egress aggregate counts equal the
            # ingress counts instead of the honest (smaller) egress counts.
            lying_count = sum(
                receipt.pkt_count for receipt in lying_report.aggregate_receipts
            )
            honest_count = sum(
                receipt.pkt_count for receipt in honest_report.aggregate_receipts
            )
            ingress_count = sum(
                receipt.pkt_count
                for receipt in lying_cell.session._last_reports[
                    ingress.hop_id
                ].aggregate_receipts
            )
            assert lying_count == ingress_count
            assert lying_count > honest_count

    def test_requires_a_transit_crossing(self, star):
        topology, paths = star
        with pytest.raises(ValueError, match="transit domain of none"):
            MeshLyingDomainAgent("S1", (paths[0],))


class TestTriangulation:
    def test_two_distinct_partners_expose_the_common_domain(self):
        suspects = {
            "pair-a": (
                SuspectLink(
                    upstream_domain="X", downstream_domain="N1",
                    upstream_hop=2, downstream_hop=3, findings=(),
                ),
            ),
            "pair-b": (
                SuspectLink(
                    upstream_domain="X", downstream_domain="N2",
                    upstream_hop=5, downstream_hop=6, findings=(),
                ),
            ),
        }
        triangulation = triangulate_suspects(suspects)
        assert triangulation.exposed_domains == ("X",)
        implication = triangulation.implication_for("X")
        assert implication.partners == ("N1", "N2")
        assert implication.paths == ("pair-a", "pair-b")
        assert not triangulation.implication_for("N1").exposed

    def test_two_links_on_one_path_do_not_expose(self):
        # A faulty link on each side of honest B reproduces the multi-partner
        # signature on a single path; without cross-path evidence B stays
        # unexposed.
        suspects = {
            "pair-a": (
                SuspectLink(
                    upstream_domain="A", downstream_domain="B",
                    upstream_hop=1, downstream_hop=2, findings=(),
                ),
                SuspectLink(
                    upstream_domain="B", downstream_domain="C",
                    upstream_hop=3, downstream_hop=4, findings=(),
                ),
            ),
        }
        assert triangulate_suspects(suspects).exposed_domains == ()

    def test_single_partner_stays_a_pair(self):
        suspects = {
            "pair-a": (
                SuspectLink(
                    upstream_domain="X", downstream_domain="N",
                    upstream_hop=2, downstream_hop=3, findings=(),
                ),
            ),
            "pair-b": (
                SuspectLink(
                    upstream_domain="X", downstream_domain="N",
                    upstream_hop=2, downstream_hop=3, findings=(),
                ),
            ),
        }
        assert triangulate_suspects(suspects).exposed_domains == ()

    def test_no_suspects_no_implications(self):
        triangulation = triangulate_suspects({})
        assert triangulation.implications == ()
        assert triangulation.exposed_domains == ()


class TestMeshSpec:
    def test_dict_round_trip_is_identity(self):
        spec = MeshSpec(
            name="round-trip",
            seed=5,
            engine="streaming",
            topology=TopologySpec(
                kind="mesh-random", params={"path_count": 2, "stub_domains": 3}
            ),
            traffic=TrafficSpec(workload="smoke-sequence", packet_count=500),
            conditions={"T1": ConditionSpec(loss="bernoulli", loss_params={"loss_rate": 0.1})},
            quantiles=(0.5, 0.9),
        )
        assert MeshSpec.from_dict(spec.to_dict()) == spec
        assert MeshSpec.from_dict(spec.to_dict()).to_dict() == spec.to_dict()

    def test_rejects_bad_engine(self):
        with pytest.raises(ValueError, match="mesh engine"):
            MeshSpec(engine="scalar")

    def test_estimation_mode_round_trips_and_validates(self):
        spec = MeshSpec(estimation_mode="sketch", sketch_size=64)
        data = spec.to_dict()
        assert data["estimation_mode"] == "sketch"
        assert data["sketch_size"] == 64
        assert MeshSpec.from_dict(data) == spec
        with pytest.raises(ValueError, match="mode"):
            MeshSpec(estimation_mode="fuzzy")
        with pytest.raises(ValueError, match="sketch_size"):
            MeshSpec(estimation_mode="sketch", sketch_size=2)

    def test_exact_mode_serialization_is_unchanged(self):
        data = MeshSpec().to_dict()
        assert "estimation_mode" not in data
        assert "sketch_size" not in data

    def test_rejects_unknown_topology_kind(self):
        with pytest.raises(ValueError, match="unknown topology"):
            TopologySpec(kind="doughnut")

    def test_with_overrides_re_runs_validation(self):
        spec = MeshSpec(topology=TopologySpec(kind="star", params={"path_count": 2}))
        swept = spec.with_overrides({"topology.params.path_count": 4})
        assert swept.topology.params["path_count"] == 4
        with pytest.raises(ValueError, match="mesh engine"):
            spec.with_overrides({"engine": "scalar"})

    def test_condition_on_non_transit_domain_fails_at_build(self):
        spec = MeshSpec(
            topology=TopologySpec(kind="star", params={"path_count": 2}, seed=0),
            conditions={"S1": ConditionSpec()},
        )
        with pytest.raises(ValueError, match="transit domain of no path"):
            _build_mesh_cell(spec.to_dict())
