"""Unit tests for repro.reporting.overhead (the Section 7.1 models)."""

from __future__ import annotations

import pytest

from repro.reporting.overhead import (
    BandwidthOverheadModel,
    CollectorMemoryModel,
    PerPacketProcessingModel,
    ResourceProfile,
)


class TestCollectorMemory:
    def test_monitoring_cache_matches_paper(self):
        # 100,000 active paths at ~20 bytes each -> a 2 MB monitoring cache.
        model = CollectorMemoryModel(active_paths=100_000)
        assert model.monitoring_cache_bytes == pytest.approx(2e6, rel=0.05)

    def test_temp_buffer_typical_case_matches_paper(self):
        # 10 Gbps at 400-byte packets, J = 10 ms -> ~436 KB (paper's figure is
        # computed with 3.125 Mpps and 7+ bytes of per-packet state).
        model = CollectorMemoryModel(
            interface_gbps=10, mean_packet_size=400, reorder_window=0.01
        )
        assert model.temp_buffer_bytes == pytest.approx(436e3, rel=0.5)
        assert model.packets_per_second == pytest.approx(3.125e6)

    def test_temp_buffer_worst_case_within_sram(self):
        # Worst case (all minimum-size packets, ~20 Mpps) stays within one
        # SRAM chip — "even assuming worst-case traffic, the amount of
        # buffering we need fits into a single SRAM chip".
        model = CollectorMemoryModel(
            interface_gbps=10, mean_packet_size=62, reorder_window=0.01
        )
        assert model.temp_buffer_bytes == pytest.approx(2.8e6, rel=0.5)
        assert model.fits_in_sram_chip()

    def test_total_is_sum(self):
        model = CollectorMemoryModel()
        assert model.total_bytes == model.monitoring_cache_bytes + model.temp_buffer_bytes

    def test_validation(self):
        with pytest.raises(ValueError):
            CollectorMemoryModel(active_paths=0)
        with pytest.raises(ValueError):
            CollectorMemoryModel(reorder_window=0)


class TestProcessing:
    def test_access_count_matches_paper(self):
        # Three accesses per packet plus one amortized marker-scan access.
        model = PerPacketProcessingModel()
        assert model.total_memory_accesses_per_packet == 4

    def test_accesses_per_second_scales(self):
        model = PerPacketProcessingModel()
        assert model.accesses_per_second(3.125e6) == pytest.approx(12.5e6)

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            PerPacketProcessingModel().accesses_per_second(-1)


class TestBandwidth:
    def test_paper_scenario_aggregate_only(self):
        # 10-domain path, 1000-packet aggregates, 22-byte receipts:
        # ~0.2 receipt bytes per packet, ~0.05% of 400-byte packets.
        model = BandwidthOverheadModel()
        assert model.aggregate_only_bytes_per_packet == pytest.approx(0.22, rel=0.05)
        assert model.aggregate_only_bandwidth_overhead == pytest.approx(0.00055, rel=0.05)

    def test_full_accounting_includes_samples(self):
        model = BandwidthOverheadModel(sampling_rate=0.01)
        assert model.receipt_bytes_per_packet > model.aggregate_only_bytes_per_packet
        # Still well below 1%.
        assert model.bandwidth_overhead < 0.01

    def test_overhead_decreases_with_larger_aggregates(self):
        small = BandwidthOverheadModel(packets_per_aggregate=100)
        large = BandwidthOverheadModel(packets_per_aggregate=10_000)
        assert large.receipt_bytes_per_packet < small.receipt_bytes_per_packet

    def test_overhead_scales_with_hops(self):
        short = BandwidthOverheadModel(hops_on_path=4)
        long = BandwidthOverheadModel(hops_on_path=10)
        assert long.receipt_bytes_per_packet == pytest.approx(
            2.5 * short.receipt_bytes_per_packet
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            BandwidthOverheadModel(hops_on_path=0)
        with pytest.raises(ValueError):
            BandwidthOverheadModel(sampling_rate=0.0)


class TestResourceProfile:
    def test_summary_keys(self):
        summary = ResourceProfile().summary()
        assert set(summary) == {
            "monitoring_cache_bytes",
            "temp_buffer_bytes",
            "total_memory_bytes",
            "memory_accesses_per_packet",
            "receipt_bytes_per_packet",
            "bandwidth_overhead",
        }
        assert all(value >= 0 for value in summary.values())
