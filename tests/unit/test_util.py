"""Unit tests for repro.util (rng, units, validation)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.util.rng import derive_seed, make_rng
from repro.util.units import (
    Mbps,
    bytes_to_human,
    gbps_to_pps,
    microseconds,
    milliseconds,
    seconds,
)
from repro.util.validation import (
    check_fraction,
    check_non_negative,
    check_positive,
    check_probability,
)


class TestRNG:
    def test_make_rng_accepts_none_int_and_generator(self):
        assert isinstance(make_rng(None), np.random.Generator)
        assert isinstance(make_rng(3), np.random.Generator)
        generator = np.random.default_rng(1)
        assert make_rng(generator) is generator

    def test_same_seed_same_stream(self):
        assert make_rng(7).integers(0, 1000, 10).tolist() == make_rng(7).integers(
            0, 1000, 10
        ).tolist()

    def test_derive_seed_stable_and_label_sensitive(self):
        assert derive_seed(42, "loss") == derive_seed(42, "loss")
        assert derive_seed(42, "loss") != derive_seed(42, "delay")
        assert derive_seed(42, "loss") != derive_seed(43, "loss")

    def test_derive_seed_multiple_labels(self):
        assert derive_seed(1, "a", "b") != derive_seed(1, "a", "c")


class TestUnits:
    def test_time_conversions(self):
        assert seconds(2) == 2.0
        assert milliseconds(5) == pytest.approx(0.005)
        assert microseconds(7) == pytest.approx(7e-6)

    def test_mbps(self):
        assert Mbps(8) == pytest.approx(1e6)

    def test_gbps_to_pps_matches_paper(self):
        # Section 7.1: 10 Gbps at 400-byte packets is 3.125 Mpps.
        assert gbps_to_pps(10, 400) == pytest.approx(3.125e6)
        # Worst case, minimum-size packets: about 20 Mpps (paper uses 62.5B eq).
        assert gbps_to_pps(10, 62.5) == pytest.approx(20e6)

    def test_gbps_to_pps_validation(self):
        with pytest.raises(ValueError):
            gbps_to_pps(-1)
        with pytest.raises(ValueError):
            gbps_to_pps(1, 0)

    def test_bytes_to_human(self):
        assert bytes_to_human(512) == "512.0 B"
        assert bytes_to_human(2 * 1024 * 1024) == "2.0 MB"
        with pytest.raises(ValueError):
            bytes_to_human(-1)


class TestValidation:
    def test_check_positive(self):
        assert check_positive("x", 3) == 3
        with pytest.raises(ValueError, match="x"):
            check_positive("x", 0)

    def test_check_non_negative(self):
        assert check_non_negative("x", 0) == 0
        with pytest.raises(ValueError):
            check_non_negative("x", -1)

    def test_check_probability(self):
        assert check_probability("p", 0.0) == 0.0
        assert check_probability("p", 1.0) == 1.0
        with pytest.raises(ValueError):
            check_probability("p", 1.1)

    def test_check_fraction(self):
        assert check_fraction("f", 1.0) == 1.0
        with pytest.raises(ValueError):
            check_fraction("f", 0.0)
