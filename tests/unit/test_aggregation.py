"""Unit tests for repro.core.aggregation (Algorithm 2 + AggTrans)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.aggregation import Aggregator, AggregatorConfig
from repro.core.receipts import PathID
from repro.net.hashing import MASK64, threshold_for_rate


@pytest.fixture()
def path_id(prefix_pair) -> PathID:
    return PathID(
        prefix_pair=prefix_pair, reporting_hop=4, previous_hop=3, next_hop=5, max_diff=1e-3
    )


def synthetic_digests(count: int, seed: int = 0) -> list[int]:
    rng = np.random.default_rng(seed)
    return [int(value) for value in rng.integers(0, MASK64, size=count, dtype=np.uint64)]


def drive(aggregator: Aggregator, digests: list[int], gap: float = 1e-5) -> None:
    for index, digest in enumerate(digests):
        aggregator.observe(digest, index * gap)


class TestAggregatorConfig:
    def test_partition_rate_inverse_of_size(self):
        config = AggregatorConfig(expected_aggregate_size=1000)
        assert config.partition_rate == pytest.approx(1e-3)
        assert config.partition_threshold == threshold_for_rate(1e-3)

    def test_validation(self):
        with pytest.raises(ValueError):
            AggregatorConfig(expected_aggregate_size=0)
        with pytest.raises(ValueError):
            AggregatorConfig(reorder_window=-1.0)


class TestAggregator:
    def test_counts_every_packet_exactly_once(self, path_id):
        aggregator = Aggregator(AggregatorConfig(expected_aggregate_size=100))
        digests = synthetic_digests(5000, seed=1)
        drive(aggregator, digests)
        aggregator.flush()
        receipts = aggregator.receipts(path_id)
        assert sum(receipt.pkt_count for receipt in receipts) == 5000

    def test_aggregate_sizes_near_expected(self, path_id):
        aggregator = Aggregator(AggregatorConfig(expected_aggregate_size=200))
        digests = synthetic_digests(40_000, seed=2)
        drive(aggregator, digests)
        aggregator.flush()
        receipts = aggregator.receipts(path_id)
        mean_size = np.mean([receipt.pkt_count for receipt in receipts])
        assert mean_size == pytest.approx(200, rel=0.3)

    def test_cutting_packet_starts_new_aggregate(self, path_id):
        aggregator = Aggregator(AggregatorConfig(expected_aggregate_size=10))
        low = 100  # never a cut for size-10 threshold
        aggregator.observe(low, 0.0)
        aggregator.observe(low + 1, 1e-5)
        cut = MASK64  # certainly a cut
        aggregator.observe(cut, 2e-5)
        aggregator.flush()
        receipts = aggregator.receipts(path_id)
        assert len(receipts) == 2
        assert receipts[0].pkt_count == 2
        assert receipts[1].first_pkt_id == cut

    def test_receipt_timestamps_and_time_sum(self, path_id):
        aggregator = Aggregator(AggregatorConfig(expected_aggregate_size=1_000_000))
        times = [0.0, 0.5, 1.0]
        for digest, time in zip((1, 2, 3), times):
            aggregator.observe(digest, time)
        aggregator.flush()
        receipt = aggregator.receipts(path_id)[0]
        assert receipt.start_time == 0.0
        assert receipt.end_time == 1.0
        assert receipt.time_sum == pytest.approx(1.5)
        assert receipt.mean_time == pytest.approx(0.5)

    def test_agg_trans_windows_populated(self, path_id):
        config = AggregatorConfig(expected_aggregate_size=10, reorder_window=1e-3)
        aggregator = Aggregator(config)
        # 5 low-digest packets, a cut, then 5 more low packets, all within J.
        for index in range(5):
            aggregator.observe(10 + index, index * 1e-4)
        aggregator.observe(MASK64, 5e-4)
        for index in range(5):
            aggregator.observe(20 + index, 6e-4 + index * 1e-4)
        aggregator.flush()
        receipts = aggregator.receipts(path_id)
        first = receipts[0]
        assert set(first.trans_before) == {10, 11, 12, 13, 14}
        assert MASK64 in first.trans_after
        assert {20, 21, 22, 23}.issubset(set(first.trans_after))

    def test_agg_trans_respects_window(self, path_id):
        config = AggregatorConfig(expected_aggregate_size=10, reorder_window=1e-4)
        aggregator = Aggregator(config)
        aggregator.observe(1, 0.0)        # far before the cut: outside window
        aggregator.observe(2, 0.00095)    # within J of the cut
        aggregator.observe(MASK64, 0.001) # the cut
        aggregator.observe(3, 0.0011)     # within J after
        aggregator.observe(4, 0.01)       # far after: outside window
        aggregator.flush()
        first = aggregator.receipts(path_id)[0]
        assert 1 not in first.trans_before
        assert 2 in first.trans_before
        assert 3 in first.trans_after
        assert 4 not in first.trans_after

    def test_receipts_finalized_only_after_window_elapses(self, path_id):
        config = AggregatorConfig(expected_aggregate_size=10, reorder_window=1e-3)
        aggregator = Aggregator(config)
        aggregator.observe(1, 0.0)
        aggregator.observe(MASK64, 1e-4)  # cut; closing receipt stays pending
        assert aggregator.receipts(path_id, reset=False) == []
        aggregator.observe(2, 2e-3)  # more than J later: pending finalizes
        receipts = aggregator.receipts(path_id)
        assert len(receipts) == 1
        assert receipts[0].pkt_count == 1

    def test_flush_reports_partial_aggregate(self, path_id):
        aggregator = Aggregator(AggregatorConfig(expected_aggregate_size=1_000_000))
        drive(aggregator, [1, 2, 3])
        assert aggregator.receipts(path_id, reset=False) == []
        aggregator.flush()
        receipts = aggregator.receipts(path_id)
        assert len(receipts) == 1
        assert receipts[0].pkt_count == 3

    def test_flush_idempotent_when_empty(self, path_id):
        aggregator = Aggregator()
        aggregator.flush()
        assert aggregator.receipts(path_id) == []

    def test_constant_state_per_aggregate(self):
        # The open-aggregate state must not grow with aggregate size (only the
        # J-bounded sliding window may hold per-packet state).
        config = AggregatorConfig(expected_aggregate_size=10**9, reorder_window=1e-4)
        aggregator = Aggregator(config)
        drive(aggregator, synthetic_digests(20_000, seed=3), gap=1e-5)
        # Window is 1e-4 s at 1e-5 s spacing -> at most ~11 packets retained.
        assert aggregator.max_window_occupancy <= 12

    def test_counters(self, path_id):
        aggregator = Aggregator(AggregatorConfig(expected_aggregate_size=50))
        drive(aggregator, synthetic_digests(2000, seed=4))
        assert aggregator.observed_packets == 2000
        assert aggregator.cut_count > 10
        assert aggregator.open_aggregate_size >= 0

    def test_invalid_digest_rejected(self):
        with pytest.raises(ValueError):
            Aggregator().observe(-5, 0.0)

    def test_repr(self):
        assert "expected_aggregate_size" in repr(Aggregator())


class TestPartitionNesting:
    def test_lower_threshold_cuts_superset_of_points(self, path_id):
        """Section 6.2: partitions from different thresholds never partially overlap."""
        digests = synthetic_digests(30_000, seed=5)
        coarse = Aggregator(AggregatorConfig(expected_aggregate_size=2000))
        fine = Aggregator(AggregatorConfig(expected_aggregate_size=200))
        drive(coarse, digests)
        drive(fine, digests)
        coarse.flush()
        fine.flush()
        coarse_cuts = {
            receipt.first_pkt_id for receipt in coarse.receipts(path_id)[1:]
        }
        fine_cuts = {receipt.first_pkt_id for receipt in fine.receipts(path_id)[1:]}
        assert coarse_cuts <= fine_cuts
        assert len(fine_cuts) > len(coarse_cuts)

    def test_identical_thresholds_identical_partitions(self, path_id):
        digests = synthetic_digests(10_000, seed=6)
        first = Aggregator(AggregatorConfig(expected_aggregate_size=500))
        second = Aggregator(AggregatorConfig(expected_aggregate_size=500))
        drive(first, digests)
        drive(second, digests, gap=2e-5)
        first.flush()
        second.flush()
        first_counts = [receipt.pkt_count for receipt in first.receipts(path_id)]
        second_counts = [receipt.pkt_count for receipt in second.receipts(path_id)]
        assert first_counts == second_counts
