"""Unit tests for repro.traffic.flows and repro.traffic.trace."""

from __future__ import annotations

import numpy as np
import pytest

from repro.traffic.flows import Flow, FlowGenerator, FlowGeneratorConfig
from repro.traffic.trace import SyntheticTrace, TraceConfig, default_prefix_pair
from repro.traffic.workload import WORKLOADS, make_workload


class TestFlowGenerator:
    def test_generates_enough_packets(self, prefix_pair):
        generator = FlowGenerator(prefix_pair, seed=1)
        flows = generator.generate(5000)
        assert sum(flow.packet_count for flow in flows) >= 5000

    def test_flow_addresses_inside_prefixes(self, prefix_pair):
        generator = FlowGenerator(prefix_pair, seed=2)
        for flow in generator.generate(500):
            assert prefix_pair.source.contains(flow.src_ip)
            assert prefix_pair.destination.contains(flow.dst_ip)

    def test_flow_sizes_heavy_tailed(self, prefix_pair):
        generator = FlowGenerator(prefix_pair, seed=3)
        sizes = np.array([flow.packet_count for flow in generator.generate(20000)])
        # A heavy-tailed distribution has max far above the mean.
        assert sizes.max() > 5 * sizes.mean()

    def test_tcp_fraction_respected(self, prefix_pair):
        config = FlowGeneratorConfig(tcp_fraction=1.0)
        generator = FlowGenerator(prefix_pair, config=config, seed=4)
        assert all(flow.protocol == 6 for flow in generator.generate(1000))

    def test_packet_sizes_from_modes(self, prefix_pair):
        generator = FlowGenerator(prefix_pair, seed=5)
        sizes = set(generator.draw_packet_sizes(500).tolist())
        assert sizes <= {40, 576, 1500}

    def test_invalid_total_rejected(self, prefix_pair):
        with pytest.raises(ValueError):
            FlowGenerator(prefix_pair, seed=6).generate(0)

    def test_flow_validation(self):
        with pytest.raises(ValueError):
            Flow(
                flow_id=1, src_ip=1, dst_ip=2, src_port=3, dst_port=4, protocol=6,
                packet_count=0, start_time=0.0, mean_interarrival=1e-3,
            )

    def test_config_validation(self):
        with pytest.raises(ValueError):
            FlowGeneratorConfig(tcp_fraction=1.5)
        with pytest.raises(ValueError):
            FlowGeneratorConfig(mean_flow_size=0)


class TestSyntheticTrace:
    def test_packet_count_and_ordering(self):
        config = TraceConfig(packet_count=3000, packets_per_second=100_000.0)
        packets = SyntheticTrace(config=config, seed=1).packets()
        assert len(packets) == 3000
        times = [packet.send_time for packet in packets]
        assert times == sorted(times)

    def test_uids_unique_and_sequential(self):
        config = TraceConfig(packet_count=1000)
        packets = SyntheticTrace(config=config, seed=2).packets()
        assert [packet.uid for packet in packets] == list(range(1000))

    def test_rate_approximately_configured(self):
        config = TraceConfig(packet_count=20_000, packets_per_second=100_000.0)
        packets = SyntheticTrace(config=config, seed=3).packets()
        duration = packets[-1].send_time - packets[0].send_time
        measured_rate = len(packets) / duration
        assert measured_rate == pytest.approx(100_000.0, rel=0.1)

    def test_addresses_match_prefix_pair(self):
        pair = default_prefix_pair()
        config = TraceConfig(packet_count=500)
        packets = SyntheticTrace(config=config, prefix_pair=pair, seed=4).packets()
        for packet in packets:
            assert pair.matches(packet.headers.src_ip, packet.headers.dst_ip)

    def test_digests_are_diverse(self, digester):
        config = TraceConfig(packet_count=2000)
        packets = SyntheticTrace(config=config, seed=5).packets()
        digests = {digester.digest(packet) for packet in packets}
        # Payload randomization should make virtually every digest unique.
        assert len(digests) > 1990

    def test_deterministic_for_seed(self):
        config = TraceConfig(packet_count=200)
        a = SyntheticTrace(config=config, seed=6).packets()
        b = SyntheticTrace(config=config, seed=6).packets()
        assert [p.headers for p in a] == [p.headers for p in b]
        assert [p.send_time for p in a] == [p.send_time for p in b]

    def test_mean_packet_size_near_400(self):
        config = TraceConfig(packet_count=20_000)
        packets = SyntheticTrace(config=config, seed=7).packets()
        mean_size = np.mean([packet.size for packet in packets])
        assert 300 <= mean_size <= 550

    @pytest.mark.parametrize("process", ["poisson", "cbr", "mmpp"])
    def test_arrival_processes_supported(self, process):
        config = TraceConfig(packet_count=2000, arrival_process=process)
        packets = SyntheticTrace(config=config, seed=8).packets()
        assert len(packets) == 2000

    def test_mmpp_burstier_than_cbr(self):
        cbr = SyntheticTrace(
            config=TraceConfig(packet_count=10_000, arrival_process="cbr"), seed=9
        ).packets()
        mmpp = SyntheticTrace(
            config=TraceConfig(packet_count=10_000, arrival_process="mmpp"), seed=9
        ).packets()

        def gap_cv(packets) -> float:
            gaps = np.diff([packet.send_time for packet in packets])
            return gaps.std() / gaps.mean()

        assert gap_cv(mmpp) > gap_cv(cbr)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            TraceConfig(packet_count=0)
        with pytest.raises(ValueError):
            TraceConfig(arrival_process="fractal")
        with pytest.raises(ValueError):
            TraceConfig(payload_bytes=-1)


class TestTraceSeek:
    """``iter_batches(start_chunk=k)`` — the trace side of shard seeking."""

    _COLUMNS = (
        "src_ip", "dst_ip", "src_port", "dst_port", "protocol",
        "ip_id", "length", "uid", "send_time", "flow_id",
    )

    def test_start_chunk_yields_bitwise_identical_suffix(self):
        config = TraceConfig(packet_count=1000, arrival_process="mmpp")
        full = list(SyntheticTrace(config=config, seed=11).iter_batches(128))
        for start in (0, 1, 3, len(full)):
            suffix = list(
                SyntheticTrace(config=config, seed=11).iter_batches(
                    128, start_chunk=start
                )
            )
            assert len(suffix) == len(full) - start
            for expected, actual in zip(full[start:], suffix):
                for column in self._COLUMNS:
                    assert np.array_equal(
                        getattr(actual, column), getattr(expected, column)
                    ), column
                assert np.array_equal(actual.payload, expected.payload)

    def test_start_chunk_past_the_end_yields_nothing(self):
        config = TraceConfig(packet_count=300)
        chunks = list(
            SyntheticTrace(config=config, seed=12).iter_batches(128, start_chunk=99)
        )
        assert chunks == []

    def test_negative_start_chunk_rejected(self):
        trace = SyntheticTrace(config=TraceConfig(packet_count=300), seed=13)
        with pytest.raises(ValueError, match="start_chunk"):
            list(trace.iter_batches(128, start_chunk=-1))


class TestWorkloads:
    def test_known_workloads_materialize(self):
        trace = make_workload("smoke-sequence", seed=1)
        assert trace.config.packet_count == WORKLOADS["smoke-sequence"].packet_count

    def test_unknown_workload_raises_with_hint(self):
        with pytest.raises(KeyError, match="known workloads"):
            make_workload("no-such-workload")

    def test_paper_sequence_rate(self):
        spec = WORKLOADS["paper-sequence"]
        assert spec.packets_per_second == 100_000.0
        assert spec.packet_count == 100_000
