"""Unit tests for repro.core.estimation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.estimation import (
    DEFAULT_QUANTILES,
    DelayQuantileEstimate,
    delay_accuracy,
    estimate_delay_quantiles,
    estimate_loss_rate,
    match_sample_delays,
    quantile_confidence_bounds,
)
from repro.core.receipts import PathID, SampleReceipt, SampleRecord


@pytest.fixture()
def path_id(prefix_pair) -> PathID:
    return PathID(
        prefix_pair=prefix_pair, reporting_hop=4, previous_hop=3, next_hop=5, max_diff=1e-3
    )


def receipt(path_id, records) -> SampleReceipt:
    return SampleReceipt(
        path_id=path_id,
        samples=tuple(SampleRecord(pkt_id=pkt, time=time) for pkt, time in records),
    )


class TestQuantileEstimation:
    def test_point_estimates_match_numpy(self):
        rng = np.random.default_rng(1)
        delays = rng.exponential(5e-3, size=5000)
        estimates = estimate_delay_quantiles(delays, quantiles=(0.5, 0.9))
        assert estimates[0.5].estimate == pytest.approx(np.quantile(delays, 0.5))
        assert estimates[0.9].estimate == pytest.approx(np.quantile(delays, 0.9))

    def test_confidence_interval_contains_estimate(self):
        rng = np.random.default_rng(2)
        delays = rng.normal(10e-3, 2e-3, size=2000)
        for estimate in estimate_delay_quantiles(delays).values():
            assert estimate.lower <= estimate.estimate <= estimate.upper
            assert estimate.sample_count == 2000
            assert estimate.interval_width >= 0

    def test_interval_shrinks_with_more_samples(self):
        rng = np.random.default_rng(3)
        population = rng.exponential(5e-3, size=100_000)
        small = estimate_delay_quantiles(population[:100], quantiles=(0.9,))[0.9]
        large = estimate_delay_quantiles(population[:10_000], quantiles=(0.9,))[0.9]
        assert large.interval_width < small.interval_width

    def test_interval_covers_true_quantile_most_of_the_time(self):
        # Coverage check for the distribution-free bounds: in repeated
        # sampling, the 95% interval should contain the true quantile in
        # roughly 95% of trials (we assert > 80% to keep the test stable).
        rng = np.random.default_rng(4)
        population = rng.exponential(5e-3, size=200_000)
        true_q90 = np.quantile(population, 0.9)
        covered = 0
        trials = 100
        for _ in range(trials):
            sample = rng.choice(population, size=500, replace=False)
            estimate = estimate_delay_quantiles(sample, quantiles=(0.9,))[0.9]
            if estimate.lower <= true_q90 <= estimate.upper:
                covered += 1
        assert covered >= 0.8 * trials

    def test_default_quantiles_used(self):
        estimates = estimate_delay_quantiles(np.linspace(0, 1, 100))
        assert set(estimates) == set(DEFAULT_QUANTILES)

    def test_empty_sample_rejected(self):
        with pytest.raises(ValueError):
            estimate_delay_quantiles([])

    def test_invalid_quantile_rejected(self):
        with pytest.raises(ValueError):
            estimate_delay_quantiles([1.0, 2.0], quantiles=(1.5,))

    def test_bounds_validation(self):
        with pytest.raises(ValueError):
            quantile_confidence_bounds(np.array([]), 0.5)
        with pytest.raises(ValueError):
            quantile_confidence_bounds(np.array([1.0]), 1.5)


class TestMatchSampleDelays:
    def test_matches_common_packets_only(self, path_id):
        ingress = receipt(path_id, [(1, 1.0), (2, 2.0), (3, 3.0)])
        egress = receipt(path_id, [(1, 1.010), (3, 3.020), (9, 9.0)])
        delays = match_sample_delays(ingress, egress)
        assert sorted(delays.tolist()) == pytest.approx([0.010, 0.020])

    def test_empty_overlap_gives_empty_array(self, path_id):
        ingress = receipt(path_id, [(1, 1.0)])
        egress = receipt(path_id, [(2, 2.0)])
        assert match_sample_delays(ingress, egress).size == 0

    def test_negative_delays_preserved(self, path_id):
        ingress = receipt(path_id, [(1, 1.0)])
        egress = receipt(path_id, [(1, 0.9)])
        assert match_sample_delays(ingress, egress).tolist() == pytest.approx([-0.1])


class TestLossEstimate:
    def test_loss_fraction_of_sampled(self, path_id):
        ingress = receipt(path_id, [(k, float(k)) for k in range(10)])
        egress = receipt(path_id, [(k, float(k) + 0.001) for k in range(7)])
        rate, lost, total = estimate_loss_rate(ingress, egress)
        assert (rate, lost, total) == (pytest.approx(0.3), 3, 10)

    def test_empty_ingress(self, path_id):
        rate, lost, total = estimate_loss_rate(receipt(path_id, []), receipt(path_id, []))
        assert (rate, lost, total) == (0.0, 0, 0)


class TestDelayAccuracy:
    def test_accuracy_is_max_error(self):
        estimated = {0.5: 1.0e-3, 0.9: 5.0e-3}
        truth = {0.5: 1.5e-3, 0.9: 4.0e-3}
        assert delay_accuracy(estimated, truth) == pytest.approx(1.0e-3)

    def test_accepts_estimate_objects(self):
        estimated = {
            0.9: DelayQuantileEstimate(
                quantile=0.9, estimate=5e-3, lower=4e-3, upper=6e-3, sample_count=10
            )
        }
        assert delay_accuracy(estimated, {0.9: 7e-3}) == pytest.approx(2e-3)

    def test_disjoint_quantiles_rejected(self):
        with pytest.raises(ValueError):
            delay_accuracy({0.5: 1.0}, {0.9: 2.0})
