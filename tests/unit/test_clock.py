"""Unit tests for repro.net.clock."""

from __future__ import annotations

import numpy as np
import pytest

from repro.net.clock import ClockModel, PerfectClock, ntp_synchronized_clock


class TestPerfectClock:
    def test_identity(self):
        clock = PerfectClock()
        for value in (0.0, 1.5, 1e6):
            assert clock.read(value) == value

    def test_callable(self):
        assert PerfectClock()(3.0) == 3.0


class TestClockModel:
    def test_constant_offset(self):
        clock = ClockModel(offset=0.5)
        assert clock.read(10.0) == pytest.approx(10.5)

    def test_drift_grows_with_time(self):
        clock = ClockModel(drift_ppm=100.0)  # 100 us per second
        assert clock.read(10.0) == pytest.approx(10.0 + 10.0 * 100e-6)

    def test_jitter_is_random_but_bounded_in_expectation(self):
        clock = ClockModel(jitter_std=1e-6, seed=1)
        reads = np.array([clock.read(1.0) for _ in range(200)])
        assert reads.std() == pytest.approx(1e-6, rel=0.5)

    def test_zero_jitter_is_deterministic(self):
        clock = ClockModel(offset=0.1, drift_ppm=5.0, jitter_std=0.0)
        assert clock.read(7.0) == clock.read(7.0)

    def test_negative_jitter_rejected(self):
        with pytest.raises(ValueError):
            ClockModel(jitter_std=-1e-6)

    def test_repr_mentions_parameters(self):
        assert "offset" in repr(ClockModel(offset=0.1))


class TestNTPClock:
    def test_offset_within_bound(self):
        for seed in range(20):
            clock = ntp_synchronized_clock(seed, max_offset=1e-3, jitter_std=0.0)
            assert abs(clock.offset) <= 1e-3

    def test_deterministic_for_seed(self):
        a = ntp_synchronized_clock(5, jitter_std=0.0)
        b = ntp_synchronized_clock(5, jitter_std=0.0)
        assert a.offset == b.offset
        assert a.drift_ppm == b.drift_ppm

    def test_negative_max_offset_rejected(self):
        with pytest.raises(ValueError):
            ntp_synchronized_clock(1, max_offset=-1.0)
