"""Unit tests for repro.core.domain and repro.core.verifier."""

from __future__ import annotations

import pytest

from repro.core.aggregation import AggregatorConfig
from repro.core.domain import DomainAgent
from repro.core.hop import HOPConfig
from repro.core.sampling import SamplerConfig
from repro.core.verifier import Verifier
from repro.simulation.scenario import PathScenario, SegmentCondition
from repro.traffic.delay_models import JitterDelayModel
from repro.traffic.loss_models import BernoulliLossModel


TEST_CONFIG = HOPConfig(
    sampler=SamplerConfig(sampling_rate=0.2, marker_rate=0.02),
    aggregator=AggregatorConfig(expected_aggregate_size=200),
)


@pytest.fixture(scope="module")
def congested_observation(small_trace_packets):
    """An observation where X adds 5 ms (+/- jitter) delay and 10% loss."""
    scenario = PathScenario(seed=21)
    scenario.configure_domain(
        "X",
        SegmentCondition(
            delay_model=JitterDelayModel(base_delay=5e-3, jitter_std=1e-3, seed=22),
            loss_model=BernoulliLossModel(0.1, seed=23),
        ),
    )
    return scenario.run(small_trace_packets)


@pytest.fixture(scope="module")
def small_trace_packets(prefix_pair):
    # Module-local override: a slightly smaller trace keeps this module fast.
    from repro.traffic.flows import FlowGeneratorConfig
    from repro.traffic.trace import SyntheticTrace, TraceConfig

    config = TraceConfig(
        packet_count=2000, packets_per_second=100_000.0, flow_config=FlowGeneratorConfig()
    )
    return SyntheticTrace(config=config, prefix_pair=prefix_pair, seed=31).packets()


@pytest.fixture(scope="module")
def all_reports(path, congested_observation):
    reports = {}
    for domain in path.domains:
        agent = DomainAgent(domain, path, config=TEST_CONFIG)
        agent.observe(congested_observation)
        reports.update(agent.reports(flush=True))
    return reports


class TestDomainAgent:
    def test_agent_owns_its_hops(self, path):
        agent = DomainAgent("X", path, config=TEST_CONFIG)
        assert agent.hop_ids == (4, 5)
        assert DomainAgent("S", path, config=TEST_CONFIG).hop_ids == (1,)

    def test_unknown_domain_rejected(self, path):
        with pytest.raises(ValueError):
            DomainAgent("Z", path)

    def test_reports_cover_all_owned_hops(self, path, congested_observation):
        agent = DomainAgent("N", path, config=TEST_CONFIG)
        agent.observe(congested_observation)
        reports = agent.reports(flush=True)
        assert set(reports) == {6, 7}
        for report in reports.values():
            assert report.aggregate_receipts

    def test_per_hop_config_override(self, path, congested_observation):
        fine = HOPConfig(
            sampler=SamplerConfig(sampling_rate=0.5, marker_rate=0.02),
            aggregator=AggregatorConfig(expected_aggregate_size=200),
        )
        agent = DomainAgent(
            "X", path, config=TEST_CONFIG, per_hop_config={5: fine}
        )
        agent.observe(congested_observation)
        reports = agent.reports(flush=True)
        ingress_samples = sum(len(r) for r in reports[4].sample_receipts)
        egress_samples = sum(len(r) for r in reports[5].sample_receipts)
        # The egress HOP samples at a higher rate despite 10% loss.
        assert egress_samples > ingress_samples * 1.5

    def test_repr(self, path):
        assert "X" in repr(DomainAgent("X", path, config=TEST_CONFIG))


class TestVerifierEstimation:
    def test_delay_estimate_close_to_truth(self, path, all_reports, congested_observation):
        verifier = Verifier(path)
        verifier.add_reports(all_reports)
        performance = verifier.estimate_domain("X")
        truth = congested_observation.truth_for("X")
        assert performance.delay_sample_count > 50
        true_median = truth.delay_quantiles([0.5])[0.5]
        assert performance.delay_quantile(0.5) == pytest.approx(true_median, rel=0.2)

    def test_loss_exactly_computed(self, path, all_reports, congested_observation):
        verifier = Verifier(path)
        verifier.add_reports(all_reports)
        performance = verifier.estimate_domain("X")
        truth = congested_observation.truth_for("X")
        assert performance.offered_packets == truth.offered_packets
        assert performance.lost_packets == len(truth.lost)
        assert performance.loss_rate == pytest.approx(truth.loss_rate)

    def test_healthy_domain_shows_no_loss(self, path, all_reports, congested_observation):
        verifier = Verifier(path)
        verifier.add_reports(all_reports)
        performance = verifier.estimate_domain("L")
        assert performance.lost_packets == 0
        assert performance.loss_rate == 0.0

    def test_granularity_reported(self, path, all_reports):
        verifier = Verifier(path)
        verifier.add_reports(all_reports)
        performance = verifier.estimate_domain("X")
        assert performance.loss_granularity
        assert performance.mean_loss_granularity > 0

    def test_stub_domain_rejected(self, path, all_reports):
        verifier = Verifier(path)
        verifier.add_reports(all_reports)
        with pytest.raises(ValueError):
            verifier.estimate_domain("S")

    def test_estimate_via_neighbors(self, path, all_reports, congested_observation):
        verifier = Verifier(path)
        verifier.add_reports(all_reports)
        independent = verifier.estimate_domain_via_neighbors("X")
        truth = congested_observation.truth_for("X")
        assert independent is not None
        # The neighbor-based estimate includes two healthy inter-domain links,
        # so it slightly exceeds the domain's own contribution but stays close.
        true_median = truth.delay_quantiles([0.5])[0.5]
        assert independent.delay_quantile(0.5) >= true_median
        assert independent.delay_quantile(0.5) == pytest.approx(true_median, rel=0.3)

    def test_missing_reports_give_empty_estimates(self, path):
        verifier = Verifier(path)
        performance = verifier.estimate_domain("X")
        assert performance.delay_sample_count == 0
        assert performance.offered_packets == 0
        assert performance.delay_quantiles == {}

    def test_sample_receipt_for_unknown_hop_is_none(self, path):
        assert Verifier(path).sample_receipt_for(4) is None


class TestVerifierConsistency:
    def test_honest_reports_are_consistent(self, path, all_reports):
        verifier = Verifier(path)
        verifier.add_reports(all_reports)
        assert verifier.check_consistency() == []

    def test_verify_domain_accepts_honest_domain(self, path, all_reports):
        verifier = Verifier(path)
        verifier.add_reports(all_reports)
        result = verifier.verify_domain("X")
        assert result.accepted
        assert result.claimed.loss_rate > 0
        assert result.independent is not None

    def test_partial_receipts_skip_missing_links(self, path, all_reports):
        verifier = Verifier(path)
        # Only domain X's receipts: no link has both ends, nothing to check.
        verifier.add_reports({hop: all_reports[hop] for hop in (4, 5)})
        assert verifier.check_consistency() == []

    def test_add_reports_accepts_iterable(self, path, all_reports):
        verifier = Verifier(path)
        verifier.add_reports(list(all_reports.values()))
        assert verifier.estimate_domain("X").offered_packets > 0
