"""Unit tests for repro.net.hashing."""

from __future__ import annotations

import pytest

from repro.net.hashing import (
    MASK32,
    MASK64,
    PacketDigester,
    bob_hash,
    combine64,
    fnv1a_64,
    rate_for_threshold,
    sample_function,
    splitmix64,
    threshold_for_rate,
)
from tests.conftest import make_packet


class TestBobHash:
    def test_deterministic(self):
        assert bob_hash(b"hello world") == bob_hash(b"hello world")

    def test_initval_changes_output(self):
        assert bob_hash(b"hello", initval=0) != bob_hash(b"hello", initval=1)

    def test_different_inputs_differ(self):
        assert bob_hash(b"packet-a") != bob_hash(b"packet-b")

    def test_output_is_32_bit(self):
        for data in (b"", b"x", b"a" * 11, b"a" * 12, b"a" * 100):
            value = bob_hash(data)
            assert 0 <= value <= MASK32

    def test_empty_input_allowed(self):
        assert isinstance(bob_hash(b""), int)

    def test_length_sensitivity(self):
        # Same prefix, different length -> different hash (length is mixed in).
        assert bob_hash(b"aaaa") != bob_hash(b"aaaaa")

    def test_negative_initval_rejected(self):
        with pytest.raises(ValueError):
            bob_hash(b"data", initval=-1)

    def test_block_boundary_inputs(self):
        # Inputs straddling the 12-byte block boundary exercise both the block
        # loop and the tail handling.
        values = {bob_hash(bytes(range(n))) for n in (11, 12, 13, 23, 24, 25)}
        assert len(values) == 6


class TestAuxiliaryHashes:
    def test_fnv_is_64_bit_and_deterministic(self):
        value = fnv1a_64(b"some header bytes")
        assert 0 <= value <= MASK64
        assert value == fnv1a_64(b"some header bytes")

    def test_fnv_differs_on_input(self):
        assert fnv1a_64(b"a") != fnv1a_64(b"b")

    def test_splitmix_is_64_bit(self):
        assert 0 <= splitmix64(12345) <= MASK64

    def test_splitmix_bijective_behaviour_on_small_set(self):
        outputs = {splitmix64(value) for value in range(1000)}
        assert len(outputs) == 1000

    def test_combine64_order_sensitive(self):
        assert combine64(1, 2) != combine64(2, 1)

    def test_sample_function_uses_both_inputs(self):
        assert sample_function(10, 20) != sample_function(10, 21)
        assert sample_function(10, 20) != sample_function(11, 20)

    def test_sample_function_range(self):
        assert 0 <= sample_function(123456789, 987654321) <= MASK64


class TestThresholds:
    def test_rate_one_means_everything_passes(self):
        assert threshold_for_rate(1.0) == 0

    def test_rate_zero_means_nothing_passes(self):
        assert threshold_for_rate(0.0) == MASK64

    def test_round_trip(self):
        for rate in (0.001, 0.01, 0.1, 0.5, 0.9):
            assert rate_for_threshold(threshold_for_rate(rate)) == pytest.approx(
                rate, rel=1e-9
            )

    def test_monotone(self):
        assert threshold_for_rate(0.01) > threshold_for_rate(0.1)

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            threshold_for_rate(1.5)
        with pytest.raises(ValueError):
            threshold_for_rate(-0.1)

    def test_invalid_threshold_rejected(self):
        with pytest.raises(ValueError):
            rate_for_threshold(-1)
        with pytest.raises(ValueError):
            rate_for_threshold(MASK64 + 1)

    def test_empirical_exceedance_rate_close_to_nominal(self):
        # Digests drawn via splitmix64 should exceed the threshold at roughly
        # the configured rate.
        rate = 0.05
        threshold = threshold_for_rate(rate)
        count = sum(1 for value in range(20000) if splitmix64(value) > threshold)
        assert count == pytest.approx(rate * 20000, rel=0.2)


class TestPacketDigester:
    def test_same_packet_same_digest(self):
        digester = PacketDigester()
        packet = make_packet(uid=1)
        clone = make_packet(uid=99)  # same headers/payload, different uid
        assert digester.digest(packet) == digester.digest(clone)

    def test_uid_not_part_of_digest(self):
        digester = PacketDigester()
        assert digester.digest(make_packet(uid=1)) == digester.digest(make_packet(uid=2))

    def test_header_change_changes_digest(self):
        digester = PacketDigester()
        assert digester.digest(make_packet(src_port=1000)) != digester.digest(
            make_packet(src_port=1001)
        )

    def test_payload_prefix_included(self):
        digester = PacketDigester(payload_prefix=8)
        a = make_packet(payload=b"AAAAAAAA-tail")
        b = make_packet(payload=b"BBBBBBBB-tail")
        assert digester.digest(a) != digester.digest(b)

    def test_payload_beyond_prefix_ignored(self):
        digester = PacketDigester(payload_prefix=4)
        a = make_packet(payload=b"SAMEtail1")
        b = make_packet(payload=b"SAMEtail2")
        assert digester.digest(a) == digester.digest(b)

    def test_seed_changes_digest(self):
        packet = make_packet()
        assert PacketDigester(seed=0).digest(packet) != PacketDigester(seed=1).digest(packet)

    def test_digest_is_64_bit(self):
        value = PacketDigester().digest(make_packet())
        assert 0 <= value <= MASK64

    def test_digest_memoization_consistent(self):
        digester = PacketDigester()
        packet = make_packet()
        first = digester.digest(packet)
        second = digester.digest(packet)
        assert first == second

    def test_callable_interface(self):
        digester = PacketDigester()
        packet = make_packet()
        assert digester(packet) == digester.digest(packet)
