"""Unit tests for repro.net.link."""

from __future__ import annotations

import pytest

from repro.net.link import InterDomainLink, LinkSpec


class TestLinkSpec:
    def test_defaults_are_sane(self):
        spec = LinkSpec()
        assert spec.max_diff > 0
        assert spec.nominal_delay < spec.max_diff

    def test_negative_values_rejected(self):
        with pytest.raises(ValueError):
            LinkSpec(max_diff=-1.0)
        with pytest.raises(ValueError):
            LinkSpec(nominal_delay=-1.0)


class TestInterDomainLink:
    def test_healthy_link_delivers_everything(self):
        link = InterDomainLink(seed=1)
        results = [link.transfer(float(index)) for index in range(100)]
        assert all(result is not None for result in results)

    def test_healthy_link_applies_nominal_delay(self):
        link = InterDomainLink(spec=LinkSpec(nominal_delay=200e-6), seed=1)
        assert link.transfer(1.0) == pytest.approx(1.0 + 200e-6)

    def test_is_healthy_flags(self):
        assert InterDomainLink().is_healthy
        assert not InterDomainLink(loss_rate=0.1).is_healthy
        assert not InterDomainLink(
            spec=LinkSpec(max_diff=1e-3, nominal_delay=100e-6), excess_delay=5e-3
        ).is_healthy

    def test_lossy_link_drops_roughly_at_rate(self):
        link = InterDomainLink(loss_rate=0.3, seed=2)
        outcomes = [link.transfer(0.0) for _ in range(5000)]
        drop_fraction = sum(1 for outcome in outcomes if outcome is None) / 5000
        assert drop_fraction == pytest.approx(0.3, abs=0.05)

    def test_excess_delay_added(self):
        link = InterDomainLink(
            spec=LinkSpec(nominal_delay=100e-6), excess_delay=2e-3, seed=3
        )
        assert link.transfer(0.0) == pytest.approx(100e-6 + 2e-3)

    def test_jitter_never_negative_delay(self):
        link = InterDomainLink(spec=LinkSpec(nominal_delay=50e-6), jitter_std=1e-4, seed=4)
        for index in range(200):
            arrival = link.transfer(float(index))
            assert arrival is not None
            assert arrival >= index + 50e-6

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            InterDomainLink(loss_rate=1.5)
        with pytest.raises(ValueError):
            InterDomainLink(excess_delay=-1.0)
        with pytest.raises(ValueError):
            InterDomainLink(jitter_std=-1.0)
