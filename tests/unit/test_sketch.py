"""Unit tests for the mergeable quantile sketch (DelayQuantileSketch)."""

from __future__ import annotations

import math
import pickle

import numpy as np
import pytest

from repro.analysis.sketch import DEFAULT_SKETCH_SIZE, DelayQuantileSketch

RNG = np.random.default_rng(20260807)

QUANTILES = (0.0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1.0)


def _error_bound(sorted_samples: np.ndarray, quantile: float, alpha: float) -> float:
    """The documented bound: alpha * max|bracketing order statistics|."""
    rank = quantile * (len(sorted_samples) - 1)
    low = sorted_samples[int(math.floor(rank))]
    high = sorted_samples[int(math.ceil(rank))]
    return alpha * max(abs(low), abs(high))


def assert_within_bound(
    sketch: DelayQuantileSketch, samples: np.ndarray, quantiles=QUANTILES
) -> None:
    ordered = np.sort(samples)
    estimates = sketch.quantiles(quantiles)
    for quantile in quantiles:
        exact = float(np.quantile(ordered, quantile))
        bound = _error_bound(ordered, quantile, sketch.relative_accuracy)
        assert abs(estimates[quantile] - exact) <= bound * (1 + 1e-9) + 1e-18, (
            f"q={quantile}: |{estimates[quantile]} - {exact}| > {bound}"
        )


class TestAccuracy:
    @pytest.mark.parametrize("size", [8, 64, DEFAULT_SKETCH_SIZE])
    def test_quantiles_within_documented_bound(self, size):
        samples = RNG.lognormal(-6.5, 1.0, 4000)
        sketch = DelayQuantileSketch(size, samples)
        assert sketch.relative_accuracy == 1.0 / (size + 1)
        assert_within_bound(sketch, samples)

    def test_mixed_signs_and_zeros(self):
        samples = np.concatenate(
            [RNG.normal(0.0, 1e-3, 2000), np.zeros(37), [-5e-2, 5e-2]]
        )
        sketch = DelayQuantileSketch(512, samples)
        assert_within_bound(sketch, samples)

    def test_single_sample(self):
        sketch = DelayQuantileSketch(512, [3.5e-3])
        estimates = sketch.quantiles((0.0, 0.5, 1.0))
        for value in estimates.values():
            assert value == pytest.approx(3.5e-3, rel=sketch.relative_accuracy)

    def test_extreme_quantiles_clamp_to_tracked_min_max(self):
        samples = RNG.lognormal(-6, 1, 500)
        sketch = DelayQuantileSketch(64, samples)
        alpha = sketch.relative_accuracy
        low, high = float(samples.min()), float(samples.max())
        estimates = sketch.quantiles((0.0, 1.0))
        assert low <= estimates[0.0] <= low * (1 + alpha)
        assert high * (1 - alpha) <= estimates[1.0] <= high

    def test_value_bounds_contain_the_exact_quantile(self):
        samples = RNG.lognormal(-6, 1.2, 3000)
        sketch = DelayQuantileSketch(128, samples)
        for quantile, estimate in sketch.quantiles((0.5, 0.9, 0.99)).items():
            lower, upper = sketch.value_bounds(estimate)
            assert lower <= float(np.quantile(samples, quantile)) <= upper

    def test_empty_sketch(self):
        sketch = DelayQuantileSketch()
        assert len(sketch) == 0
        assert sketch.quantiles((0.5, 0.9)) == {}
        assert sketch.bucket_count == 0


class TestMergeAndDeterminism:
    def test_merge_equals_one_shot_extend(self):
        samples = RNG.lognormal(-6, 1, 900)
        parts = np.array_split(samples, 7)
        merged = DelayQuantileSketch(256)
        for part in parts:
            merged.merge(DelayQuantileSketch(256, part))
        one_shot = DelayQuantileSketch(256, samples)
        assert merged.state_digest() == one_shot.state_digest()
        assert merged.quantiles(QUANTILES) == one_shot.quantiles(QUANTILES)

    def test_merge_is_commutative_byte_for_byte(self):
        a = DelayQuantileSketch(128, RNG.lognormal(-6, 1, 200))
        b = DelayQuantileSketch(128, RNG.lognormal(-7, 2, 300))
        ab = DelayQuantileSketch.from_state(a.to_state()).merge(b)
        ba = DelayQuantileSketch.from_state(b.to_state()).merge(a)
        assert ab.state_digest() == ba.state_digest()

    def test_extend_order_never_matters(self):
        samples = RNG.normal(1e-3, 3e-4, 400)
        forward = DelayQuantileSketch(512, samples)
        backward = DelayQuantileSketch(512, samples[::-1])
        sorted_in = DelayQuantileSketch(512, np.sort(samples))
        assert (
            forward.state_digest()
            == backward.state_digest()
            == sorted_in.state_digest()
        )

    def test_merge_rejects_mismatched_size(self):
        with pytest.raises(ValueError, match="different size budgets"):
            DelayQuantileSketch(128).merge(DelayQuantileSketch(256))

    def test_merge_rejects_non_sketch(self):
        with pytest.raises(ValueError, match="DelayQuantileSketch"):
            DelayQuantileSketch(128).merge([1.0, 2.0])

    def test_merge_with_empty_is_identity(self):
        samples = RNG.lognormal(-6, 1, 100)
        sketch = DelayQuantileSketch(512, samples)
        before = sketch.state_digest()
        sketch.merge(DelayQuantileSketch(512))
        assert sketch.state_digest() == before
        empty = DelayQuantileSketch(512)
        empty.merge(DelayQuantileSketch(512, samples))
        assert empty.state_digest() == before

    def test_bucket_count_is_independent_of_sample_count(self):
        base = RNG.lognormal(-6, 0.5, 500)
        small = DelayQuantileSketch(512, base)
        large = DelayQuantileSketch(512, np.tile(base, 50))
        assert large.bucket_count == small.bucket_count
        assert len(large) == 50 * len(small)


class TestSerialization:
    def test_state_round_trip_is_bit_exact(self):
        samples = np.concatenate(
            [RNG.lognormal(-6, 1.5, 800), -RNG.lognormal(-8, 1, 100), np.zeros(5)]
        )
        sketch = DelayQuantileSketch(256, samples)
        clone = DelayQuantileSketch.from_state(sketch.to_state())
        assert clone.state_digest() == sketch.state_digest()
        assert clone.quantiles(QUANTILES) == sketch.quantiles(QUANTILES)
        assert len(clone) == len(sketch)

    def test_state_is_json_safe(self):
        import json

        sketch = DelayQuantileSketch(64, RNG.lognormal(-6, 1, 50))
        payload = json.loads(json.dumps(sketch.to_state()))
        assert DelayQuantileSketch.from_state(payload).state_digest() == (
            sketch.state_digest()
        )

    def test_pickle_preserves_digest(self):
        sketch = DelayQuantileSketch(512, RNG.lognormal(-6, 1, 200))
        assert pickle.loads(pickle.dumps(sketch)).state_digest() == (
            sketch.state_digest()
        )

    def test_from_state_rejects_bad_version(self):
        state = DelayQuantileSketch(64, [1.0]).to_state()
        state["version"] = 99
        with pytest.raises(ValueError, match="version"):
            DelayQuantileSketch.from_state(state)

    def test_from_state_rejects_inconsistent_count(self):
        state = DelayQuantileSketch(64, [1.0, 2.0]).to_state()
        state["count"] = 5
        with pytest.raises(ValueError, match="does not match"):
            DelayQuantileSketch.from_state(state)

    def test_from_state_rejects_non_positive_bucket_counts(self):
        state = DelayQuantileSketch(64, [1.0]).to_state()
        (key,) = state["positive"]
        state["positive"][key] = 0
        with pytest.raises(ValueError, match="non-positive"):
            DelayQuantileSketch.from_state(state)


class TestValidation:
    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), float("-inf")])
    def test_rejects_non_finite_samples(self, bad):
        with pytest.raises(ValueError, match="finite"):
            DelayQuantileSketch(512, [1e-3, bad])
        with pytest.raises(ValueError, match="finite"):
            DelayQuantileSketch(512).extend([bad])

    def test_rejects_tiny_size(self):
        with pytest.raises(ValueError, match="size"):
            DelayQuantileSketch(4)

    def test_rejects_non_int_size(self):
        with pytest.raises(ValueError, match="int"):
            DelayQuantileSketch(512.0)

    def test_rejects_bad_quantile(self):
        with pytest.raises(ValueError):
            DelayQuantileSketch(512, [1.0]).quantiles([1.5])
