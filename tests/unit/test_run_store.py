"""Unit tests for the durable campaign run store."""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.api.spec import CampaignSpec, ExperimentSpec, TrafficSpec
from repro.store import (
    RECORDS_FILE,
    SPEC_FILE,
    RunStore,
    RunStoreError,
    SpecMismatchError,
    stable_json,
)


@pytest.fixture()
def spec() -> CampaignSpec:
    return CampaignSpec(
        name="store-test",
        intervals=3,
        cell=ExperimentSpec(traffic=TrafficSpec(workload=None, packet_count=400)),
    )


def _record(spec: CampaignSpec, interval: int) -> dict:
    return {
        "version": 1,
        "interval": interval,
        "spec_hash": spec.spec_hash(),
        "seed": spec.interval_seed(interval),
        "receipts_digest": "d" * 32,
        "result_digest": "e" * 32,
        "estimates": {},
        "verdicts": {},
        "delay_samples": {},
    }


class TestRunStoreLifecycle:
    def test_create_open_round_trip(self, tmp_path, spec):
        store = RunStore.create(tmp_path / "run", spec)
        reopened = RunStore.open(tmp_path / "run")
        assert reopened.spec() == spec
        assert reopened.spec_hash == spec.spec_hash()
        assert reopened.record_count == 0
        assert not reopened.is_complete

    def test_create_refuses_existing_store(self, tmp_path, spec):
        RunStore.create(tmp_path / "run", spec)
        with pytest.raises(RunStoreError, match="already holds a run store"):
            RunStore.create(tmp_path / "run", spec)

    def test_open_requires_a_store(self, tmp_path):
        with pytest.raises(RunStoreError, match="not a run store"):
            RunStore.open(tmp_path / "nowhere")

    def test_open_rejects_edited_spec(self, tmp_path, spec):
        RunStore.create(tmp_path / "run", spec)
        spec_path = tmp_path / "run" / SPEC_FILE
        payload = json.loads(spec_path.read_text())
        payload["spec"]["intervals"] = 99
        spec_path.write_text(stable_json(payload))
        with pytest.raises(SpecMismatchError, match="has been edited"):
            RunStore.open(tmp_path / "run")

    def test_open_rejects_unknown_format(self, tmp_path, spec):
        RunStore.create(tmp_path / "run", spec)
        spec_path = tmp_path / "run" / SPEC_FILE
        payload = json.loads(spec_path.read_text())
        payload["format"] = 999
        spec_path.write_text(stable_json(payload))
        with pytest.raises(RunStoreError, match="store format"):
            RunStore.open(tmp_path / "run")

    def test_validate_spec_mismatch(self, tmp_path, spec):
        store = RunStore.create(tmp_path / "run", spec)
        other = dataclasses.replace(spec, intervals=5)
        with pytest.raises(SpecMismatchError):
            store.validate_spec(other)
        store.validate_spec(spec)  # identity passes


class TestRunStoreRecords:
    def test_append_and_read_back(self, tmp_path, spec):
        store = RunStore.create(tmp_path / "run", spec)
        for interval in range(3):
            store.append(_record(spec, interval))
        assert store.record_count == 3
        assert store.is_complete
        assert [record["interval"] for record in store.records()] == [0, 1, 2]
        # one canonical JSON line per record, newline-terminated
        lines = (tmp_path / "run" / RECORDS_FILE).read_text().splitlines()
        assert len(lines) == 3
        assert all(json.loads(line)["spec_hash"] == spec.spec_hash() for line in lines)

    def test_append_rejects_out_of_order(self, tmp_path, spec):
        store = RunStore.create(tmp_path / "run", spec)
        with pytest.raises(RunStoreError, match="interval 0"):
            store.append(_record(spec, 1))

    def test_append_rejects_duplicate(self, tmp_path, spec):
        store = RunStore.create(tmp_path / "run", spec)
        store.append(_record(spec, 0))
        with pytest.raises(RunStoreError, match="interval 1"):
            store.append(_record(spec, 0))

    def test_append_rejects_foreign_spec_hash(self, tmp_path, spec):
        store = RunStore.create(tmp_path / "run", spec)
        record = _record(spec, 0)
        record["spec_hash"] = "0" * 32
        with pytest.raises(SpecMismatchError):
            store.append(record)

    def test_append_is_atomic_no_temp_left_behind(self, tmp_path, spec):
        store = RunStore.create(tmp_path / "run", spec)
        store.append(_record(spec, 0))
        leftovers = [path.name for path in (tmp_path / "run").iterdir()]
        assert sorted(leftovers) == [RECORDS_FILE, SPEC_FILE]

    def test_append_bytes_are_append_only(self, tmp_path, spec):
        store = RunStore.create(tmp_path / "run", spec)
        store.append(_record(spec, 0))
        first = (tmp_path / "run" / RECORDS_FILE).read_bytes()
        store.append(_record(spec, 1))
        second = (tmp_path / "run" / RECORDS_FILE).read_bytes()
        assert second.startswith(first)

    def test_readers_ignore_torn_tail_without_mutating(self, tmp_path, spec):
        """Reading a store mid-append must neither fail nor rewrite it."""
        store = RunStore.create(tmp_path / "run", spec)
        store.append(_record(spec, 0))
        with open(tmp_path / "run" / RECORDS_FILE, "ab") as handle:
            handle.write(b'{"interval": 1, "spec_ha')  # in-flight append
        dirty = (tmp_path / "run" / RECORDS_FILE).read_bytes()
        reader = RunStore.open(tmp_path / "run")
        assert reader.record_count == 1  # only the committed record
        assert (tmp_path / "run" / RECORDS_FILE).read_bytes() == dirty  # untouched

    def test_repair_truncates_torn_tail_line(self, tmp_path, spec):
        """The writer's repair drops a newline-less tail before appending."""
        store = RunStore.create(tmp_path / "run", spec)
        store.append(_record(spec, 0))
        committed = (tmp_path / "run" / RECORDS_FILE).read_bytes()
        with open(tmp_path / "run" / RECORDS_FILE, "ab") as handle:
            handle.write(b'{"interval": 1, "spec_ha')  # torn write
        reopened = RunStore.open(tmp_path / "run")
        reopened.repair_torn_tail()
        assert reopened.record_count == 1
        assert (tmp_path / "run" / RECORDS_FILE).read_bytes() == committed
        reopened.append(_record(spec, 1))  # resumes cleanly after repair

    def test_repair_removes_fully_torn_first_record(self, tmp_path, spec):
        store = RunStore.create(tmp_path / "run", spec)
        (store.path / RECORDS_FILE).write_bytes(b'{"interval": 0')  # torn write
        reopened = RunStore.open(tmp_path / "run")
        reopened.repair_torn_tail()
        assert reopened.record_count == 0
        # byte-shape matches a store that never appended at all
        assert not (tmp_path / "run" / RECORDS_FILE).exists()


class TestRunStoreDigest:
    def test_digest_reflects_content(self, tmp_path, spec):
        a = RunStore.create(tmp_path / "a", spec)
        b = RunStore.create(tmp_path / "b", spec)
        assert a.digest() == b.digest()
        a.append(_record(spec, 0))
        assert a.digest() != b.digest()
        b.append(_record(spec, 0))
        assert a.digest() == b.digest()

    def test_summary_round_trip_and_digest(self, tmp_path, spec):
        store = RunStore.create(tmp_path / "run", spec)
        assert store.summary() is None
        before = store.digest()
        store.write_summary({"intervals": 3, "domains": {}})
        assert store.summary() == {"intervals": 3, "domains": {}}
        assert store.digest() != before
