"""Unit tests for repro.core.sampling (Algorithm 1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.receipts import PathID
from repro.core.sampling import DEFAULT_MARKER_RATE, DelaySampler, SamplerConfig
from repro.net.hashing import MASK64, threshold_for_rate


@pytest.fixture()
def path_id(prefix_pair) -> PathID:
    return PathID(
        prefix_pair=prefix_pair, reporting_hop=4, previous_hop=3, next_hop=5, max_diff=1e-3
    )


def synthetic_digests(count: int, seed: int = 0) -> list[int]:
    rng = np.random.default_rng(seed)
    return [int(value) for value in rng.integers(0, MASK64, size=count, dtype=np.uint64)]


def drive(sampler: DelaySampler, digests: list[int], start: float = 0.0) -> None:
    for index, digest in enumerate(digests):
        sampler.observe(digest, start + index * 1e-5)


class TestSamplerConfig:
    def test_threshold_subtracts_marker_rate(self):
        config = SamplerConfig(sampling_rate=0.05, marker_rate=0.01)
        assert config.sampling_threshold == threshold_for_rate(0.04)

    def test_target_at_or_below_marker_rate_degrades_to_markers_only(self):
        config = SamplerConfig(sampling_rate=0.001, marker_rate=0.001)
        assert config.sampling_threshold == MASK64

    def test_default_marker_rate(self):
        assert SamplerConfig().marker_rate == DEFAULT_MARKER_RATE

    def test_validation(self):
        with pytest.raises(ValueError):
            SamplerConfig(sampling_rate=0.0)
        with pytest.raises(ValueError):
            SamplerConfig(marker_rate=1.5)


class TestDelaySampler:
    def test_marker_always_sampled(self, path_id):
        sampler = DelaySampler(SamplerConfig(sampling_rate=0.01, marker_rate=0.01))
        marker_digest = MASK64  # above any threshold
        assert sampler.observe(marker_digest, 1.0) is True
        receipt = sampler.receipt(path_id)
        assert marker_digest in receipt.pkt_ids

    def test_non_marker_buffered_until_marker(self, path_id):
        sampler = DelaySampler(SamplerConfig(sampling_rate=1.0, marker_rate=0.01))
        low_digest = 123  # below the marker threshold
        assert sampler.observe(low_digest, 1.0) is False
        assert sampler.pending_buffer_size == 1
        # Nothing reported before a marker arrives.
        assert len(sampler.receipt(path_id, reset=False)) == 0
        sampler.observe(MASK64, 2.0)
        assert sampler.pending_buffer_size == 0
        receipt = sampler.receipt(path_id)
        assert low_digest in receipt.pkt_ids

    def test_buffer_emptied_on_marker_even_if_not_sampled(self, path_id):
        # With the smallest sampling budget, buffered packets are discarded at
        # the marker rather than reported.
        sampler = DelaySampler(SamplerConfig(sampling_rate=0.001, marker_rate=0.001))
        for index in range(100):
            sampler.observe(1000 + index, index * 1e-5)
        assert sampler.pending_buffer_size == 100
        sampler.observe(MASK64, 1.0)
        assert sampler.pending_buffer_size == 0
        receipt = sampler.receipt(path_id)
        # Only the marker itself is guaranteed to be sampled.
        assert MASK64 in receipt.pkt_ids
        assert len(receipt) <= 5

    def test_sampling_rate_approximately_respected(self, path_id):
        config = SamplerConfig(sampling_rate=0.05, marker_rate=0.005)
        sampler = DelaySampler(config)
        digests = synthetic_digests(40_000, seed=1)
        drive(sampler, digests)
        receipt = sampler.receipt(path_id)
        measured = len(receipt) / sampler.observed_packets
        assert measured == pytest.approx(0.05, rel=0.3)

    def test_sampled_set_keyed_by_marker_not_by_packet_alone(self, path_id):
        # The same packet digest can be sampled under one future marker and
        # not under another: the decision is not a function of the packet
        # alone — the essence of bias resistance.
        config = SamplerConfig(sampling_rate=0.3, marker_rate=0.01)
        probe = 424242

        def sampled_under(marker: int) -> bool:
            sampler = DelaySampler(config)
            sampler.observe(probe, 0.0)
            sampler.observe(marker, 1e-5)
            return probe in sampler.receipt(path_id).pkt_ids

        markers = [MASK64 - offset for offset in range(0, 4000, 40)]
        outcomes = {sampled_under(marker) for marker in markers}
        assert outcomes == {True, False}

    def test_receipt_reset_behaviour(self, path_id):
        sampler = DelaySampler(SamplerConfig(sampling_rate=1.0, marker_rate=0.01))
        sampler.observe(5, 0.0)
        sampler.observe(MASK64, 1e-5)
        first = sampler.receipt(path_id, reset=True)
        assert len(first) == 2
        assert len(sampler.receipt(path_id)) == 0

    def test_receipt_carries_threshold(self, path_id):
        config = SamplerConfig(sampling_rate=0.02, marker_rate=0.005)
        sampler = DelaySampler(config)
        receipt = sampler.receipt(path_id)
        assert receipt.sampling_threshold == config.sampling_threshold

    def test_counters(self):
        sampler = DelaySampler(SamplerConfig(sampling_rate=0.5, marker_rate=0.01))
        digests = synthetic_digests(5000, seed=2)
        drive(sampler, digests)
        assert sampler.observed_packets == 5000
        assert sampler.marker_count > 0
        assert sampler.max_buffer_occupancy > 0

    def test_effective_sampling_rate_close_to_target(self):
        config = SamplerConfig(sampling_rate=0.05, marker_rate=0.005)
        assert DelaySampler(config).effective_sampling_rate == pytest.approx(0.05, rel=0.02)

    def test_invalid_digest_rejected(self):
        sampler = DelaySampler()
        with pytest.raises(ValueError):
            sampler.observe(-1, 0.0)
        with pytest.raises(ValueError):
            sampler.observe(MASK64 + 1, 0.0)

    def test_repr_contains_rates(self):
        assert "sampling_rate" in repr(DelaySampler())


class TestNestingProperty:
    def test_lower_threshold_samples_superset(self, path_id):
        """Section 5.2: a HOP with a lower sigma samples a superset."""
        digests = synthetic_digests(30_000, seed=3)
        coarse = DelaySampler(SamplerConfig(sampling_rate=0.01, marker_rate=0.005))
        fine = DelaySampler(SamplerConfig(sampling_rate=0.05, marker_rate=0.005))
        drive(coarse, digests)
        drive(fine, digests)
        coarse_ids = coarse.receipt(path_id).pkt_ids
        fine_ids = fine.receipt(path_id).pkt_ids
        assert coarse_ids <= fine_ids
        assert len(fine_ids) > len(coarse_ids)

    def test_equal_thresholds_sample_identically(self, path_id):
        digests = synthetic_digests(20_000, seed=4)
        first = DelaySampler(SamplerConfig(sampling_rate=0.02, marker_rate=0.005))
        second = DelaySampler(SamplerConfig(sampling_rate=0.02, marker_rate=0.005))
        drive(first, digests)
        drive(second, digests, start=100.0)  # different clocks, same packets
        assert first.receipt(path_id).pkt_ids == second.receipt(path_id).pkt_ids

    def test_markers_common_across_sampling_rates(self, path_id):
        digests = synthetic_digests(20_000, seed=5)
        low = DelaySampler(SamplerConfig(sampling_rate=0.001, marker_rate=0.005))
        high = DelaySampler(SamplerConfig(sampling_rate=0.1, marker_rate=0.005))
        drive(low, digests)
        drive(high, digests)
        assert low.marker_count == high.marker_count
