"""Unit tests for the adversary models."""

from __future__ import annotations

import numpy as np
import pytest

from repro.adversary.bias import BiasedTreatmentAttack
from repro.adversary.lying import LyingDomainAgent
from repro.adversary.marker_drop import MarkerDropAttack, marker_exposure_rate
from repro.baselines.trajectory_sampling import TrajectorySamplingPlusPlus
from repro.baselines.vpm_adapter import VPMProtocolAdapter
from repro.core.aggregation import AggregatorConfig
from repro.core.hop import HOPConfig
from repro.core.sampling import SamplerConfig
from repro.simulation.scenario import PathScenario, SegmentCondition
from repro.traffic.flows import FlowGeneratorConfig
from repro.traffic.loss_models import BernoulliLossModel
from repro.traffic.trace import SyntheticTrace, TraceConfig


TEST_CONFIG = HOPConfig(
    sampler=SamplerConfig(sampling_rate=0.2, marker_rate=0.02),
    aggregator=AggregatorConfig(expected_aggregate_size=200),
)


@pytest.fixture(scope="module")
def trace_packets(prefix_pair):
    config = TraceConfig(
        packet_count=2000, packets_per_second=100_000.0, flow_config=FlowGeneratorConfig()
    )
    return SyntheticTrace(config=config, prefix_pair=prefix_pair, seed=51).packets()


class TestBiasedTreatmentAttack:
    def test_predictable_protocol_yields_exact_predicate(self, trace_packets, digester):
        protocol = TrajectorySamplingPlusPlus(sampling_rate=0.1)
        attack = BiasedTreatmentAttack(digester=digester)
        predicate = attack.predicate_against(protocol)
        for packet in trace_packets[:200]:
            assert predicate(packet) == protocol.measurement_predicate(
                digester.digest(packet)
            )

    def test_unpredictable_protocol_gets_blind_guess(self, trace_packets, digester):
        attack = BiasedTreatmentAttack(digester=digester, guess_rate=0.1)
        predicate = attack.predicate_against(VPMProtocolAdapter())
        fraction = np.mean([predicate(packet) for packet in trace_packets])
        assert fraction == pytest.approx(0.1, abs=0.05)

    def test_predictable_predicate_rejects_unpredictable_protocol(self, digester):
        attack = BiasedTreatmentAttack(digester=digester)
        with pytest.raises(ValueError):
            attack.predictable_predicate(VPMProtocolAdapter())

    def test_guess_rate_validation(self):
        with pytest.raises(ValueError):
            BiasedTreatmentAttack(guess_rate=0.0)


class TestLyingDomainAgent:
    def test_requires_transit_domain(self, path):
        with pytest.raises(ValueError):
            LyingDomainAgent("S", path)

    def test_fabricated_egress_hides_loss(self, path, trace_packets):
        scenario = PathScenario(seed=52)
        scenario.configure_domain(
            "X", SegmentCondition(loss_model=BernoulliLossModel(0.3, seed=53))
        )
        observation = scenario.run(trace_packets)
        liar = LyingDomainAgent("X", path, config=TEST_CONFIG, claimed_delay=0.5e-3)
        liar.observe(observation)
        reports = liar.reports(flush=True)
        ingress_count = sum(r.pkt_count for r in reports[4].aggregate_receipts)
        egress_count = sum(r.pkt_count for r in reports[5].aggregate_receipts)
        # The lie: the egress claims the same packet count as the ingress even
        # though 30% of the traffic was dropped inside the domain.
        assert egress_count == ingress_count
        assert observation.truth_for("X").loss_rate > 0.2

    def test_fabricated_egress_hides_delay(self, path, trace_packets):
        from repro.traffic.delay_models import ConstantDelayModel

        scenario = PathScenario(seed=54)
        scenario.configure_domain(
            "X", SegmentCondition(delay_model=ConstantDelayModel(20e-3))
        )
        observation = scenario.run(trace_packets)
        liar = LyingDomainAgent("X", path, config=TEST_CONFIG, claimed_delay=0.5e-3)
        liar.observe(observation)
        reports = liar.reports(flush=True)
        ingress_samples = {r.pkt_id: r.time for rc in reports[4].sample_receipts for r in rc.samples}
        egress_samples = {r.pkt_id: r.time for rc in reports[5].sample_receipts for r in rc.samples}
        common = set(ingress_samples) & set(egress_samples)
        assert common
        claimed = [egress_samples[pkt] - ingress_samples[pkt] for pkt in common]
        assert np.mean(claimed) == pytest.approx(0.5e-3, abs=1e-6)

    def test_fabricated_report_uses_egress_path_id(self, path, trace_packets):
        scenario = PathScenario(seed=55)
        observation = scenario.run(trace_packets)
        liar = LyingDomainAgent("X", path, config=TEST_CONFIG)
        liar.observe(observation)
        reports = liar.reports(flush=True)
        for receipt in reports[5].sample_receipts + reports[5].aggregate_receipts:
            assert receipt.path_id.reporting_hop == 5
        assert liar.last_fabricated_report is reports[5]


class TestMarkerDropAttack:
    def test_is_marker_matches_threshold(self, trace_packets, digester):
        attack = MarkerDropAttack(digester=digester, marker_rate=0.05)
        markers = [packet for packet in trace_packets if attack.is_marker(packet)]
        assert len(markers) == pytest.approx(0.05 * len(trace_packets), rel=0.5)

    def test_drop_predicate_targets_markers_only(self, trace_packets, digester):
        attack = MarkerDropAttack(digester=digester, marker_rate=0.05)
        predicate = attack.drop_predicate()
        for packet in trace_packets[:200]:
            assert predicate(packet) == attack.is_marker(packet)

    def test_exposure_rate_is_total(self, path, trace_packets, digester):
        attack = MarkerDropAttack(digester=digester, marker_rate=0.05)
        scenario = PathScenario(seed=56)
        scenario.configure_domain("X", SegmentCondition(drop_predicate=attack.drop_predicate()))
        observation = scenario.run(trace_packets)
        # Every dropped marker entered X (seen by L's egress) and never
        # reached N: the attack is fully exposed.
        assert marker_exposure_rate(observation, "X", attack) == 1.0
        assert observation.truth_for("X").lost  # some markers were dropped

    def test_exposure_requires_transit_domain(self, trace_packets, digester):
        attack = MarkerDropAttack(digester=digester)
        scenario = PathScenario(seed=57)
        observation = scenario.run(trace_packets)
        with pytest.raises(ValueError):
            marker_exposure_rate(observation, "S", attack)

    def test_validation(self):
        with pytest.raises(ValueError):
            MarkerDropAttack(marker_rate=0.0)
