"""Unit tests for the simulation substrate: engine, queueing, congestion."""

from __future__ import annotations

import numpy as np
import pytest

from repro.simulation.congestion import CongestionScenario
from repro.simulation.engine import EventScheduler
from repro.simulation.queueing import BottleneckQueue, TCPSawtoothSource, UDPBurstSource


class TestEventScheduler:
    def test_events_fire_in_time_order(self):
        scheduler = EventScheduler()
        fired: list[str] = []
        scheduler.schedule(2.0, lambda: fired.append("late"))
        scheduler.schedule(1.0, lambda: fired.append("early"))
        scheduler.run()
        assert fired == ["early", "late"]

    def test_ties_fire_in_fifo_order(self):
        scheduler = EventScheduler()
        fired: list[int] = []
        for index in range(5):
            scheduler.schedule(1.0, lambda index=index: fired.append(index))
        scheduler.run()
        assert fired == [0, 1, 2, 3, 4]

    def test_now_advances(self):
        scheduler = EventScheduler()
        scheduler.schedule(3.5, lambda: None)
        scheduler.run()
        assert scheduler.now == 3.5

    def test_schedule_in_past_rejected(self):
        scheduler = EventScheduler()
        scheduler.schedule(1.0, lambda: None)
        scheduler.run()
        with pytest.raises(ValueError):
            scheduler.schedule(0.5, lambda: None)

    def test_schedule_after(self):
        scheduler = EventScheduler()
        fired = []
        scheduler.schedule(1.0, lambda: scheduler.schedule_after(0.5, lambda: fired.append(1)))
        scheduler.run()
        assert fired == [1]
        assert scheduler.now == pytest.approx(1.5)

    def test_run_until_limit(self):
        scheduler = EventScheduler()
        fired = []
        scheduler.schedule(1.0, lambda: fired.append(1))
        scheduler.schedule(5.0, lambda: fired.append(5))
        scheduler.run(until=2.0)
        assert fired == [1]
        assert scheduler.pending_events == 1

    def test_max_events_limit(self):
        scheduler = EventScheduler()
        for index in range(10):
            scheduler.schedule(float(index), lambda: None)
        processed = scheduler.run(max_events=4)
        assert processed == 4
        assert scheduler.pending_events == 6

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            EventScheduler().schedule_after(-1.0, lambda: None)


class TestBottleneckQueue:
    def test_uncontended_delay_is_transmission_time(self):
        queue = BottleneckQueue(bandwidth_bps=8_000_000)  # 1 MB/s
        arrivals = np.array([0.0, 1.0, 2.0])
        sizes = np.array([1000.0, 1000.0, 1000.0])
        delays, stats = queue.run(arrivals, sizes, np.array([]), np.array([]))
        assert np.allclose(delays, 1000 * 8 / 8_000_000)
        assert stats.dropped_cross_packets == 0

    def test_back_to_back_arrivals_queue_up(self):
        queue = BottleneckQueue(bandwidth_bps=8_000_000)
        arrivals = np.zeros(5)
        sizes = np.full(5, 1000.0)
        delays, _ = queue.run(arrivals, sizes, np.array([]), np.array([]))
        service = 1000 * 8 / 8_000_000
        assert delays.tolist() == pytest.approx([service * (k + 1) for k in range(5)])

    def test_cross_traffic_increases_monitored_delay(self):
        queue = BottleneckQueue(bandwidth_bps=8_000_000)
        arrivals = np.linspace(0, 0.1, 50)
        sizes = np.full(50, 400.0)
        base_delays, _ = queue.run(arrivals, sizes, np.array([]), np.array([]))
        cross_arrivals = np.linspace(0, 0.1, 2000)
        cross_sizes = np.full(2000, 1000.0)
        loaded_delays, _ = queue.run(arrivals, sizes, cross_arrivals, cross_sizes)
        assert loaded_delays.mean() > base_delays.mean()

    def test_monitored_packets_never_dropped(self):
        queue = BottleneckQueue(bandwidth_bps=1_000_000, capacity_packets=5)
        arrivals = np.linspace(0, 0.01, 20)
        sizes = np.full(20, 400.0)
        cross_arrivals = np.linspace(0, 0.01, 500)
        cross_sizes = np.full(500, 1500.0)
        delays, stats = queue.run(arrivals, sizes, cross_arrivals, cross_sizes)
        assert np.all(np.isfinite(delays))
        assert stats.dropped_cross_packets > 0

    def test_mismatched_lengths_rejected(self):
        queue = BottleneckQueue(bandwidth_bps=1e6)
        with pytest.raises(ValueError):
            queue.run(np.array([0.0]), np.array([1.0, 2.0]), np.array([]), np.array([]))

    def test_stats_utilization_bounded(self):
        queue = BottleneckQueue(bandwidth_bps=1e8)
        arrivals = np.linspace(0, 0.1, 100)
        sizes = np.full(100, 400.0)
        _, stats = queue.run(arrivals, sizes, np.array([]), np.array([]))
        assert 0.0 <= stats.utilization <= 1.0


class TestCrossTrafficSources:
    def test_udp_burst_produces_on_off_pattern(self):
        source = UDPBurstSource(bandwidth_bps=100e6, seed=1)
        arrivals, sizes = source.arrivals(0.0, 1.0)
        assert len(arrivals) > 0
        assert np.all(np.diff(np.sort(arrivals)) >= 0)
        assert set(sizes.tolist()) == {source.packet_size}
        # On/off behaviour: the arrival process should have quiet gaps much
        # longer than the typical inter-arrival time.
        gaps = np.diff(np.sort(arrivals))
        assert gaps.max() > 20 * np.median(gaps)

    def test_udp_burst_empty_interval(self):
        source = UDPBurstSource(bandwidth_bps=100e6, seed=2)
        arrivals, sizes = source.arrivals(1.0, 1.0)
        assert len(arrivals) == 0 and len(sizes) == 0

    def test_tcp_sawtooth_rate_near_target(self):
        source = TCPSawtoothSource(
            bandwidth_bps=100e6, target_utilization=0.5, packet_size=1500, seed=3
        )
        arrivals, sizes = source.arrivals(0.0, 2.0)
        offered_bps = sizes.sum() * 8 / 2.0
        assert offered_bps == pytest.approx(0.5 * 100e6, rel=0.3)

    def test_tcp_sawtooth_sorted_within_slots(self):
        source = TCPSawtoothSource(bandwidth_bps=50e6, seed=4)
        arrivals, _ = source.arrivals(0.0, 0.5)
        assert np.all(np.diff(arrivals) >= -1e-9)


class TestCongestionScenario:
    def test_monitored_delays_positive_and_variable(self):
        scenario = CongestionScenario(seed=1)
        arrivals = np.arange(5000) / 100_000.0
        delays = scenario.monitored_delays(arrivals, packet_size=400)
        assert np.all(delays > 0)
        assert delays.std() > 0
        assert scenario.last_stats is not None

    def test_higher_utilization_means_higher_delay(self):
        arrivals = np.arange(5000) / 100_000.0
        light = CongestionScenario(utilization=0.3, seed=2).monitored_delays(arrivals)
        heavy = CongestionScenario(utilization=1.2, seed=2).monitored_delays(arrivals)
        assert heavy.mean() > light.mean()

    def test_unsorted_arrivals_rejected(self):
        scenario = CongestionScenario(seed=3)
        with pytest.raises(ValueError):
            scenario.monitored_delays(np.array([0.0, 2.0, 1.0]))

    def test_per_packet_sizes_accepted(self):
        scenario = CongestionScenario(seed=4)
        arrivals = np.arange(1000) / 100_000.0
        sizes = np.full(1000, 1500.0)
        delays = scenario.monitored_delays(arrivals, packet_size=sizes)
        assert len(delays) == 1000

    def test_size_length_mismatch_rejected(self):
        scenario = CongestionScenario(seed=5)
        with pytest.raises(ValueError):
            scenario.monitored_delays(np.arange(10) / 1e5, packet_size=np.ones(5))

    def test_empty_arrivals(self):
        assert CongestionScenario(seed=6).monitored_delays(np.array([])).size == 0

    def test_invalid_scenario_rejected(self):
        with pytest.raises(ValueError):
            CongestionScenario(scenario="quantum")

    @pytest.mark.parametrize("kind", ["udp-burst", "tcp-mix", "mixed"])
    def test_all_scenarios_run(self, kind):
        scenario = CongestionScenario(scenario=kind, seed=7)
        arrivals = np.arange(2000) / 100_000.0
        delays = scenario.monitored_delays(arrivals)
        assert len(delays) == 2000
