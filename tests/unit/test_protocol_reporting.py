"""Unit tests for repro.core.protocol, repro.reporting.dissemination and
repro.reporting.receipt_store."""

from __future__ import annotations

import pytest

from repro.core.aggregation import AggregatorConfig
from repro.core.hop import HOPConfig, HOPReport
from repro.core.protocol import VPMSession
from repro.core.sampling import SamplerConfig
from repro.reporting.dissemination import ReceiptBus
from repro.reporting.receipt_store import ReceiptStore
from repro.simulation.scenario import PathScenario, SegmentCondition
from repro.traffic.delay_models import JitterDelayModel
from repro.traffic.loss_models import BernoulliLossModel


TEST_CONFIG = HOPConfig(
    sampler=SamplerConfig(sampling_rate=0.2, marker_rate=0.02),
    aggregator=AggregatorConfig(expected_aggregate_size=200),
)


@pytest.fixture(scope="module")
def trace_packets(prefix_pair):
    from repro.traffic.flows import FlowGeneratorConfig
    from repro.traffic.trace import SyntheticTrace, TraceConfig

    config = TraceConfig(
        packet_count=2000, packets_per_second=100_000.0, flow_config=FlowGeneratorConfig()
    )
    return SyntheticTrace(config=config, prefix_pair=prefix_pair, seed=41).packets()


@pytest.fixture(scope="module")
def observation(trace_packets):
    scenario = PathScenario(seed=42)
    scenario.configure_domain(
        "X",
        SegmentCondition(
            delay_model=JitterDelayModel(base_delay=3e-3, jitter_std=0.5e-3, seed=43),
            loss_model=BernoulliLossModel(0.05, seed=44),
        ),
    )
    return scenario.run(trace_packets)


class TestVPMSession:
    def test_run_produces_reports_for_all_hops(self, path, observation):
        session = VPMSession(path, configs={d.name: TEST_CONFIG for d in path.domains})
        reports = session.run(observation)
        assert set(reports) == {1, 2, 3, 4, 5, 6, 7, 8}

    def test_estimate_and_verify_shortcuts(self, path, observation):
        session = VPMSession(path, configs={d.name: TEST_CONFIG for d in path.domains})
        session.run(observation)
        performance = session.estimate("L", "X")
        assert performance.loss_rate > 0
        result = session.verify("L", "X")
        assert result.accepted

    def test_partial_deployment_domain_produces_no_reports(self, path, observation):
        configs = {d.name: TEST_CONFIG for d in path.domains}
        configs["N"] = None  # N has not deployed VPM
        session = VPMSession(path, configs=configs)
        reports = session.run(observation)
        assert 6 not in reports and 7 not in reports
        # X's performance is still computable from its own receipts.
        assert session.estimate("L", "X").offered_packets > 0

    def test_custom_agents_override_defaults(self, path, observation):
        from repro.core.domain import DomainAgent

        class TaggedAgent(DomainAgent):
            def transform_report(self, report: HOPReport) -> HOPReport:
                return HOPReport(hop_id=report.hop_id)  # drop everything

        agent = TaggedAgent("X", path, config=TEST_CONFIG)
        session = VPMSession(
            path, configs={d.name: TEST_CONFIG for d in path.domains}, agents={"X": agent}
        )
        reports = session.run(observation)
        assert reports[4].sample_receipts == ()
        assert reports[4].aggregate_receipts == ()

    def test_overhead_accounting(self, path, observation):
        session = VPMSession(path, configs={d.name: TEST_CONFIG for d in path.domains})
        session.run(observation)
        overhead = session.overhead()
        assert overhead.observed_packets > 0
        assert overhead.observed_bytes > overhead.observed_packets * 40
        assert overhead.receipt_bytes > 0
        assert 0 < overhead.receipt_bytes_per_packet < 50
        assert 0 < overhead.bandwidth_overhead < 0.2
        assert overhead.max_temp_buffer_packets > 0

    def test_off_path_observer_sees_nothing(self, path, observation):
        session = VPMSession(path, configs={d.name: TEST_CONFIG for d in path.domains})
        session.run(observation)
        verifier = session.verifier_for("EvilCorp")
        assert verifier.estimate_domain("X").offered_packets == 0


class TestReceiptBus:
    def test_publish_and_retrieve(self, path):
        bus = ReceiptBus(path)
        report = HOPReport(hop_id=4)
        bus.publish("X", report)
        assert bus.reports_visible_to("L") == [report]
        assert bus.reports_from("X") == [report]
        assert bus.publication_count == 1

    def test_off_path_publisher_rejected(self, path):
        bus = ReceiptBus(path)
        with pytest.raises(PermissionError):
            bus.publish("EvilCorp", HOPReport(hop_id=4))

    def test_publishing_for_foreign_hop_rejected(self, path):
        bus = ReceiptBus(path)
        with pytest.raises(PermissionError):
            bus.publish("X", HOPReport(hop_id=6))  # HOP 6 belongs to N

    def test_off_path_observer_gets_nothing(self, path):
        bus = ReceiptBus(path)
        bus.publish("X", HOPReport(hop_id=4))
        assert bus.reports_visible_to("EvilCorp") == []

    def test_total_bytes(self, path):
        bus = ReceiptBus(path)
        bus.publish("X", HOPReport(hop_id=4))
        assert bus.total_bytes == 0


class TestReceiptStore:
    def test_add_and_query(self, path, observation):
        session = VPMSession(path, configs={d.name: TEST_CONFIG for d in path.domains})
        reports = session.run(observation)
        store = ReceiptStore()
        for report in reports.values():
            store.add(report)
        stats = store.stats()
        assert stats.reports == 8
        assert stats.aggregate_receipts > 0
        assert stats.sample_records > 0
        assert stats.stored_bytes > 0
        assert store.reports_for_hop(4)
        pair = path.prefix_pair
        assert store.sample_receipts_for_path(pair)
        assert store.aggregate_receipts_for_path(pair)
        assert store.paths() == [pair]

    def test_clear(self, path):
        store = ReceiptStore()
        store.add(HOPReport(hop_id=1))
        store.clear()
        assert store.stats().reports == 0
        assert store.paths() == []

    def test_unknown_queries_empty(self, path, prefix_pair):
        store = ReceiptStore()
        assert store.reports_for_hop(1) == []
        assert store.sample_receipts_for_path(prefix_pair) == []
