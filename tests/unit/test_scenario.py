"""Unit tests for repro.simulation.scenario (the Figure-1 driver)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.net.link import InterDomainLink, LinkSpec
from repro.simulation.scenario import PathScenario, SegmentCondition
from repro.traffic.delay_models import ConstantDelayModel
from repro.traffic.loss_models import BernoulliLossModel
from repro.traffic.reordering import WindowReordering


class TestPathScenarioBasics:
    def test_default_is_figure1(self):
        scenario = PathScenario(seed=1)
        assert [domain.name for domain in scenario.path.domains] == ["S", "L", "X", "N", "D"]

    def test_mismatched_arguments_rejected(self, topology):
        with pytest.raises(ValueError):
            PathScenario(topology=topology, path=None)

    def test_all_hops_observe_without_impairment(self, small_trace_packets):
        scenario = PathScenario(seed=2)
        observation = scenario.run(small_trace_packets)
        counts = {hop.hop_id: observation.packets_observed(hop) for hop in scenario.path}
        assert set(counts.values()) == {len(small_trace_packets)}

    def test_observation_times_monotone_at_each_hop(self, small_trace_packets):
        scenario = PathScenario(seed=3)
        observation = scenario.run(small_trace_packets)
        for hop in scenario.path:
            times = [time for _, time in observation.at_hop(hop)]
            assert times == sorted(times)

    def test_times_increase_along_path(self, small_trace_packets):
        scenario = PathScenario(seed=4)
        observation = scenario.run(small_trace_packets)
        first_uid = small_trace_packets[0].uid
        times_by_hop = []
        for hop in scenario.path:
            for packet, time in observation.at_hop(hop):
                if packet.uid == first_uid:
                    times_by_hop.append(time)
                    break
        assert times_by_hop == sorted(times_by_hop)
        assert len(times_by_hop) == 8

    def test_configure_unknown_domain_rejected(self):
        scenario = PathScenario(seed=5)
        with pytest.raises(ValueError):
            scenario.configure_domain("S", SegmentCondition())  # stub, not transit
        with pytest.raises(ValueError):
            scenario.configure_domain("Z", SegmentCondition())


class TestLossAndDelayGroundTruth:
    def test_domain_loss_recorded(self, small_trace_packets):
        scenario = PathScenario(seed=6)
        scenario.configure_domain(
            "X", SegmentCondition(loss_model=BernoulliLossModel(0.2, seed=7))
        )
        observation = scenario.run(small_trace_packets)
        truth = observation.truth_for("X")
        assert truth.loss_rate == pytest.approx(0.2, abs=0.05)
        # Packets lost in X never appear at HOP 5 or beyond.
        egress_uids = {packet.uid for packet, _ in observation.at_hop(5)}
        assert not (truth.lost & egress_uids)
        assert observation.packets_observed(8) == len(truth.delivered)

    def test_domain_delay_recorded(self, small_trace_packets):
        scenario = PathScenario(seed=8)
        scenario.configure_domain(
            "X", SegmentCondition(delay_model=ConstantDelayModel(4e-3))
        )
        observation = scenario.run(small_trace_packets)
        truth = observation.truth_for("X")
        delays = truth.delays()
        assert np.allclose(delays, 4e-3)
        assert truth.delay_quantiles([0.5])[0.5] == pytest.approx(4e-3)

    def test_link_loss_recorded_separately(self, small_trace_packets):
        scenario = PathScenario(seed=9)
        scenario.configure_link(
            5, 6, InterDomainLink(spec=LinkSpec(), loss_rate=0.1, seed=10)
        )
        observation = scenario.run(small_trace_packets)
        assert len(observation.link_losses[(5, 6)]) > 0
        # Link loss is not attributed to any domain.
        assert observation.truth_for("X").loss_rate == 0.0
        assert observation.truth_for("N").loss_rate == 0.0

    def test_preferential_treatment_bypasses_loss_and_delay(self, small_trace_packets):
        scenario = PathScenario(seed=11)
        favored = {packet.uid for packet in small_trace_packets[::10]}
        scenario.configure_domain(
            "X",
            SegmentCondition(
                delay_model=ConstantDelayModel(10e-3),
                loss_model=BernoulliLossModel(0.5, seed=12),
                preferential_predicate=lambda packet: packet.uid in favored,
                preferential_delay=0.1e-3,
            ),
        )
        observation = scenario.run(small_trace_packets)
        truth = observation.truth_for("X")
        assert not (favored & truth.lost)
        for uid in favored:
            ingress, egress = truth.delivered[uid]
            assert egress - ingress == pytest.approx(0.1e-3)

    def test_drop_predicate_always_drops(self, small_trace_packets):
        scenario = PathScenario(seed=13)
        targeted = {packet.uid for packet in small_trace_packets[:50]}
        scenario.configure_domain(
            "X",
            SegmentCondition(drop_predicate=lambda packet: packet.uid in targeted),
        )
        observation = scenario.run(small_trace_packets)
        assert targeted <= observation.truth_for("X").lost

    def test_reordering_changes_order_only_within_window(self, small_trace_packets):
        scenario = PathScenario(seed=14)
        scenario.configure_domain(
            "X",
            SegmentCondition(
                delay_model=ConstantDelayModel(1e-3),
                reordering=WindowReordering(window=0.3e-3, reorder_probability=0.3, seed=15),
            ),
        )
        observation = scenario.run(small_trace_packets)
        egress_uids = [packet.uid for packet, _ in observation.at_hop(5)]
        ingress_uids = [packet.uid for packet, _ in observation.at_hop(4)]
        assert sorted(egress_uids) == sorted(ingress_uids)
        assert egress_uids != ingress_uids

    def test_ground_truth_offered_packets_conservation(self, small_trace_packets):
        scenario = PathScenario(seed=16)
        scenario.configure_domain(
            "X", SegmentCondition(loss_model=BernoulliLossModel(0.3, seed=17))
        )
        observation = scenario.run(small_trace_packets)
        truth = observation.truth_for("X")
        assert truth.offered_packets == observation.packets_observed(4)
        assert len(truth.delivered) == observation.packets_observed(5)
