"""Unit tests for repro.traffic.loss_models."""

from __future__ import annotations

import pytest

from repro.traffic.loss_models import (
    BernoulliLossModel,
    GilbertElliottLossModel,
    NoLossModel,
)


def _measured_rate(model, packets: int = 20000) -> float:
    return sum(1 for index in range(packets) if model.drops(index)) / packets


class TestNoLoss:
    def test_never_drops(self):
        model = NoLossModel()
        assert not any(model.drops(index) for index in range(1000))
        assert model.expected_loss_rate() == 0.0


class TestBernoulli:
    def test_zero_rate_never_drops(self):
        assert _measured_rate(BernoulliLossModel(0.0, seed=1), 2000) == 0.0

    def test_measured_rate_close_to_nominal(self):
        assert _measured_rate(BernoulliLossModel(0.25, seed=2)) == pytest.approx(
            0.25, abs=0.02
        )

    def test_expected_rate_reported(self):
        assert BernoulliLossModel(0.1).expected_loss_rate() == 0.1

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            BernoulliLossModel(1.2)

    def test_deterministic_for_seed(self):
        a = BernoulliLossModel(0.3, seed=5)
        b = BernoulliLossModel(0.3, seed=5)
        assert [a.drops(i) for i in range(100)] == [b.drops(i) for i in range(100)]


class TestGilbertElliott:
    def test_from_target_rate_matches_long_run(self):
        for target in (0.1, 0.25, 0.5):
            model = GilbertElliottLossModel.from_target_rate(target, seed=3)
            assert model.expected_loss_rate() == pytest.approx(target, rel=1e-6)
            assert _measured_rate(model) == pytest.approx(target, abs=0.05)

    def test_zero_target_never_drops(self):
        model = GilbertElliottLossModel.from_target_rate(0.0, seed=4)
        assert _measured_rate(model, 2000) == 0.0

    def test_losses_are_bursty(self):
        # With a mean burst of 20 packets, consecutive drops should be common;
        # compare the number of loss runs against an independent model at the
        # same rate: the bursty model has far fewer, longer runs.
        bursty = GilbertElliottLossModel.from_target_rate(
            0.3, mean_burst_length=20, seed=5
        )
        independent = BernoulliLossModel(0.3, seed=5)

        def runs(model) -> int:
            count, previous = 0, False
            for index in range(20000):
                current = model.drops(index)
                if current and not previous:
                    count += 1
                previous = current
            return count

        assert runs(bursty) < runs(independent) * 0.5

    def test_reset_returns_to_good_state(self):
        model = GilbertElliottLossModel(p=1.0, r=0.0, seed=6)
        model.drops(0)
        model.reset()
        assert model._in_bad_state is False

    def test_unachievable_target_rejected(self):
        with pytest.raises(ValueError):
            GilbertElliottLossModel.from_target_rate(0.9, loss_bad=0.5)

    def test_burst_length_validation(self):
        with pytest.raises(ValueError):
            GilbertElliottLossModel.from_target_rate(0.1, mean_burst_length=0.5)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            GilbertElliottLossModel(p=1.5, r=0.1)

    def test_expected_rate_formula(self):
        model = GilbertElliottLossModel(p=0.1, r=0.3, loss_good=0.0, loss_bad=1.0)
        assert model.expected_loss_rate() == pytest.approx(0.1 / 0.4)
