"""Unit tests for the HTTP dispatch transport's building blocks.

Everything here runs without sockets: the coordinator-side pieces
(:class:`NetworkClaimBoard` on an injected clock, :class:`DispatchHub`
against a real store in a tmp dir) are driven as plain objects, and the
worker-side :class:`HTTPTransport` runs over a faked ``urllib`` so
retry/backoff and protocol-rejection handling are deterministic.  Live
sockets, subprocess pools and chaos kills live in
``tests/integration/test_dispatch_http.py``.
"""

from __future__ import annotations

import io
import json
import urllib.error
import urllib.request

import pytest

from repro.api.spec import (
    CampaignSpec,
    ConditionSpec,
    ExperimentSpec,
    HOPSpec,
    PathSpec,
    ProtocolSpec,
    SLATargetSpec,
    TrafficSpec,
)
from repro.dist import DISPATCH_DIR, StagingArea
from repro.dist.net import (
    DispatchHub,
    HTTPTransport,
    NetworkClaimBoard,
    ProtocolError,
    TransportError,
    record_digest,
)
from repro.engine.campaign import interval_record
from repro.store import RunStore, stable_json


def _spec(name: str = "net-test", intervals: int = 3) -> CampaignSpec:
    return CampaignSpec(
        name=name,
        intervals=intervals,
        cell=ExperimentSpec(
            seed=83,
            traffic=TrafficSpec(workload=None, packet_count=300),
            path=PathSpec(
                conditions={
                    "X": ConditionSpec(
                        delay="jitter",
                        delay_params={"base_delay": 1e-3, "jitter_std": 0.2e-3},
                    )
                }
            ),
            protocol=ProtocolSpec(
                default=HOPSpec(sampling_rate=0.2, marker_rate=0.02, aggregate_size=150)
            ),
        ),
        sla=SLATargetSpec(delay_bound=10e-3, delay_quantile=0.9, loss_bound=0.05),
    )


class FakeClock:
    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now


class TestNetworkClaimBoard:
    def test_single_winner_and_live_lease_refusal(self):
        clock = FakeClock()
        board = NetworkClaimBoard(lease=30.0, clock=clock)
        granted, claim = board.try_claim(0, "a")
        assert granted and claim.worker == "a"
        granted, claim = board.try_claim(0, "b")
        assert not granted and claim.worker == "a"
        assert board.holder(0).worker == "a"

    def test_expiry_is_coordinator_clock_only(self):
        clock = FakeClock()
        board = NetworkClaimBoard(lease=30.0, clock=clock)
        board.try_claim(0, "a")
        clock.now += 29.9
        assert not board.try_claim(0, "b")[0]
        clock.now += 0.2  # past the deadline, on the coordinator's clock
        assert board.holder(0) is None
        granted, claim = board.try_claim(0, "b")
        assert granted and claim.worker == "b"

    def test_reclaim_by_holder_renews(self):
        clock = FakeClock()
        board = NetworkClaimBoard(lease=30.0, clock=clock)
        board.try_claim(0, "a")
        clock.now += 20.0
        granted, claim = board.try_claim(0, "a")
        assert granted and claim.expires_at == clock.now + 30.0

    def test_renew_holder_vs_interloper(self):
        clock = FakeClock()
        board = NetworkClaimBoard(lease=30.0, clock=clock)
        board.try_claim(0, "a")
        assert board.renew(0, "a") is True
        assert board.renew(0, "b") is False
        # An expired-but-unclaimed lease revives for its (slow) owner...
        clock.now += 31.0
        assert board.renew(0, "a") is True
        # ...but never against a live takeover.
        clock.now += 31.0
        board.try_claim(0, "b")
        assert board.renew(0, "a") is False

    def test_release_scoped_and_forced(self):
        board = NetworkClaimBoard(lease=30.0, clock=FakeClock())
        board.try_claim(0, "a")
        board.release(0, "b")  # not the holder: no-op
        assert board.holder(0).worker == "a"
        board.release(0, "a")
        assert board.holder(0) is None
        board.try_claim(0, "a")
        board.release(0)  # coordinator-side force release
        assert board.holder(0) is None

    def test_claims_purges_expired(self):
        clock = FakeClock()
        board = NetworkClaimBoard(lease=30.0, clock=clock)
        board.try_claim(0, "a")
        board.try_claim(1, "b")
        clock.now += 31.0
        board.try_claim(2, "c")
        assert sorted(board.claims()) == [2]

    def test_lease_must_be_positive(self):
        with pytest.raises(ValueError, match="lease"):
            NetworkClaimBoard(lease=0.0)


@pytest.fixture
def hub(tmp_path):
    spec = _spec()
    store = RunStore.create(tmp_path / "run", spec)
    staging = StagingArea(tmp_path / "run" / DISPATCH_DIR)
    claims = NetworkClaimBoard(lease=30.0, clock=FakeClock())
    return DispatchHub(store=store, policy=None, claims=claims, staging=staging)


def _line(hub, interval: int) -> bytes:
    record = interval_record(hub.spec, interval, policy=hub.policy)
    return (stable_json(dict(record)) + "\n").encode("utf-8")


class TestDispatchHubUpload:
    def test_upload_stages_exact_bytes(self, hub):
        line = _line(hub, 0)
        out = hub.upload(0, line, record_digest(line), worker="w0")
        assert out == {"interval": 0, "duplicate": False, "committed": False}
        assert hub.staging.path(0).read_bytes() == line

    def test_digest_mismatch_rejected_and_nothing_staged(self, hub):
        line = _line(hub, 0)
        truncated = line[: len(line) // 2]  # a cut-off upload body
        with pytest.raises(ProtocolError) as exc:
            hub.upload(0, truncated, record_digest(line), worker="w0")
        assert exc.value.code == "digest_mismatch"
        assert exc.value.status == 400  # retryable: client error, not conflict
        assert not hub.staging.path(0).exists()

    def test_missing_digest_rejected(self, hub):
        line = _line(hub, 0)
        with pytest.raises(ProtocolError) as exc:
            hub.upload(0, line, None, worker="w0")
        assert exc.value.code == "missing_digest"
        assert not hub.staging.path(0).exists()

    def test_duplicate_reupload_is_idempotent(self, hub):
        line = _line(hub, 0)
        hub.upload(0, line, record_digest(line), worker="w0")
        out = hub.upload(0, line, record_digest(line), worker="w1")
        assert out["duplicate"] is True
        assert hub.staging.path(0).read_bytes() == line

    def test_divergent_duplicate_is_fatal(self, hub):
        line = _line(hub, 0)
        hub.upload(0, line, record_digest(line), worker="w0")
        record = json.loads(_line(hub, 0))
        record["receipts_digest"] = "0" * 64
        forged = (stable_json(record) + "\n").encode("utf-8")
        with pytest.raises(ProtocolError) as exc:
            hub.upload(0, forged, record_digest(forged), worker="w1")
        assert exc.value.code == "record_divergence"
        assert exc.value.status == 409

    def test_committed_duplicate_byte_asserts(self, hub):
        line = _line(hub, 0)
        hub.store.append(json.loads(line))
        out = hub.upload(0, line, record_digest(line), worker="w0")
        assert out == {"interval": 0, "duplicate": True, "committed": True}
        record = json.loads(line)
        record["receipts_digest"] = "0" * 64
        forged = (stable_json(record) + "\n").encode("utf-8")
        with pytest.raises(ProtocolError) as exc:
            hub.upload(0, forged, record_digest(forged), worker="w0")
        assert exc.value.code == "record_divergence"

    def test_malformed_record_rejected(self, hub):
        for payload in (b"not json\n", b'["a", "list"]\n'):
            with pytest.raises(ProtocolError) as exc:
                hub.upload(0, payload, record_digest(payload), worker="w0")
            assert exc.value.code == "malformed_record"
        wrong = _line(hub, 1)
        with pytest.raises(ProtocolError) as exc:
            hub.upload(0, wrong, record_digest(wrong), worker="w0")
        assert exc.value.code == "malformed_record"

    def test_interval_out_of_range(self, hub):
        line = _line(hub, 0)
        with pytest.raises(ProtocolError) as exc:
            hub.upload(99, line, record_digest(line), worker="w0")
        assert exc.value.code == "no_such_interval"


class TestDispatchHubClaims:
    def test_claim_on_staged_interval_refused(self, hub):
        line = _line(hub, 0)
        hub.upload(0, line, record_digest(line), worker="w0")
        with pytest.raises(ProtocolError) as exc:
            hub.claim(0, "w1")
        assert exc.value.code == "interval_staged"

    def test_claim_on_committed_interval_refused(self, hub):
        hub.store.append(json.loads(_line(hub, 0)))
        with pytest.raises(ProtocolError) as exc:
            hub.claim(0, "w1")
        assert exc.value.code == "interval_done"

    def test_claim_conflict_names_the_holder(self, hub):
        hub.claim(1, "w0")
        with pytest.raises(ProtocolError) as exc:
            hub.claim(1, "w1")
        assert exc.value.code == "claim_held"
        assert exc.value.detail["worker"] == "w0"

    def test_renew_requires_holding(self, hub):
        hub.claim(1, "w0")
        assert hub.renew(1, "w0")["interval"] == 1
        with pytest.raises(ProtocolError) as exc:
            hub.renew(1, "w1")
        assert exc.value.code == "not_holder"

    def test_status_reflects_progress(self, hub):
        hub.store.append(json.loads(_line(hub, 0)))
        line = _line(hub, 1)
        hub.upload(1, line, record_digest(line), worker="w0")
        hub.claim(2, "w0")
        status = hub.status()
        assert status["committed"] == 1
        assert status["staged"] == [1]
        assert status["complete"] is False
        assert [c["interval"] for c in status["claims"]] == [2]

    def test_config_serves_spec_policy_lease(self, hub):
        config = hub.config()
        assert config["spec"] == hub.spec.to_dict()
        assert config["lease"] == 30.0
        assert config["intervals"] == hub.spec.intervals
        assert config["spec_hash"] == hub.store.spec_hash
        assert CampaignSpec.from_dict(config["spec"]) == hub.spec


class FakeHTTP:
    """Scripted ``urllib.request.urlopen`` stand-in.

    Each entry in ``script`` is either a payload dict (a 200 JSON response)
    or an exception instance to raise.  Records every request for asserts.
    """

    def __init__(self, script):
        self.script = list(script)
        self.requests = []

    def __call__(self, request, timeout=None):
        self.requests.append(request)
        step = self.script.pop(0)
        if isinstance(step, Exception):
            raise step

        class _Response:
            def __init__(self, payload):
                self._payload = json.dumps(payload).encode("utf-8")

            def read(self):
                return self._payload

            def __enter__(self):
                return self

            def __exit__(self, *exc):
                return False

        return _Response(step)


def _http_error(status: int, code: str, message: str) -> urllib.error.HTTPError:
    body = json.dumps({"error": {"code": code, "message": message}}).encode("utf-8")
    return urllib.error.HTTPError(
        "http://coordinator/x", status, message, {}, io.BytesIO(body)
    )


def _config_payload(spec: CampaignSpec) -> dict:
    return {
        "spec": spec.to_dict(),
        "spec_hash": spec.spec_hash(),
        "policy": {},
        "lease": 5.0,
        "intervals": spec.intervals,
    }


@pytest.fixture
def no_sleep(monkeypatch):
    delays = []
    monkeypatch.setattr("repro.dist.net.time.sleep", delays.append)
    return delays


def _transport(monkeypatch, script, **kwargs):
    fake = FakeHTTP([_config_payload(_spec())] + list(script))
    monkeypatch.setattr("repro.dist.net.urllib.request.urlopen", fake)
    transport = HTTPTransport(
        "http://coordinator:1", "run", worker_id="w0", **kwargs
    )
    return transport, fake

class TestHTTPTransportRetry:
    def test_config_fetched_at_construction(self, monkeypatch, no_sleep):
        transport, fake = _transport(monkeypatch, [])
        assert transport.spec == _spec()
        assert transport.lease == 5.0
        assert len(fake.requests) == 1
        assert fake.requests[0].get_header("X-repro-worker") == "w0"

    def test_transient_errors_retry_with_backoff(self, monkeypatch, no_sleep):
        transport, fake = _transport(
            monkeypatch,
            [
                urllib.error.URLError("connection refused"),
                _http_error(503, "unavailable", "starting up"),
                {"intervals": 3, "committed": 3, "complete": True, "staged": []},
            ],
        )
        assert transport.pending() == []
        assert len(fake.requests) == 4  # config + three attempts
        assert no_sleep == [0.25, 0.5]  # exponential backoff between retries

    def test_unreachable_after_retries_raises_transport_error(
        self, monkeypatch, no_sleep
    ):
        transport, fake = _transport(
            monkeypatch,
            [urllib.error.URLError("down")] * 6,
            retries=3,
        )
        # Construction consumed the scripted config; reconfigure retries low.
        with pytest.raises(TransportError, match="unreachable after 3"):
            transport.pending()

    def test_protocol_rejection_never_retries(self, monkeypatch, no_sleep):
        transport, fake = _transport(
            monkeypatch, [_http_error(409, "claim_held", "leased to w1")]
        )
        assert transport.try_claim(0) is False
        assert len(fake.requests) == 2  # config + exactly one claim attempt
        assert no_sleep == []

    def test_deliver_retries_digest_mismatch(self, monkeypatch, no_sleep):
        record = dict(interval_record(_spec(), 0))
        transport, fake = _transport(
            monkeypatch,
            [
                _http_error(400, "digest_mismatch", "truncated in transit"),
                {"interval": 0, "duplicate": False, "committed": False},
            ],
        )
        assert transport.deliver(0, record) is True
        upload = fake.requests[-1]
        line = (stable_json(record) + "\n").encode("utf-8")
        assert upload.data == line
        assert upload.get_header("X-repro-digest") == record_digest(line)

    def test_deliver_duplicate_reports_false(self, monkeypatch, no_sleep):
        record = dict(interval_record(_spec(), 0))
        transport, fake = _transport(
            monkeypatch,
            [{"interval": 0, "duplicate": True, "committed": False}],
        )
        assert transport.deliver(0, record) is False

    def test_deliver_divergence_is_fatal(self, monkeypatch, no_sleep):
        record = dict(interval_record(_spec(), 0))
        transport, fake = _transport(
            monkeypatch,
            [_http_error(409, "record_divergence", "determinism violated")],
        )
        with pytest.raises(ProtocolError, match="determinism"):
            transport.deliver(0, record)
        assert len(fake.requests) == 2  # never retried

    def test_pending_after_complete_tolerates_gone_coordinator(
        self, monkeypatch, no_sleep
    ):
        transport, fake = _transport(
            monkeypatch,
            [
                {"intervals": 3, "committed": 3, "complete": True, "staged": []},
                urllib.error.URLError("coordinator exited"),
                urllib.error.URLError("coordinator exited"),
                urllib.error.URLError("coordinator exited"),
            ],
            retries=3,
        )
        assert transport.pending() == []
        assert transport.pending() == []  # unreachable, but we saw complete

    def test_renew_and_release_swallow_failures(self, monkeypatch, no_sleep):
        transport, fake = _transport(
            monkeypatch,
            [
                _http_error(409, "not_holder", "lease lapsed"),
                urllib.error.URLError("down"),
                urllib.error.URLError("down"),
                urllib.error.URLError("down"),
                urllib.error.URLError("down"),
                urllib.error.URLError("down"),
                urllib.error.URLError("down"),
            ],
        )
        transport.renew(0)  # protocol rejection: swallowed
        transport.release(0)  # transport failure after retries: swallowed
