"""Unit tests for the distributed dispatch layer (claims, staging, commit).

Everything here runs in-process — workers are driven as plain objects and
the coordinator runs with ``workers=0`` (commit-only) over pre-staged
records, so these tests cover the protocol's invariants without subprocess
spawn latency.  Subprocess pools, chaos kills and the CLI live in
``tests/integration/test_dispatch_chaos.py``.
"""

from __future__ import annotations

import json
import time

import pytest

from repro.api.spec import (
    CampaignSpec,
    ConditionSpec,
    ExecutionPolicy,
    ExperimentSpec,
    HOPSpec,
    PathSpec,
    ProtocolSpec,
    SLATargetSpec,
    TrafficSpec,
)
from repro.dist import (
    DISPATCH_DIR,
    ClaimBoard,
    DispatchCoordinator,
    DispatchError,
    DispatchWorker,
    StagingArea,
    dispatch_campaign,
    validate_dispatch_policy,
)
from repro.engine.campaign import CampaignRunner, interval_record
from repro.store import RunStore


def _spec(name: str = "dispatch-test", intervals: int = 3) -> CampaignSpec:
    return CampaignSpec(
        name=name,
        intervals=intervals,
        cell=ExperimentSpec(
            seed=83,
            traffic=TrafficSpec(workload=None, packet_count=300),
            path=PathSpec(
                conditions={
                    "X": ConditionSpec(
                        delay="jitter",
                        delay_params={"base_delay": 1e-3, "jitter_std": 0.2e-3},
                    )
                }
            ),
            protocol=ProtocolSpec(
                default=HOPSpec(sampling_rate=0.2, marker_rate=0.02, aggregate_size=150)
            ),
        ),
        sla=SLATargetSpec(delay_bound=10e-3, delay_quantile=0.9, loss_bound=0.05),
    )


def _direct_run(tmp_path, spec: CampaignSpec) -> RunStore:
    store = RunStore.create(tmp_path / "direct", spec)
    CampaignRunner(spec, store).run()
    return store


class TestClaimBoard:
    def test_fresh_claim_single_winner(self, tmp_path):
        a = ClaimBoard(tmp_path, worker="a", lease=30.0)
        b = ClaimBoard(tmp_path, worker="b", lease=30.0)
        assert a.try_claim(0) is True
        assert b.try_claim(0) is False  # live lease held by a
        assert a.holder(0).worker == "a"
        assert b.try_claim(1) is True

    def test_release_frees_the_interval(self, tmp_path):
        a = ClaimBoard(tmp_path, worker="a", lease=30.0)
        b = ClaimBoard(tmp_path, worker="b", lease=30.0)
        assert a.try_claim(0)
        a.release(0)
        assert a.holder(0) is None
        assert b.try_claim(0) is True

    def test_expired_lease_taken_over(self, tmp_path):
        dead = ClaimBoard(tmp_path, worker="dead", lease=0.01)
        live = ClaimBoard(tmp_path, worker="live", lease=30.0)
        assert dead.try_claim(0)
        time.sleep(0.05)  # the dead worker's heartbeat never came
        assert live.try_claim(0) is True
        assert live.holder(0).worker == "live"

    def test_renew_extends_the_lease(self, tmp_path):
        a = ClaimBoard(tmp_path, worker="a", lease=0.2)
        b = ClaimBoard(tmp_path, worker="b", lease=30.0)
        assert a.try_claim(0)
        for _ in range(3):
            time.sleep(0.1)
            a.renew(0)  # the heartbeat a live worker keeps sending
            assert b.try_claim(0) is False

    def test_corrupt_claim_file_is_takeover_eligible(self, tmp_path):
        a = ClaimBoard(tmp_path, worker="a", lease=30.0)
        a.path(0).write_bytes(b"garbage from a crash mid-create")
        claim = a.holder(0)
        assert claim.expired()
        assert a.try_claim(0) is True
        assert a.holder(0).worker == "a"

    def test_claims_listing(self, tmp_path):
        a = ClaimBoard(tmp_path, worker="a", lease=30.0)
        a.try_claim(2)
        a.try_claim(0)
        held = a.claims()
        assert sorted(held) == [0, 2]
        assert all(claim.worker == "a" for claim in held.values())

    def test_nonpositive_lease_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="lease"):
            ClaimBoard(tmp_path, worker="a", lease=0.0)


class TestStagingArea:
    def test_stage_then_load_round_trips(self, tmp_path):
        staging = StagingArea(tmp_path)
        record = {"interval": 0, "value": 1.5}
        assert staging.stage(0, record, worker="w") is True
        loaded, line = staging.load(0)
        assert loaded == record
        assert line.endswith(b"\n") and json.loads(line) == record
        assert list(staging.staged()) == [0]
        staging.discard(0)
        assert staging.staged() == {}

    def test_identical_duplicate_is_dropped_not_rewritten(self, tmp_path):
        staging = StagingArea(tmp_path)
        record = {"interval": 1, "value": 2.0}
        assert staging.stage(1, record, worker="w1") is True
        # A straggler re-executes the interval: same bytes, benign.
        assert staging.stage(1, dict(record), worker="w2") is False

    def test_differing_duplicate_is_a_hard_error(self, tmp_path):
        staging = StagingArea(tmp_path)
        staging.stage(1, {"interval": 1, "value": 2.0}, worker="w1")
        with pytest.raises(DispatchError, match="pure functions"):
            staging.stage(1, {"interval": 1, "value": 999.0}, worker="w2")


class TestPolicyValidation:
    def test_checkpoint_every_rejected(self):
        spec = _spec()
        with pytest.raises(ValueError, match="checkpoint_every"):
            validate_dispatch_policy(spec, ExecutionPolicy(checkpoint_every=1))

    def test_plain_policy_bound(self):
        spec = _spec()
        bound = validate_dispatch_policy(spec, None)
        assert bound.engine is not None  # bind() resolved the engine


class TestWorker:
    def test_worker_stages_every_pending_interval(self, tmp_path):
        spec = _spec(intervals=3)
        store = RunStore.create(tmp_path / "run", spec)
        worker = DispatchWorker(tmp_path / "run", worker_id="w0")
        assert worker.run() == 3
        staged = worker.staging.staged()
        assert sorted(staged) == [0, 1, 2]
        # Staged bytes are exactly the future records.jsonl lines.
        for interval in staged:
            _, line = worker.staging.load(interval)
            assert json.loads(line)["interval"] == interval
        assert store.record_count == 0  # workers never touch the store

    def test_worker_skips_committed_prefix(self, tmp_path):
        spec = _spec(intervals=3)
        store = RunStore.create(tmp_path / "run", spec)
        CampaignRunner(spec, store).run(max_intervals=2)
        worker = DispatchWorker(tmp_path / "run", worker_id="w0")
        assert worker.run() == 1
        assert sorted(worker.staging.staged()) == [2]

    def test_worker_respects_live_foreign_claims(self, tmp_path):
        spec = _spec(intervals=1)
        RunStore.create(tmp_path / "run", spec)
        other = ClaimBoard(tmp_path / "run" / DISPATCH_DIR, worker="other", lease=30.0)
        assert other.try_claim(0)
        worker = DispatchWorker(tmp_path / "run", worker_id="w0")
        assert worker.run_one() is None  # idle: the only interval is claimed


class TestCommitOnlyCoordinator:
    def test_pre_staged_records_commit_byte_identical(self, tmp_path):
        spec = _spec(intervals=4)
        direct = _direct_run(tmp_path, spec)
        store = RunStore.create(tmp_path / "dispatched", spec)
        staging = StagingArea(tmp_path / "dispatched" / DISPATCH_DIR)
        # Stage every interval out of order (worst-case completion order).
        for interval in (3, 1, 0, 2):
            record = interval_record(spec, interval)
            staging.stage(interval, record, worker="remote")
        outcome = DispatchCoordinator(store, workers=0).run()
        assert outcome.completed and outcome.intervals_run == 4
        assert store.records_path.read_bytes() == direct.records_path.read_bytes()
        assert store.summary() == direct.summary()
        assert store.digest() == direct.digest()
        # The dispatch scratch dir is gone: the store diffs clean.
        assert not (tmp_path / "dispatched" / DISPATCH_DIR).exists()

    def test_duplicate_of_committed_interval_asserted_then_dropped(self, tmp_path):
        spec = _spec(intervals=2)
        store = RunStore.create(tmp_path / "run", spec)
        CampaignRunner(spec, store).run(max_intervals=1)
        staging = StagingArea(tmp_path / "run" / DISPATCH_DIR)
        # A straggler re-delivers interval 0 (already committed) plus the
        # genuinely-missing interval 1.
        staging.stage(0, interval_record(spec, 0), worker="straggler")
        staging.stage(1, interval_record(spec, 1), worker="straggler")
        outcome = DispatchCoordinator(store, workers=0).run()
        assert outcome.intervals_run == 1  # only interval 1 commits
        direct = _direct_run(tmp_path, spec)
        assert store.records_path.read_bytes() == direct.records_path.read_bytes()

    def test_divergent_duplicate_of_committed_interval_raises(self, tmp_path):
        spec = _spec(intervals=2)
        store = RunStore.create(tmp_path / "run", spec)
        CampaignRunner(spec, store).run(max_intervals=1)
        staging = StagingArea(tmp_path / "run" / DISPATCH_DIR)
        tampered = dict(interval_record(spec, 0))
        tampered["receipts_digest"] = "0" * 16
        staging.stage(0, tampered, worker="liar")
        with pytest.raises(DispatchError, match="disagrees with its committed"):
            DispatchCoordinator(store, workers=0).run()

    def test_negative_workers_rejected(self, tmp_path):
        spec = _spec(intervals=1)
        store = RunStore.create(tmp_path / "run", spec)
        with pytest.raises(ValueError, match="workers"):
            DispatchCoordinator(store, workers=-1)


class TestDispatchCampaign:
    def test_missing_store_without_spec_rejected(self, tmp_path):
        with pytest.raises(DispatchError, match="no run store"):
            dispatch_campaign(tmp_path / "nowhere", workers=0)

    def test_in_process_worker_plus_commit_only_coordinator(self, tmp_path):
        # The multi-host topology in miniature: a worker process somewhere
        # stages results, a commit-only coordinator folds them.
        spec = _spec(intervals=3)
        RunStore.create(tmp_path / "run", spec)
        DispatchWorker(tmp_path / "run", worker_id="remote-host").run()
        outcome = dispatch_campaign(tmp_path / "run", workers=0)
        assert outcome.completed
        direct = _direct_run(tmp_path, spec)
        dispatched = RunStore.open(tmp_path / "run")
        assert dispatched.digest() == direct.digest()
