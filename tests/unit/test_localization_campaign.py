"""Unit tests for repro.analysis.localization and repro.core.campaign."""

from __future__ import annotations

import pytest

from repro.adversary.lying import LyingDomainAgent
from repro.analysis.localization import identify_suspects, localize_performance
from repro.analysis.sla import SLASpec
from repro.core.aggregation import AggregatorConfig
from repro.core.campaign import MeasurementCampaign
from repro.core.consistency import Inconsistency
from repro.core.hop import HOPConfig
from repro.core.protocol import VPMSession
from repro.core.sampling import SamplerConfig
from repro.simulation.scenario import PathScenario, SegmentCondition
from repro.traffic.delay_models import ConstantDelayModel, JitterDelayModel
from repro.traffic.flows import FlowGeneratorConfig
from repro.traffic.loss_models import BernoulliLossModel
from repro.traffic.trace import SyntheticTrace, TraceConfig


TEST_CONFIG = HOPConfig(
    sampler=SamplerConfig(sampling_rate=0.2, marker_rate=0.02),
    aggregator=AggregatorConfig(expected_aggregate_size=300),
)


@pytest.fixture(scope="module")
def trace_packets(prefix_pair):
    config = TraceConfig(
        packet_count=2500, packets_per_second=100_000.0, flow_config=FlowGeneratorConfig()
    )
    return SyntheticTrace(config=config, prefix_pair=prefix_pair, seed=81).packets()


def configured_scenario(seed: int) -> PathScenario:
    """X is slow and lossy; L and N are healthy."""
    scenario = PathScenario(seed=seed)
    scenario.configure_domain(
        "L", SegmentCondition(delay_model=JitterDelayModel(0.5e-3, 0.1e-3, seed=seed + 1))
    )
    scenario.configure_domain(
        "X",
        SegmentCondition(
            delay_model=ConstantDelayModel(12e-3),
            loss_model=BernoulliLossModel(0.1, seed=seed + 2),
        ),
    )
    scenario.configure_domain(
        "N", SegmentCondition(delay_model=JitterDelayModel(1e-3, 0.2e-3, seed=seed + 3))
    )
    return scenario


class TestLocalization:
    @pytest.fixture(scope="class")
    def verifier(self, path, trace_packets):
        scenario = configured_scenario(seed=82)
        observation = scenario.run(trace_packets)
        session = VPMSession(path, configs={d.name: TEST_CONFIG for d in path.domains})
        session.run(observation)
        return session.verifier_for("S")

    def test_worst_domains_identified(self, verifier):
        diagnosis = localize_performance(verifier)
        assert diagnosis.worst_delay_domain.domain == "X"
        assert diagnosis.worst_loss_domain.domain == "X"
        assert diagnosis.worst_delay_domain.delay_share > 0.5
        assert diagnosis.worst_loss_domain.loss_share == pytest.approx(1.0)

    def test_delay_shares_sum_to_one(self, verifier):
        diagnosis = localize_performance(verifier)
        assert sum(entry.delay_share for entry in diagnosis.domains) == pytest.approx(1.0)

    def test_sla_violations_flagged(self, verifier):
        sla = SLASpec(delay_bound=5e-3, delay_quantile=0.9, loss_bound=0.01)
        diagnosis = localize_performance(verifier, sla=sla)
        assert diagnosis.violating_domains == ("X",)
        healthy = next(entry for entry in diagnosis.domains if entry.domain == "L")
        assert not healthy.violating

    def test_no_sla_means_no_verdicts(self, verifier):
        diagnosis = localize_performance(verifier)
        assert all(entry.sla_verdict is None for entry in diagnosis.domains)
        assert diagnosis.violating_domains == ()

    def test_no_suspects_for_honest_path(self, verifier):
        assert localize_performance(verifier).suspects == ()

    def test_suspects_named_for_lying_domain(self, path, trace_packets):
        scenario = configured_scenario(seed=83)
        observation = scenario.run(trace_packets)
        liar = LyingDomainAgent("X", path, config=TEST_CONFIG)
        session = VPMSession(
            path, configs={d.name: TEST_CONFIG for d in path.domains}, agents={"X": liar}
        )
        session.run(observation)
        diagnosis = localize_performance(session.verifier_for("L"))
        assert len(diagnosis.suspects) == 1
        suspect = diagnosis.suspects[0]
        assert (suspect.upstream_domain, suspect.downstream_domain) == ("X", "N")
        assert suspect.finding_kinds

    def test_identify_suspects_groups_by_link(self, path):
        findings = [
            Inconsistency(kind="count-mismatch", upstream_hop=5, downstream_hop=6),
            Inconsistency(kind="missing-downstream", upstream_hop=5, downstream_hop=6, pkt_id=1),
            Inconsistency(kind="count-mismatch", upstream_hop=7, downstream_hop=8),
        ]
        suspects = identify_suspects(path, findings)
        assert len(suspects) == 2
        assert suspects[0].upstream_domain == "X"
        assert suspects[0].finding_kinds == ("count-mismatch", "missing-downstream")
        assert suspects[1].upstream_domain == "N"
        assert suspects[1].downstream_domain == "D"


class TestMeasurementCampaign:
    def _interval_traces(self, prefix_pair, count: int, size: int = 1500):
        traces = []
        for index in range(count):
            config = TraceConfig(
                packet_count=size,
                packets_per_second=100_000.0,
                flow_config=FlowGeneratorConfig(),
            )
            traces.append(
                SyntheticTrace(config=config, prefix_pair=prefix_pair, seed=900 + index).packets()
            )
        return traces

    def test_campaign_accumulates_intervals(self, prefix_pair):
        scenario = configured_scenario(seed=91)
        campaign = MeasurementCampaign(
            scenario,
            target="X",
            observer="S",
            configs={d.name: TEST_CONFIG for d in scenario.path.domains},
        )
        result = campaign.run(self._interval_traces(prefix_pair, count=3))
        assert result.interval_count == 3
        assert result.total_offered_packets > 0
        assert result.loss_rate == pytest.approx(0.1, abs=0.05)
        assert result.acceptance_rate == 1.0
        pooled = result.pooled_delay_quantiles()
        assert pooled[0.9] == pytest.approx(12e-3, rel=0.1)

    def test_campaign_sla_check(self, prefix_pair):
        scenario = configured_scenario(seed=92)
        campaign = MeasurementCampaign(
            scenario,
            target="X",
            configs={d.name: TEST_CONFIG for d in scenario.path.domains},
        )
        result = campaign.run(self._interval_traces(prefix_pair, count=2))
        strict = SLASpec(delay_bound=5e-3, delay_quantile=0.9, loss_bound=0.01)
        relaxed = SLASpec(delay_bound=50e-3, delay_quantile=0.9, loss_bound=0.5)
        assert not result.check_sla(strict).compliant
        assert result.check_sla(relaxed).compliant

    def test_campaign_detects_lying_intervals(self, prefix_pair):
        scenario = configured_scenario(seed=93)

        def liar_factory(path):
            return {"X": LyingDomainAgent("X", path, config=TEST_CONFIG)}

        campaign = MeasurementCampaign(
            scenario,
            target="X",
            observer="L",
            configs={d.name: TEST_CONFIG for d in scenario.path.domains},
            agents_factory=liar_factory,
        )
        result = campaign.run(self._interval_traces(prefix_pair, count=2))
        assert result.acceptance_rate == 0.0

    def test_empty_campaign_is_benign(self):
        scenario = configured_scenario(seed=94)
        campaign = MeasurementCampaign(scenario, target="X")
        result = campaign.result()
        assert result.interval_count == 0
        assert result.loss_rate == 0.0
        assert result.acceptance_rate == 1.0
        assert result.pooled_delay_quantiles() == {}

    def test_pooled_equals_merged(self, prefix_pair):
        """The incremental MergedDelayPool must equal one-shot re-pooling."""
        import numpy as np

        scenario = configured_scenario(seed=95)
        campaign = MeasurementCampaign(
            scenario,
            target="X",
            configs={d.name: TEST_CONFIG for d in scenario.path.domains},
        )
        result = campaign.run(self._interval_traces(prefix_pair, count=3))

        raw = np.asarray(
            [delay for interval in result.intervals for delay in interval.delay_samples]
        )
        pooled = np.sort(raw)
        merged = np.asarray(result.delay_pool().sorted_samples)
        assert np.array_equal(merged, pooled)

        # and the quantiles the campaign reports come out identical to the
        # naive re-pool-every-time computation the old implementation did
        from repro.core.estimation import estimate_delay_quantiles

        naive = {
            quantile: estimate.estimate
            for quantile, estimate in estimate_delay_quantiles(
                raw, result.quantiles
            ).items()
        }
        assert result.pooled_delay_quantiles() == naive

    def test_result_pool_snapshot_is_stable(self, prefix_pair):
        """A returned result must not see samples from later intervals."""
        scenario = configured_scenario(seed=96)
        campaign = MeasurementCampaign(
            scenario,
            target="X",
            configs={d.name: TEST_CONFIG for d in scenario.path.domains},
        )
        traces = self._interval_traces(prefix_pair, count=2)
        campaign.run_interval(traces[0])
        first = campaign.result()
        count_before = first.delay_pool().sample_count
        campaign.run_interval(traces[1])
        assert first.delay_pool().sample_count == count_before
        assert campaign.result().delay_pool().sample_count > count_before
