"""Unit tests for the Section-3 baseline protocols."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.base import MeasurementProtocol
from repro.baselines.difference_aggregator import DifferenceAggregatorPlusPlus
from repro.baselines.strawman import StrawmanProtocol
from repro.baselines.trajectory_sampling import TrajectorySamplingPlusPlus
from repro.baselines.vpm_adapter import VPMProtocolAdapter
from repro.net.hashing import MASK64


def make_observations(
    count: int = 20_000,
    loss_rate: float = 0.1,
    delay: float = 5e-3,
    seed: int = 0,
) -> tuple[list[tuple[int, float]], list[tuple[int, float]], float]:
    """Synthetic ingress/egress observations with known loss and delay."""
    rng = np.random.default_rng(seed)
    digests = rng.integers(0, MASK64, size=count, dtype=np.uint64)
    times = np.arange(count) / 100_000.0
    ingress = [(int(digest), float(time)) for digest, time in zip(digests, times)]
    keep = rng.random(count) >= loss_rate
    egress = [
        (int(digest), float(time) + delay)
        for digest, time, kept in zip(digests, times, keep)
        if kept
    ]
    true_loss = 1.0 - keep.mean()
    return ingress, egress, float(true_loss)


class TestStrawman:
    def test_exact_loss_and_delay(self):
        ingress, egress, true_loss = make_observations(seed=1)
        estimate = StrawmanProtocol().run(ingress, egress)
        assert estimate.loss_rate == pytest.approx(true_loss, abs=1e-9)
        assert estimate.mean_delay == pytest.approx(5e-3, abs=1e-9)
        assert estimate.delay_quantiles[0.9] == pytest.approx(5e-3, abs=1e-9)

    def test_receipt_cost_is_per_packet(self):
        ingress, egress, _ = make_observations(count=1000, seed=2)
        estimate = StrawmanProtocol().run(ingress, egress)
        assert estimate.receipt_bytes == 7 * (len(ingress) + len(egress))
        assert estimate.receipt_bytes_per_packet > 10

    def test_not_predictable(self):
        assert StrawmanProtocol.sampling_predictable is False
        with pytest.raises(NotImplementedError):
            StrawmanProtocol().measurement_predicate(1)

    def test_empty_observations(self):
        estimate = StrawmanProtocol().run([], [])
        assert estimate.loss_rate is None
        assert estimate.mean_delay is None


class TestTrajectorySampling:
    def test_loss_and_delay_estimated_from_samples(self):
        ingress, egress, true_loss = make_observations(seed=3)
        estimate = TrajectorySamplingPlusPlus(sampling_rate=0.05).run(ingress, egress)
        assert estimate.loss_rate == pytest.approx(true_loss, abs=0.03)
        assert estimate.mean_delay == pytest.approx(5e-3, abs=1e-6)
        assert estimate.delay_quantiles is not None

    def test_receipt_cost_scales_with_sampling_rate(self):
        ingress, egress, _ = make_observations(seed=4)
        low = TrajectorySamplingPlusPlus(sampling_rate=0.01).run(ingress, egress)
        high = TrajectorySamplingPlusPlus(sampling_rate=0.1).run(ingress, egress)
        assert high.receipt_bytes > 5 * low.receipt_bytes
        assert low.receipt_bytes_per_packet < 1.0

    def test_sampling_is_predictable(self):
        protocol = TrajectorySamplingPlusPlus(sampling_rate=0.5)
        assert protocol.sampling_predictable is True
        # The predicate is a pure function of the digest, so it can be
        # evaluated before the packet is forwarded.
        values = [protocol.measurement_predicate(digest) for digest in range(1000)]
        assert any(values) and not all(values)

    def test_sampled_fraction_near_rate(self):
        protocol = TrajectorySamplingPlusPlus(sampling_rate=0.1)
        rng = np.random.default_rng(5)
        digests = rng.integers(0, MASK64, size=50_000, dtype=np.uint64)
        fraction = np.mean([protocol.measurement_predicate(int(d)) for d in digests])
        assert fraction == pytest.approx(0.1, rel=0.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            TrajectorySamplingPlusPlus(sampling_rate=0.0)


class TestDifferenceAggregator:
    def test_exact_loss_when_aligned(self):
        ingress, egress, true_loss = make_observations(seed=6)
        estimate = DifferenceAggregatorPlusPlus(expected_aggregate_size=500).run(
            ingress, egress
        )
        assert estimate.loss_rate == pytest.approx(true_loss, abs=0.02)

    def test_mean_delay_from_lossless_aggregates(self):
        ingress, egress, _ = make_observations(loss_rate=0.0, delay=3e-3, seed=7)
        estimate = DifferenceAggregatorPlusPlus(expected_aggregate_size=500).run(
            ingress, egress
        )
        assert estimate.mean_delay == pytest.approx(3e-3, abs=1e-6)

    def test_no_delay_quantiles(self):
        ingress, egress, _ = make_observations(seed=8)
        estimate = DifferenceAggregatorPlusPlus().run(ingress, egress)
        assert estimate.delay_quantiles is None

    def test_cheap_receipts(self):
        ingress, egress, _ = make_observations(seed=9)
        estimate = DifferenceAggregatorPlusPlus(expected_aggregate_size=1000).run(
            ingress, egress
        )
        assert estimate.receipt_bytes_per_packet < 0.2

    def test_reordering_breaks_alignment(self):
        # Reorder egress observations within a window large enough to move
        # cutting points: many aggregates become unmatched, and the loss
        # estimate degrades or disappears (the Section 3.3 failure).
        ingress, egress, _ = make_observations(count=20_000, loss_rate=0.0, seed=10)
        rng = np.random.default_rng(11)
        perturbed = sorted(
            ((digest, time + rng.uniform(0, 2e-3)) for digest, time in egress),
            key=lambda item: item[1],
        )
        aligned = DifferenceAggregatorPlusPlus(expected_aggregate_size=200).run(
            ingress, egress
        )
        broken = DifferenceAggregatorPlusPlus(expected_aggregate_size=200).run(
            ingress, perturbed
        )
        assert aligned.loss_rate == pytest.approx(0.0, abs=1e-9)
        # Under reordering the protocol either loses comparable aggregates or
        # reports spurious loss.
        assert broken.loss_rate is None or broken.loss_rate > 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            DifferenceAggregatorPlusPlus(expected_aggregate_size=0)


class TestVPMAdapter:
    def test_estimates_loss_and_quantiles(self):
        ingress, egress, true_loss = make_observations(seed=12)
        estimate = VPMProtocolAdapter(
            sampling_rate=0.05, expected_aggregate_size=500
        ).run(ingress, egress)
        assert estimate.loss_rate == pytest.approx(true_loss, abs=0.02)
        assert estimate.delay_quantiles is not None
        assert estimate.delay_quantiles[0.9] == pytest.approx(5e-3, abs=1e-4)

    def test_not_predictable(self):
        adapter = VPMProtocolAdapter()
        assert adapter.sampling_predictable is False
        with pytest.raises(NotImplementedError):
            adapter.measurement_predicate(1)

    def test_receipt_cost_between_lda_and_strawman(self):
        ingress, egress, _ = make_observations(seed=13)
        strawman = StrawmanProtocol().run(ingress, egress)
        lda = DifferenceAggregatorPlusPlus(expected_aggregate_size=1000).run(ingress, egress)
        vpm = VPMProtocolAdapter(sampling_rate=0.01, expected_aggregate_size=1000).run(
            ingress, egress
        )
        assert lda.receipt_bytes < vpm.receipt_bytes < strawman.receipt_bytes


class TestProtocolInterface:
    def test_all_protocols_share_interface(self):
        for protocol in (
            StrawmanProtocol(),
            TrajectorySamplingPlusPlus(),
            DifferenceAggregatorPlusPlus(),
            VPMProtocolAdapter(),
        ):
            assert isinstance(protocol, MeasurementProtocol)
            assert isinstance(protocol.name, str) and protocol.name
