"""Unit tests for the typed campaign event stream (`on_event`)."""

from __future__ import annotations

from pathlib import Path

from repro.api.spec import (
    CampaignSpec,
    ConditionSpec,
    ExecutionPolicy,
    ExperimentSpec,
    HOPSpec,
    PathSpec,
    ProtocolSpec,
    SLATargetSpec,
    TrafficSpec,
)
from repro.engine.campaign import (
    CampaignRunner,
    CheckpointWritten,
    IntervalCommitted,
    RunComplete,
)
from repro.store import RunStore


def _spec(intervals: int = 2, packet_count: int = 300) -> CampaignSpec:
    return CampaignSpec(
        name="events-test",
        intervals=intervals,
        cell=ExperimentSpec(
            seed=47,
            traffic=TrafficSpec(workload=None, packet_count=packet_count),
            path=PathSpec(
                conditions={
                    "X": ConditionSpec(
                        delay="jitter",
                        delay_params={"base_delay": 1e-3, "jitter_std": 0.2e-3},
                    )
                }
            ),
            protocol=ProtocolSpec(
                default=HOPSpec(sampling_rate=0.2, marker_rate=0.02, aggregate_size=150)
            ),
        ),
        sla=SLATargetSpec(delay_bound=10e-3, delay_quantile=0.9, loss_bound=0.05),
    )


def test_event_stream_order_and_payloads(tmp_path):
    spec = _spec(intervals=2)
    store = RunStore.create(tmp_path / "run", spec)
    events = []
    outcome = CampaignRunner(spec, store).run(on_event=events.append)

    assert outcome.completed
    kinds = [type(event).__name__ for event in events]
    assert kinds == ["IntervalCommitted", "IntervalCommitted", "RunComplete"]
    first, second, final = events
    assert (first.interval, second.interval) == (0, 1)
    assert first.intervals == second.intervals == final.intervals == 2
    assert first.record["receipts_digest"]
    assert final.summary == store.summary()


def test_events_fire_after_durable_state(tmp_path):
    spec = _spec(intervals=2)
    store = RunStore.create(tmp_path / "run", spec)
    observed: list[tuple[str, int]] = []

    def sink(event):
        # At the instant an event fires, the store already holds the state
        # the event announces — a consumer crash never observes phantom
        # progress.
        if isinstance(event, IntervalCommitted):
            observed.append(("records", len(store.records())))
            assert store.records()[-1]["interval"] == event.interval
        elif isinstance(event, RunComplete):
            observed.append(("summary", store.summary()["intervals"]))

    CampaignRunner(spec, store).run(on_event=sink)
    assert observed == [("records", 1), ("records", 2), ("summary", 2)]


def test_on_interval_hook_still_supported(tmp_path):
    spec = _spec(intervals=2)
    store = RunStore.create(tmp_path / "run", spec)
    via_hook = []
    via_events = []
    CampaignRunner(spec, store).run(
        on_interval=via_hook.append,
        on_event=lambda event: (
            via_events.append(event.record)
            if isinstance(event, IntervalCommitted)
            else None
        ),
    )
    assert via_hook == via_events == store.records()


def test_checkpoint_events_on_streaming_policy(tmp_path):
    spec = _spec(intervals=1, packet_count=300)
    store = RunStore.create(tmp_path / "run", spec)
    policy = ExecutionPolicy(engine="streaming", chunk_size=100, checkpoint_every=1)
    events = []
    CampaignRunner(spec, store, policy=policy).run(on_event=events.append)

    checkpoints = [e for e in events if isinstance(e, CheckpointWritten)]
    assert checkpoints, "checkpoint_every=1 must surface CheckpointWritten events"
    assert all(event.interval == 0 for event in checkpoints)
    chunk_indices = [event.chunk_index for event in checkpoints]
    assert chunk_indices == sorted(chunk_indices)
    # Checkpoints interleave inside the interval: all precede its commit.
    commit_position = next(
        i for i, e in enumerate(events) if isinstance(e, IntervalCommitted)
    )
    assert all(
        i < commit_position
        for i, e in enumerate(events)
        if isinstance(e, CheckpointWritten)
    )
    # The finished store carries no checkpoint residue.
    assert not (Path(store.path) / CampaignRunner.CHECKPOINT_NAME).exists()


def test_event_sink_restored_after_run(tmp_path):
    spec = _spec(intervals=2)
    store = RunStore.create(tmp_path / "run", spec)
    runner = CampaignRunner(spec, store)
    runner.run(max_intervals=1, on_event=lambda event: None)
    assert runner._event_sink is None
    # A second run without a sink emits nothing and completes normally.
    outcome = runner.run()
    assert outcome.completed
