"""Unit tests for repro.core.partition (partition algebra + receipt alignment)."""

from __future__ import annotations

import pytest

from repro.core.partition import (
    AlignedAggregates,
    PartitionSet,
    align_aggregate_receipts,
    aligned_aggregates,
    is_coarser,
    join_partitions,
)
from repro.core.receipts import AggregateReceipt, PathID


@pytest.fixture()
def path_id(prefix_pair) -> PathID:
    return PathID(
        prefix_pair=prefix_pair, reporting_hop=4, previous_hop=3, next_hop=5, max_diff=1e-3
    )


def make_receipt(
    path_id: PathID,
    first: int,
    last: int,
    count: int,
    start: float,
    end: float,
    trans_before: tuple[int, ...] = (),
    trans_after: tuple[int, ...] = (),
) -> AggregateReceipt:
    return AggregateReceipt(
        path_id=path_id,
        first_pkt_id=first,
        last_pkt_id=last,
        pkt_count=count,
        start_time=start,
        end_time=end,
        time_sum=count * (start + end) / 2,
        trans_before=trans_before,
        trans_after=trans_after,
    )


class TestPartitionAlgebra:
    """The Table-1 examples from Section 6.1."""

    def test_table1_coarser_relations(self):
        items = ("p1", "p2", "p3", "p4")
        a1 = PartitionSet.from_lists([["p1"], ["p2"], ["p3"], ["p4"]])
        a2 = PartitionSet.from_lists([["p1", "p2"], ["p3", "p4"]])
        a3 = PartitionSet.from_lists([["p1"], ["p2", "p3"], ["p4"]])
        a3_prime = PartitionSet.from_lists([["p1"], ["p2"], ["p3", "p4"]])
        a4 = PartitionSet.from_lists([["p1", "p2", "p3", "p4"]])
        assert is_coarser(a2, a1)
        assert is_coarser(a3, a1)
        assert is_coarser(a4, a2)
        assert is_coarser(a4, a3)
        assert not is_coarser(a2, a3)
        assert not is_coarser(a3, a2)
        # A'3 = {{p1},{p2},{p3,p4}} is finer than A2 = {{p1,p2},{p3,p4}}:
        # every aggregate of A2 is a union of A'3 aggregates.
        assert is_coarser(a2, a3_prime)
        assert set(a2.cut_indices) <= set(a3_prime.cut_indices)
        assert a1.items == items

    def test_table1_joins(self):
        a1 = PartitionSet.from_lists([["p1"], ["p2"], ["p3"], ["p4"]])
        a2 = PartitionSet.from_lists([["p1", "p2"], ["p3", "p4"]])
        a3 = PartitionSet.from_lists([["p1"], ["p2", "p3"], ["p4"]])
        a3_prime = PartitionSet.from_lists([["p1"], ["p2"], ["p3", "p4"]])
        a4 = PartitionSet.from_lists([["p1", "p2", "p3", "p4"]])
        assert join_partitions(a1, a2) == a2
        assert join_partitions(a2, a3) == a4
        assert join_partitions(a2, a3_prime) == a2

    def test_join_is_coarser_than_inputs(self):
        a2 = PartitionSet.from_lists([["p1", "p2"], ["p3", "p4"]])
        a3 = PartitionSet.from_lists([["p1"], ["p2", "p3"], ["p4"]])
        joined = join_partitions(a2, a3)
        assert is_coarser(joined, a2)
        assert is_coarser(joined, a3)

    def test_join_single_partition_is_identity(self):
        a3 = PartitionSet.from_lists([["p1"], ["p2", "p3"], ["p4"]])
        assert join_partitions(a3) == a3

    def test_from_cut_indices(self):
        partition = PartitionSet.from_cut_indices(["a", "b", "c", "d"], [2])
        assert partition.aggregates == (("a", "b"), ("c", "d"))
        assert partition.cutting_points == ("a", "c")

    def test_from_cut_indices_validation(self):
        with pytest.raises(ValueError):
            PartitionSet.from_cut_indices(["a", "b"], [5])

    def test_empty_aggregate_rejected(self):
        with pytest.raises(ValueError):
            PartitionSet.from_lists([[]])

    def test_mismatched_underlying_sets_rejected(self):
        a = PartitionSet.from_lists([["p1", "p2"]])
        b = PartitionSet.from_lists([["p1", "p3"]])
        with pytest.raises(ValueError):
            is_coarser(a, b)
        with pytest.raises(ValueError):
            join_partitions(a, b)

    def test_join_requires_at_least_one(self):
        with pytest.raises(ValueError):
            join_partitions()

    def test_iteration_and_len(self):
        partition = PartitionSet.from_lists([["p1"], ["p2", "p3"]])
        assert len(partition) == 2
        assert list(partition) == [("p1",), ("p2", "p3")]


class TestReceiptAlignment:
    def test_identical_partitions_align_one_to_one(self, path_id):
        upstream = [
            make_receipt(path_id, 1, 9, 10, 0.0, 0.1),
            make_receipt(path_id, 10, 19, 10, 0.1, 0.2),
        ]
        downstream = [
            make_receipt(path_id, 1, 9, 10, 0.0, 0.1),
            make_receipt(path_id, 10, 19, 10, 0.1, 0.2),
        ]
        pairs = align_aggregate_receipts(upstream, downstream)
        assert len(pairs) == 2
        for up, down in pairs:
            assert up.pkt_count == down.pkt_count

    def test_coarser_downstream_combines_upstream(self, path_id):
        # Downstream lost the second cutting point: its middle aggregates merge.
        upstream = [
            make_receipt(path_id, 1, 9, 10, 0.0, 0.1),
            make_receipt(path_id, 10, 19, 10, 0.1, 0.2),
            make_receipt(path_id, 20, 29, 10, 0.2, 0.3),
        ]
        downstream = [
            make_receipt(path_id, 1, 9, 10, 0.0, 0.1),
            make_receipt(path_id, 10, 29, 19, 0.1, 0.3),  # one packet lost too
        ]
        pairs = aligned_aggregates(upstream, downstream)
        assert len(pairs) == 2
        assert pairs[0].lost_packets == 0
        assert pairs[1].upstream.pkt_count == 20
        assert pairs[1].downstream.pkt_count == 19
        assert pairs[1].lost_packets == 1

    def test_no_common_boundary_collapses_to_single_pair(self, path_id):
        upstream = [
            make_receipt(path_id, 1, 9, 10, 0.0, 0.1),
            make_receipt(path_id, 10, 19, 10, 0.1, 0.2),
        ]
        downstream = [make_receipt(path_id, 1, 19, 17, 0.0, 0.2)]
        pairs = aligned_aggregates(upstream, downstream)
        assert len(pairs) == 1
        assert pairs[0].upstream.pkt_count == 20
        assert pairs[0].downstream.pkt_count == 17
        assert pairs[0].lost_packets == 3

    def test_empty_inputs_give_no_pairs(self, path_id):
        assert align_aggregate_receipts([], []) == []
        assert align_aggregate_receipts(
            [make_receipt(path_id, 1, 2, 3, 0.0, 0.1)], []
        ) == []

    def test_reordering_patch_migrates_packet(self, path_id):
        # Packet 77 was observed just before the cut upstream but just after
        # it downstream; the patch-up migrates it back so counts agree.
        upstream = [
            make_receipt(
                path_id, 1, 77, 10, 0.0, 0.1, trans_before=(5, 77), trans_after=(100, 6)
            ),
            make_receipt(path_id, 100, 120, 10, 0.1, 0.2),
        ]
        downstream = [
            make_receipt(
                path_id, 1, 5, 9, 0.0, 0.1, trans_before=(5,), trans_after=(100, 77, 6)
            ),
            make_receipt(path_id, 100, 120, 11, 0.1, 0.2),
        ]
        with_patch = aligned_aggregates(upstream, downstream, apply_reordering_patch=True)
        without_patch = aligned_aggregates(
            upstream, downstream, apply_reordering_patch=False
        )
        # Without the patch the counts disagree in both aggregates.
        assert [pair.lost_packets for pair in without_patch] == [1, -1]
        # With the patch the migrated packet makes both aggregates agree.
        assert [pair.lost_packets for pair in with_patch] == [0, 0]
        assert with_patch[0].migrated_packets == 1

    def test_reordering_patch_migrates_in_both_directions(self, path_id):
        # Packet 88 moved the other way: after the cut upstream, before it
        # downstream.
        upstream = [
            make_receipt(
                path_id, 1, 5, 9, 0.0, 0.1, trans_before=(5,), trans_after=(100, 88)
            ),
            make_receipt(path_id, 100, 120, 11, 0.1, 0.2),
        ]
        downstream = [
            make_receipt(
                path_id, 1, 88, 10, 0.0, 0.1, trans_before=(5, 88), trans_after=(100,)
            ),
            make_receipt(path_id, 100, 120, 10, 0.1, 0.2),
        ]
        pairs = aligned_aggregates(upstream, downstream)
        assert [pair.lost_packets for pair in pairs] == [0, 0]
        assert pairs[0].migrated_packets == -1

    def test_aligned_pair_duration_uses_upstream(self, path_id):
        upstream = [make_receipt(path_id, 1, 9, 10, 0.0, 0.5)]
        downstream = [make_receipt(path_id, 1, 9, 10, 0.1, 0.4)]
        pair = aligned_aggregates(upstream, downstream)[0]
        assert pair.duration == pytest.approx(0.5)
        assert isinstance(pair, AlignedAggregates)
