"""Unit tests for :class:`ExecutionPolicy` and the shard-span arithmetic."""

from __future__ import annotations

import pytest

from repro.api.spec import (
    ConditionSpec,
    ExecutionPolicy,
    ExperimentSpec,
    MeshSpec,
    PathSpec,
    TopologySpec,
    TrafficSpec,
)
from repro.engine.streaming import _shard_bounds


def _path_spec(engine: str = "batch") -> ExperimentSpec:
    return ExperimentSpec(
        traffic=TrafficSpec(workload=None, packet_count=100),
        path=PathSpec(conditions={"X": ConditionSpec()}),
        engine=engine,
    )


def _mesh_spec() -> MeshSpec:
    return MeshSpec(
        seed=3,
        topology=TopologySpec(kind="star", params={"path_count": 2}, seed=0),
        traffic=TrafficSpec(workload=None, packet_count=100),
    )


class TestValidation:
    def test_defaults_are_valid(self):
        policy = ExecutionPolicy()
        assert policy.engine is None
        assert policy.shards == 1
        assert policy.chunk_size is None
        assert policy.throttle == 0.0
        assert policy.checkpoint_every is None

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="engine must be"):
            ExecutionPolicy(engine="warp")

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"shards": 0},
            {"chunk_size": 0},
            {"throttle": -1.0},
            {"checkpoint_every": 0},
        ],
    )
    def test_out_of_range_knobs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ExecutionPolicy(engine="streaming", **kwargs)

    def test_checkpointing_needs_single_shard(self):
        with pytest.raises(ValueError, match="requires shards=1"):
            ExecutionPolicy(engine="streaming", shards=2, checkpoint_every=4)

    @pytest.mark.parametrize(
        "kwargs", [{"shards": 2}, {"chunk_size": 64}, {"checkpoint_every": 2}]
    )
    def test_streaming_knobs_rejected_on_explicit_batch(self, kwargs):
        with pytest.raises(ValueError, match="use engine='streaming'"):
            ExecutionPolicy(engine="batch", **kwargs)

    def test_streaming_knobs_allowed_when_engine_deferred(self):
        # engine=None defers the decision to bind(); the knobs stay legal
        # until the effective engine turns out not to be streaming.
        policy = ExecutionPolicy(shards=4, chunk_size=64)
        assert policy.bind(_path_spec(engine="streaming")).engine == "streaming"
        with pytest.raises(ValueError, match="does not support shards"):
            policy.bind(_path_spec(engine="batch"))


class TestCoerce:
    def test_kwargs_build_a_policy(self):
        policy = ExecutionPolicy.coerce(None, engine="streaming", shards=3)
        assert policy == ExecutionPolicy(engine="streaming", shards=3)

    def test_ready_policy_passes_through(self):
        policy = ExecutionPolicy(engine="streaming")
        assert ExecutionPolicy.coerce(policy) is policy

    def test_policy_plus_kwargs_is_ambiguous(self):
        with pytest.raises(ValueError, match="not both"):
            ExecutionPolicy.coerce(ExecutionPolicy(), shards=2)

    def test_non_policy_rejected(self):
        with pytest.raises(ValueError, match="must be an ExecutionPolicy"):
            ExecutionPolicy.coerce({"engine": "batch"})


class TestBind:
    def test_fills_engine_from_spec(self):
        bound = ExecutionPolicy().bind(_path_spec(engine="scalar"))
        assert bound.engine == "scalar"

    def test_explicit_engine_wins(self):
        bound = ExecutionPolicy(engine="streaming").bind(_path_spec(engine="batch"))
        assert bound.engine == "streaming"

    def test_mesh_has_no_scalar_engine(self):
        with pytest.raises(ValueError, match="no scalar engine"):
            ExecutionPolicy(engine="scalar").bind(_mesh_spec())

    def test_mesh_rejects_mid_interval_checkpointing(self):
        with pytest.raises(ValueError, match="interval boundaries"):
            ExecutionPolicy(engine="streaming", checkpoint_every=2).bind(_mesh_spec())


class TestRoundTrip:
    def test_json_round_trip_is_identity(self):
        policy = ExecutionPolicy(
            engine="streaming", shards=1, chunk_size=512, throttle=0.5,
            checkpoint_every=8,
        )
        assert ExecutionPolicy.from_json(policy.to_json()) == policy
        assert ExecutionPolicy.from_dict(policy.to_dict()) == policy

    def test_json_is_byte_stable(self):
        assert ExecutionPolicy().to_json() == ExecutionPolicy().to_json()

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError):
            ExecutionPolicy.from_dict({"engine": "batch", "workers": 4})

    def test_with_overrides(self):
        policy = ExecutionPolicy(engine="streaming").with_overrides({"shards": 4})
        assert policy.shards == 4
        assert policy.engine == "streaming"


class TestShardBounds:
    def test_even_split(self):
        assert _shard_bounds(8, 4) == [0, 2, 4, 6, 8]

    def test_remainder_goes_to_first_shards(self):
        assert _shard_bounds(10, 4) == [0, 3, 6, 8, 10]

    def test_more_shards_than_chunks_leaves_empty_tail_spans(self):
        assert _shard_bounds(2, 4) == [0, 1, 2, 2, 2]

    @pytest.mark.parametrize("total", [1, 5, 17, 100])
    @pytest.mark.parametrize("shards", [1, 2, 3, 7])
    def test_spans_are_balanced_and_cover_everything(self, total, shards):
        bounds = _shard_bounds(total, shards)
        spans = [stop - start for start, stop in zip(bounds, bounds[1:])]
        assert bounds[0] == 0 and bounds[-1] == total
        assert len(spans) == shards
        assert max(spans) - min(spans) <= 1
