"""Unit tests for the multi-run scan (`RunStore.list_runs`) and `RunIndex`."""

from __future__ import annotations

import pytest

from repro.api.spec import (
    CampaignSpec,
    ConditionSpec,
    ExperimentSpec,
    HOPSpec,
    PathSpec,
    ProtocolSpec,
    SLATargetSpec,
    TrafficSpec,
)
from repro.engine.campaign import CampaignRunner
from repro.service.index import RunIndex, validate_run_id
from repro.store import RunStore, RunStoreError


def _spec(name: str = "index-test", intervals: int = 2, sla: bool = True) -> CampaignSpec:
    return CampaignSpec(
        name=name,
        intervals=intervals,
        cell=ExperimentSpec(
            seed=31,
            traffic=TrafficSpec(workload=None, packet_count=300),
            path=PathSpec(
                conditions={
                    "X": ConditionSpec(
                        delay="jitter",
                        delay_params={"base_delay": 1e-3, "jitter_std": 0.2e-3},
                    )
                }
            ),
            protocol=ProtocolSpec(
                default=HOPSpec(sampling_rate=0.2, marker_rate=0.02, aggregate_size=150)
            ),
        ),
        sla=(
            SLATargetSpec(delay_bound=10e-3, delay_quantile=0.9, loss_bound=0.05)
            if sla
            else None
        ),
    )


class TestListRuns:
    def test_missing_root_is_empty(self, tmp_path):
        assert RunStore.list_runs(tmp_path / "nowhere") == []

    def test_non_directory_root_rejected(self, tmp_path):
        target = tmp_path / "file"
        target.write_text("x")
        with pytest.raises(RunStoreError, match="not a directory"):
            RunStore.list_runs(target)

    def test_lists_only_run_stores_sorted(self, tmp_path):
        spec = _spec()
        RunStore.create(tmp_path / "b-run", spec)
        RunStore.create(tmp_path / "a-run", spec)
        (tmp_path / "scratch").mkdir()  # no spec.json -> not a run
        (tmp_path / "loose-file.json").write_text("{}")  # not a directory
        assert [path.name for path in RunStore.list_runs(tmp_path)] == [
            "a-run",
            "b-run",
        ]


class TestRunIndex:
    def test_entry_tracks_progress_and_completion(self, tmp_path):
        spec = _spec(intervals=2)
        store = RunStore.create(tmp_path / "run", spec)
        index = RunIndex(tmp_path)

        entry = index.entry("run")
        assert entry.completed == 0 and not entry.complete
        assert entry.sla_compliant is None  # no summary yet
        assert entry.name == "index-test"
        assert entry.spec_hash == spec.spec_hash()

        runner = CampaignRunner(spec, store)
        runner.run(max_intervals=1)
        assert index.entry("run").completed == 1

        runner.run()
        entry = index.entry("run")
        assert entry.complete and entry.completed == 2
        assert entry.sla_compliant is True

    def test_entries_filtering(self, tmp_path):
        done = RunStore.create(tmp_path / "done", _spec(name="alpha"))
        CampaignRunner(_spec(name="alpha"), done).run()
        RunStore.create(tmp_path / "pending", _spec(name="beta"))
        index = RunIndex(tmp_path)

        assert {entry.run_id for entry in index.entries()} == {"done", "pending"}
        assert [e.run_id for e in index.entries(complete=True)] == ["done"]
        assert [e.run_id for e in index.entries(name="beta")] == ["pending"]
        assert [e.run_id for e in index.entries(sla_compliant=True)] == ["done"]
        prefix = _spec(name="alpha").spec_hash()[:8]
        assert [e.run_id for e in index.entries(spec_hash=prefix)] == ["done"]

    def test_foreign_and_torn_dirs_tolerated(self, tmp_path):
        RunStore.create(tmp_path / "good", _spec())
        foreign = tmp_path / "foreign"
        foreign.mkdir()
        (foreign / "spec.json").write_text("not json at all")
        index = RunIndex(tmp_path)
        assert [entry.run_id for entry in index.entries()] == ["good"]

    def test_torn_record_tail_not_counted(self, tmp_path):
        spec = _spec(intervals=2)
        store = RunStore.create(tmp_path / "run", spec)
        CampaignRunner(spec, store).run(max_intervals=1)
        # Simulate a kill mid-append: an uncommitted newline-less tail.
        with open(store.records_path, "ab") as handle:
            handle.write(b'{"interval": 1, "torn": ')
        entry = RunIndex(tmp_path).entry("run")
        assert entry.completed == 1 and not entry.complete

    def test_cache_invalidation_on_deletion(self, tmp_path):
        import shutil

        RunStore.create(tmp_path / "run", _spec())
        index = RunIndex(tmp_path)
        assert len(index.entries()) == 1
        shutil.rmtree(tmp_path / "run")
        assert index.entries() == []
        assert index.entry("run") is None

    def test_recreated_run_dir_not_served_from_stale_cache(self, tmp_path):
        """Regression: delete a run dir and recreate a *different* run under
        the same id — the index must serve the new spec, not the cached one.

        The cache used to key freshness on (records size, summary presence)
        alone; two distinct zero-record runs collide on both, so the stale
        name/spec_hash/intervals survived the recreation.  The spec.json
        stat signature now pins the cache to the exact spec file.
        """
        import shutil

        first = _spec(name="first-life", intervals=2)
        RunStore.create(tmp_path / "run", first)
        index = RunIndex(tmp_path)
        assert index.entry("run").name == "first-life"

        shutil.rmtree(tmp_path / "run")
        second = _spec(name="second-life", intervals=5)
        RunStore.create(tmp_path / "run", second)
        entry = index.entry("run")
        assert entry.name == "second-life"
        assert entry.spec_hash == second.spec_hash()
        assert entry.intervals == 5
        assert [e.name for e in index.entries()] == ["second-life"]

    def test_store_opens_validated(self, tmp_path):
        spec = _spec()
        RunStore.create(tmp_path / "run", spec)
        index = RunIndex(tmp_path)
        assert index.store("run").spec_hash == spec.spec_hash()
        with pytest.raises(RunStoreError, match="no run"):
            index.store("missing")


class TestValidateRunId:
    @pytest.mark.parametrize("good", ["run-1", "campaign-smoke-0123abcdef", "a.b_c"])
    def test_accepts_plain_names(self, good):
        assert validate_run_id(good) == good

    @pytest.mark.parametrize(
        "bad", ["", ".", "..", "a/b", "..\\b", "/etc", "a\x00b"]
    )
    def test_rejects_path_escapes(self, bad):
        with pytest.raises(ValueError, match="invalid run id"):
            validate_run_id(bad)
