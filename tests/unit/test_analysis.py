"""Unit tests for repro.analysis (metrics, quantiles, statistics, SLA)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.metrics import (
    delay_accuracy_report,
    loss_granularity_report,
    relative_error,
)
from repro.analysis.quantiles import empirical_quantiles, quantile_error
from repro.analysis.sla import SLASpec, check_sla
from repro.analysis.statistics import summarize
from repro.core.estimation import DelayQuantileEstimate
from repro.core.verifier import DomainPerformance
from repro.simulation.scenario import DomainGroundTruth


def make_performance(
    quantiles: dict[float, float],
    offered: int = 1000,
    lost: int = 10,
    granularity: tuple[float, ...] = (1.0, 1.2),
) -> DomainPerformance:
    estimates = {
        quantile: DelayQuantileEstimate(
            quantile=quantile,
            estimate=value,
            lower=value * 0.9,
            upper=value * 1.1,
            sample_count=500,
        )
        for quantile, value in quantiles.items()
    }
    return DomainPerformance(
        domain="X",
        delay_quantiles=estimates,
        delay_sample_count=500,
        offered_packets=offered,
        lost_packets=lost,
        loss_granularity=granularity,
    )


def make_truth(delays: list[float], lost: int = 0) -> DomainGroundTruth:
    truth = DomainGroundTruth(domain="X")
    for index, delay in enumerate(delays):
        truth.delivered[index] = (0.0, delay)
    for index in range(lost):
        truth.lost.add(10_000 + index)
    return truth


class TestRelativeError:
    def test_basic(self):
        assert relative_error(11.0, 10.0) == pytest.approx(0.1)

    def test_zero_truth(self):
        assert relative_error(0.0, 0.0) == 0.0
        assert relative_error(1.0, 0.0) == float("inf")


class TestDelayAccuracyReport:
    def test_max_error_is_worst_quantile(self):
        performance = make_performance({0.5: 5e-3, 0.9: 10e-3})
        report = delay_accuracy_report(performance, {0.5: 5e-3, 0.9: 12e-3})
        assert report.max_error == pytest.approx(2e-3)
        assert report.max_error_ms == pytest.approx(2.0)
        assert report.mean_error == pytest.approx(1e-3)
        assert report.sample_count == 500

    def test_accepts_ground_truth_object(self):
        performance = make_performance({0.5: 5e-3})
        truth = make_truth([5e-3] * 100)
        report = delay_accuracy_report(performance, truth, quantiles=(0.5,))
        assert report.max_error == pytest.approx(0.0, abs=1e-9)

    def test_plain_mapping_estimates_accepted(self):
        report = delay_accuracy_report({0.9: 4e-3}, {0.9: 6e-3})
        assert report.max_error == pytest.approx(2e-3)

    def test_empty_estimates_rejected(self):
        performance = make_performance({})
        with pytest.raises(ValueError):
            delay_accuracy_report(performance, {0.5: 1e-3})

    def test_disjoint_quantiles_rejected(self):
        with pytest.raises(ValueError):
            delay_accuracy_report({0.5: 1e-3}, {0.9: 1e-3})


class TestLossGranularityReport:
    def test_report_fields(self):
        performance = make_performance({}, offered=1000, lost=100, granularity=(1.0, 2.0))
        truth = make_truth([1e-3] * 900, lost=100)
        report = loss_granularity_report(performance, truth)
        assert report.mean_granularity_seconds == pytest.approx(1.5)
        assert report.computed_loss_rate == pytest.approx(0.1)
        assert report.true_loss_rate == pytest.approx(0.1)
        assert report.loss_rate_error == pytest.approx(0.0)


class TestQuantileHelpers:
    def test_empirical_quantiles(self):
        values = np.arange(101, dtype=float)
        result = empirical_quantiles(values, (0.5, 0.9))
        assert result[0.5] == pytest.approx(50.0)
        assert result[0.9] == pytest.approx(90.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            empirical_quantiles([], (0.5,))

    def test_quantile_error(self):
        errors = quantile_error({0.5: 1.0, 0.9: 2.0}, {0.5: 1.5, 0.9: 2.0})
        assert errors == {0.5: pytest.approx(0.5), 0.9: pytest.approx(0.0)}

    def test_quantile_error_disjoint_rejected(self):
        with pytest.raises(ValueError):
            quantile_error({0.5: 1.0}, {0.9: 1.0})


class TestSummary:
    def test_summarize_fields(self):
        summary = summarize(np.arange(1, 101, dtype=float))
        assert summary.count == 100
        assert summary.mean == pytest.approx(50.5)
        assert summary.minimum == 1.0
        assert summary.maximum == 100.0
        assert summary.median == pytest.approx(50.5)
        assert summary.p90 > summary.median
        assert "p99" in summary.as_dict()

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])


class TestSLA:
    def test_compliant_domain(self):
        performance = make_performance({0.9: 5e-3}, offered=10_000, lost=5)
        sla = SLASpec(delay_bound=50e-3, delay_quantile=0.9, loss_bound=0.001)
        verdict = check_sla(performance, sla)
        assert verdict.compliant
        assert verdict.delay_compliant and verdict.loss_compliant
        assert "ok" in str(verdict)

    def test_delay_violation(self):
        performance = make_performance({0.9: 80e-3})
        sla = SLASpec(delay_bound=50e-3, delay_quantile=0.9, loss_bound=0.5)
        verdict = check_sla(performance, sla)
        assert not verdict.delay_compliant
        assert not verdict.compliant
        assert "VIOLATED" in str(verdict)

    def test_loss_violation(self):
        performance = make_performance({0.9: 1e-3}, offered=1000, lost=100)
        sla = SLASpec(delay_bound=50e-3, loss_bound=0.01)
        verdict = check_sla(performance, sla)
        assert not verdict.loss_compliant

    def test_confidence_bound_forgives_borderline_estimate(self):
        # Point estimate slightly above the bound, lower confidence bound
        # below it: with confidence bounds the verdict is compliant, without
        # them it is a violation.
        performance = make_performance({0.9: 52e-3})
        sla = SLASpec(delay_bound=50e-3, delay_quantile=0.9, loss_bound=1.0)
        assert check_sla(performance, sla, use_confidence_bounds=True).delay_compliant
        assert not check_sla(performance, sla, use_confidence_bounds=False).delay_compliant

    def test_unknown_dimensions_count_as_compliant(self):
        performance = DomainPerformance(domain="X")
        verdict = check_sla(performance, SLASpec())
        assert verdict.delay_compliant is None
        assert verdict.loss_compliant is None
        assert verdict.compliant

    def test_sla_validation(self):
        with pytest.raises(ValueError):
            SLASpec(delay_bound=-1.0)
        with pytest.raises(ValueError):
            SLASpec(loss_bound=2.0)
