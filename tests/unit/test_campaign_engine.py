"""Unit tests for the checkpointable campaign engine (CampaignRunner)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import Experiment
from repro.api.spec import (
    CampaignSpec,
    ConditionSpec,
    EstimationSpec,
    ExperimentSpec,
    HOPSpec,
    MeshSpec,
    PathSpec,
    ProtocolSpec,
    SLATargetSpec,
    TopologySpec,
    TrafficSpec,
)
from repro.engine.campaign import (
    CampaignAccumulator,
    CampaignRunner,
    interval_record,
)
from repro.store import RunStore


def _cell(packet_count: int = 500) -> ExperimentSpec:
    return ExperimentSpec(
        name="campaign-cell",
        seed=17,
        traffic=TrafficSpec(workload=None, packet_count=packet_count),
        path=PathSpec(
            conditions={
                "X": ConditionSpec(
                    delay="jitter",
                    delay_params={"base_delay": 1e-3, "jitter_std": 0.3e-3},
                    loss="bernoulli",
                    loss_params={"loss_rate": 0.03},
                )
            }
        ),
        protocol=ProtocolSpec(
            default=HOPSpec(sampling_rate=0.2, marker_rate=0.02, aggregate_size=200)
        ),
        estimation=EstimationSpec(observer="S", targets=("X",)),
    )


def _spec(intervals: int = 3, sla: bool = True, **cell_kwargs) -> CampaignSpec:
    return CampaignSpec(
        name="unit-campaign",
        intervals=intervals,
        cell=_cell(**cell_kwargs),
        sla=SLATargetSpec(delay_bound=10e-3, delay_quantile=0.9, loss_bound=0.1)
        if sla
        else None,
    )


class TestIntervalDerivation:
    def test_intervals_are_distinct_and_deterministic(self):
        spec = _spec()
        seeds = {spec.interval_seed(index) for index in range(3)}
        assert len(seeds) == 3
        assert spec.interval_cell(1) == spec.interval_cell(1)
        assert spec.interval_cell(0) != spec.interval_cell(1)

    def test_pinned_traffic_seed_is_respaced_per_interval(self):
        import dataclasses

        cell = _cell()
        pinned = dataclasses.replace(
            cell, traffic=dataclasses.replace(cell.traffic, seed=777)
        )
        spec = CampaignSpec(intervals=2, cell=pinned)
        seeds = {spec.interval_cell(index).traffic.seed for index in range(2)}
        assert len(seeds) == 2
        assert 777 not in seeds

    def test_interval_record_is_pure(self):
        spec = _spec(intervals=2)
        assert interval_record(spec, 0) == interval_record(spec, 0)
        assert interval_record(spec, 0) != interval_record(spec, 1)

    def test_interval_index_bounds(self):
        spec = _spec(intervals=2)
        with pytest.raises(ValueError, match="out of range"):
            spec.interval_seed(2)

    def test_sla_quantile_must_be_estimated(self):
        """An SLA at a never-estimated quantile would silently always pass."""
        with pytest.raises(ValueError, match="only estimates"):
            CampaignSpec(
                intervals=1,
                cell=_cell(),
                sla=SLATargetSpec(delay_quantile=0.999),
            )

    def test_mesh_topology_is_fixed_across_intervals(self):
        """Intervals vary traffic/conditions, never the network under contract."""
        spec = CampaignSpec(
            intervals=3,
            cell=MeshSpec(
                seed=11,
                topology=TopologySpec(kind="mesh-random", params={"path_count": 3}),
                traffic=TrafficSpec(workload=None, packet_count=300),
            ),
        )
        built = [
            spec.interval_cell(index).topology.build(
                spec.interval_cell(index).seed
            )
            for index in range(3)
        ]
        reference_paths = [str(path) for _, paths in built[:1] for path in paths]
        for _, paths in built[1:]:
            assert [str(path) for path in paths] == reference_paths
        # while traffic still differs per interval
        seeds = {
            spec.interval_cell(index).traffic_seed(0) for index in range(3)
        }
        assert len(seeds) == 3


class TestCampaignRunner:
    def test_resume_equals_uninterrupted_byte_for_byte(self, tmp_path):
        spec = _spec(intervals=4)
        full = RunStore.create(tmp_path / "full", spec)
        CampaignRunner(spec, full).run()

        part = RunStore.create(tmp_path / "part", spec)
        CampaignRunner(spec, part).run(max_intervals=2)
        assert part.record_count == 2
        outcome = CampaignRunner.resume(str(tmp_path / "part")).run()
        assert outcome.completed and outcome.intervals_run == 2
        assert part.digest() == full.digest()
        assert (tmp_path / "part" / "records.jsonl").read_bytes() == (
            tmp_path / "full" / "records.jsonl"
        ).read_bytes()
        assert (tmp_path / "part" / "summary.json").read_bytes() == (
            tmp_path / "full" / "summary.json"
        ).read_bytes()

    def test_engines_write_identical_stores(self, tmp_path):
        spec = _spec(intervals=2)
        stores = {}
        for label, knobs in {
            "batch": {},
            "scalar": {"engine": "scalar"},
            "streaming": {"engine": "streaming", "chunk_size": 128},
        }.items():
            store = RunStore.create(tmp_path / label, spec)
            CampaignRunner(spec, store, **knobs).run()
            stores[label] = store.digest()
        assert stores["batch"] == stores["scalar"] == stores["streaming"]

    def test_resume_on_different_engine(self, tmp_path):
        spec = _spec(intervals=3)
        full = RunStore.create(tmp_path / "full", spec)
        CampaignRunner(spec, full).run()
        mixed = RunStore.create(tmp_path / "mixed", spec)
        CampaignRunner(spec, mixed, engine="streaming", chunk_size=100).run(
            max_intervals=1
        )
        CampaignRunner.resume(mixed, engine="scalar").run(max_intervals=1)
        CampaignRunner.resume(mixed).run()
        assert mixed.digest() == full.digest()

    def test_resume_validates_spec_hash(self, tmp_path):
        spec = _spec(intervals=2)
        store = RunStore.create(tmp_path / "run", spec)
        from repro.store import SpecMismatchError

        with pytest.raises(SpecMismatchError):
            CampaignRunner(_spec(intervals=3), store)

    def test_memory_mode_without_store(self):
        spec = _spec(intervals=2)
        runner = CampaignRunner(spec)
        outcome = runner.run()
        assert outcome.completed
        assert len(runner.records()) == 2
        assert runner.summary()["intervals"] == 2

    def test_summary_is_pure_function_of_records(self, tmp_path):
        spec = _spec(intervals=3)
        store = RunStore.create(tmp_path / "run", spec)
        runner = CampaignRunner(spec, store)
        runner.run()
        recomputed = CampaignAccumulator.from_records(spec, store.records()).summary()
        assert recomputed == store.summary()

    def test_run_interval_enforces_order(self):
        runner = CampaignRunner(_spec(intervals=2))
        with pytest.raises(ValueError, match="strictly in order"):
            runner.run_interval(1)

    def test_progress_callback_sees_every_record(self):
        seen = []
        CampaignRunner(_spec(intervals=2)).run(on_interval=lambda r: seen.append(r))
        assert [record["interval"] for record in seen] == [0, 1]

    def test_needs_spec_or_store(self):
        with pytest.raises(ValueError, match="spec, a store, or both"):
            CampaignRunner()


class TestCampaignStatistics:
    def test_record_carries_auditable_fields(self):
        spec = _spec(intervals=1)
        record = interval_record(spec, 0)
        assert record["interval"] == 0
        assert record["spec_hash"] == spec.spec_hash()
        assert record["seed"] == spec.interval_seed(0)
        assert len(record["receipts_digest"]) == 32
        assert len(record["result_digest"]) == 32
        estimate = record["estimates"]["X"]
        assert estimate["offered_packets"] > 0
        assert estimate["delay_sample_count"] == len(record["delay_samples"]["X"])
        assert record["verdicts"]["X"]["accepted"] is True
        assert record["verdicts"]["X"]["sla_compliant"] is True

    def test_summary_pools_across_intervals(self):
        spec = _spec(intervals=3)
        runner = CampaignRunner(spec)
        runner.run()
        summary = runner.summary()
        entry = summary["domains"]["X"]
        records = runner.records()
        offered = sum(r["estimates"]["X"]["offered_packets"] for r in records)
        samples = [
            float.fromhex(value)
            for record in records
            for value in record["delay_samples"]["X"]
        ]
        assert entry["offered_packets"] == offered
        assert entry["delay_sample_count"] == len(samples)
        pooled = np.sort(np.asarray(samples))
        quantile_key = "0.9"
        assert entry["pooled_quantiles"][quantile_key]["estimate"] == float(
            np.quantile(pooled, 0.9)
        )
        assert entry["acceptance_rate"] == 1.0
        assert entry["sla_compliant"] is True

    def test_sla_violation_detected(self):
        spec = CampaignSpec(
            intervals=1,
            cell=_cell(),
            sla=SLATargetSpec(delay_bound=0.1e-3, delay_quantile=0.9, loss_bound=1e-6),
        )
        summary = CampaignRunner(spec).run().summary
        assert summary["domains"]["X"]["sla_compliant"] is False

    def test_no_sla_means_no_verdict(self):
        spec = _spec(intervals=1, sla=False)
        summary = CampaignRunner(spec).run().summary
        assert summary["domains"]["X"]["sla_compliant"] is None
        assert summary["sla"] is None


class TestMeshCampaign:
    def _mesh_spec(self, intervals: int = 2) -> CampaignSpec:
        return CampaignSpec(
            name="mesh-campaign",
            intervals=intervals,
            cell=MeshSpec(
                seed=5,
                topology=TopologySpec(kind="star", params={"path_count": 3}, seed=3),
                traffic=TrafficSpec(workload=None, packet_count=400),
                conditions={
                    "X": ConditionSpec(
                        delay="jitter",
                        delay_params={"base_delay": 1e-3, "jitter_std": 0.2e-3},
                    )
                },
                protocol=ProtocolSpec(
                    default=HOPSpec(
                        sampling_rate=0.2, marker_rate=0.02, aggregate_size=150
                    )
                ),
            ),
            sla=SLATargetSpec(delay_bound=10e-3, loss_bound=0.1),
        )

    def test_mesh_campaign_resume_byte_identical(self, tmp_path):
        spec = self._mesh_spec()
        full = RunStore.create(tmp_path / "full", spec)
        CampaignRunner(spec, full).run()
        part = RunStore.create(tmp_path / "part", spec)
        CampaignRunner(spec, part).run(max_intervals=1)
        CampaignRunner.resume(part, engine="streaming", chunk_size=128).run()
        assert part.digest() == full.digest()

    def test_mesh_pools_across_paths(self):
        spec = self._mesh_spec(intervals=1)
        record = CampaignRunner(spec).run_interval(0)
        # The shared core X is crossed by every path; its estimate sums the
        # per-path offered packets (3 paths x 400 packets).
        assert record["estimates"]["X"]["offered_packets"] == 3 * 400
        assert record["verdicts"]["X"]["accepted"] is True


class TestExperimentBridge:
    def test_campaign_runner_from_experiment(self, tmp_path):
        experiment = Experiment(_cell())
        store = RunStore.create(
            tmp_path / "run",
            CampaignSpec(name="campaign-cell-campaign", intervals=2, cell=_cell()),
        )
        runner = experiment.campaign_runner(intervals=2, store=store)
        outcome = runner.run()
        assert outcome.completed
        assert store.is_complete

    def test_legacy_campaign_bridge_still_works(self):
        experiment = Experiment(_cell())
        campaign = experiment.campaign()
        result = campaign.run(experiment.interval_packets(2))
        assert result.interval_count == 2
        assert result.pooled_delay_quantiles()
