"""Unit tests for repro.core.consistency."""

from __future__ import annotations

import pytest

from repro.core.consistency import (
    check_aggregate_consistency,
    check_link_consistency,
    check_sample_consistency,
)
from repro.core.receipts import AggregateReceipt, PathID, SampleReceipt, SampleRecord


@pytest.fixture()
def upstream_path_id(prefix_pair) -> PathID:
    """PathID of the egress HOP delivering onto the inter-domain link."""
    return PathID(
        prefix_pair=prefix_pair, reporting_hop=5, previous_hop=4, next_hop=6, max_diff=1e-3
    )


@pytest.fixture()
def downstream_path_id(prefix_pair) -> PathID:
    """PathID of the ingress HOP receiving from the inter-domain link."""
    return PathID(
        prefix_pair=prefix_pair, reporting_hop=6, previous_hop=5, next_hop=7, max_diff=1e-3
    )


def sample_receipt(path_id, records, threshold=1000) -> SampleReceipt:
    return SampleReceipt(
        path_id=path_id,
        samples=tuple(SampleRecord(pkt_id=pkt, time=time) for pkt, time in records),
        sampling_threshold=threshold,
    )


def aggregate_receipt(path_id, count, first=1, last=2) -> AggregateReceipt:
    return AggregateReceipt(
        path_id=path_id, first_pkt_id=first, last_pkt_id=last, pkt_count=count,
        start_time=0.0, end_time=1.0,
    )


class TestSampleConsistency:
    def test_consistent_receipts_produce_no_findings(self, upstream_path_id, downstream_path_id):
        upstream = sample_receipt(upstream_path_id, [(1, 1.0), (2, 2.0)])
        downstream = sample_receipt(downstream_path_id, [(1, 1.0005), (2, 2.0003)])
        assert check_sample_consistency(upstream, downstream) == []

    def test_delay_bound_violation_detected(self, upstream_path_id, downstream_path_id):
        upstream = sample_receipt(upstream_path_id, [(1, 1.0)])
        downstream = sample_receipt(downstream_path_id, [(1, 1.01)])  # 10 ms > MaxDiff
        findings = check_sample_consistency(upstream, downstream)
        assert len(findings) == 1
        assert findings[0].kind == "delay-bound-violation"
        assert findings[0].pkt_id == 1

    def test_negative_time_difference_is_violation(self, upstream_path_id, downstream_path_id):
        upstream = sample_receipt(upstream_path_id, [(1, 2.0)])
        downstream = sample_receipt(downstream_path_id, [(1, 1.0)])
        findings = check_sample_consistency(upstream, downstream)
        assert findings[0].kind == "delay-bound-violation"

    def test_max_diff_mismatch_detected(self, prefix_pair, downstream_path_id):
        upstream_path = PathID(
            prefix_pair=prefix_pair, reporting_hop=5, previous_hop=4, next_hop=6,
            max_diff=5e-3,
        )
        upstream = sample_receipt(upstream_path, [(1, 1.0)])
        downstream = sample_receipt(downstream_path_id, [(1, 1.0001)])
        kinds = {finding.kind for finding in check_sample_consistency(upstream, downstream)}
        assert "max-diff-mismatch" in kinds

    def test_missing_downstream_detected_with_equal_thresholds(
        self, upstream_path_id, downstream_path_id
    ):
        upstream = sample_receipt(upstream_path_id, [(1, 1.0), (2, 2.0)])
        downstream = sample_receipt(downstream_path_id, [(1, 1.0001)])
        findings = check_sample_consistency(upstream, downstream)
        assert [finding.kind for finding in findings] == ["missing-downstream"]
        assert findings[0].pkt_id == 2

    def test_missing_downstream_not_flagged_when_downstream_samples_less(
        self, upstream_path_id, downstream_path_id
    ):
        # Downstream samples a subset (higher threshold): absence is expected.
        upstream = sample_receipt(upstream_path_id, [(1, 1.0), (2, 2.0)], threshold=1000)
        downstream = sample_receipt(downstream_path_id, [(1, 1.0001)], threshold=2000)
        assert check_sample_consistency(upstream, downstream) == []

    def test_missing_upstream_detected(self, upstream_path_id, downstream_path_id):
        upstream = sample_receipt(upstream_path_id, [(1, 1.0)])
        downstream = sample_receipt(downstream_path_id, [(1, 1.0001), (9, 2.0)])
        kinds = [finding.kind for finding in check_sample_consistency(upstream, downstream)]
        assert kinds == ["missing-upstream"]

    def test_missing_upstream_not_flagged_when_upstream_samples_less(
        self, upstream_path_id, downstream_path_id
    ):
        upstream = sample_receipt(upstream_path_id, [(1, 1.0)], threshold=2000)
        downstream = sample_receipt(
            downstream_path_id, [(1, 1.0001), (9, 2.0)], threshold=1000
        )
        assert check_sample_consistency(upstream, downstream) == []

    def test_finding_str_is_informative(self, upstream_path_id, downstream_path_id):
        upstream = sample_receipt(upstream_path_id, [(1, 1.0)])
        downstream = sample_receipt(downstream_path_id, [(1, 1.01)])
        text = str(check_sample_consistency(upstream, downstream)[0])
        assert "HOP5" in text and "HOP6" in text


class TestAggregateConsistency:
    def test_equal_counts_consistent(self, upstream_path_id, downstream_path_id):
        upstream = aggregate_receipt(upstream_path_id, 100)
        downstream = aggregate_receipt(downstream_path_id, 100)
        assert check_aggregate_consistency(upstream, downstream) == []

    def test_count_mismatch_detected(self, upstream_path_id, downstream_path_id):
        upstream = aggregate_receipt(upstream_path_id, 100)
        downstream = aggregate_receipt(downstream_path_id, 97)
        findings = check_aggregate_consistency(upstream, downstream)
        assert len(findings) == 1
        assert findings[0].kind == "count-mismatch"
        assert "100" in findings[0].detail and "97" in findings[0].detail


class TestLinkConsistency:
    def test_clean_link_has_no_findings(self, upstream_path_id, downstream_path_id):
        upstream_samples = [sample_receipt(upstream_path_id, [(1, 1.0)])]
        downstream_samples = [sample_receipt(downstream_path_id, [(1, 1.0002)])]
        upstream_aggs = [aggregate_receipt(upstream_path_id, 10)]
        downstream_aggs = [aggregate_receipt(downstream_path_id, 10)]
        findings = check_link_consistency(
            upstream_samples, downstream_samples, upstream_aggs, downstream_aggs
        )
        assert findings == []

    def test_combined_findings_from_both_kinds(self, upstream_path_id, downstream_path_id):
        upstream_samples = [sample_receipt(upstream_path_id, [(1, 1.0), (2, 1.0)])]
        downstream_samples = [sample_receipt(downstream_path_id, [(1, 1.05)])]
        upstream_aggs = [aggregate_receipt(upstream_path_id, 10)]
        downstream_aggs = [aggregate_receipt(downstream_path_id, 8)]
        kinds = {
            finding.kind
            for finding in check_link_consistency(
                upstream_samples, downstream_samples, upstream_aggs, downstream_aggs
            )
        }
        assert "delay-bound-violation" in kinds
        assert "missing-downstream" in kinds
        assert "count-mismatch" in kinds

    def test_missing_side_skips_sample_check(self, upstream_path_id, downstream_path_id):
        findings = check_link_consistency(
            [], [sample_receipt(downstream_path_id, [(1, 1.0)])], [], []
        )
        assert findings == []

    def test_prealigned_aggregate_pairs_used(self, upstream_path_id, downstream_path_id):
        pairs = [
            (aggregate_receipt(upstream_path_id, 5), aggregate_receipt(downstream_path_id, 4))
        ]
        findings = check_link_consistency([], [], aggregate_pairs=pairs)
        assert len(findings) == 1
        assert findings[0].kind == "count-mismatch"
