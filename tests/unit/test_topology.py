"""Unit tests for repro.net.topology."""

from __future__ import annotations

import pytest

from repro.net.link import InterDomainLink
from repro.net.prefixes import OriginPrefix, PrefixPair
from repro.net.topology import Domain, HOP, HOPPath, Topology, figure1_topology


def _pair() -> PrefixPair:
    return PrefixPair(
        source=OriginPrefix.parse("10.1.0.0/16"),
        destination=OriginPrefix.parse("10.2.0.0/16"),
    )


class TestDomainAndHOP:
    def test_domain_requires_name(self):
        with pytest.raises(ValueError):
            Domain("")

    def test_hop_equality_by_id(self):
        a = HOP(hop_id=3, domain=Domain("L"), role="egress")
        b = HOP(hop_id=3, domain=Domain("L"), role="egress")
        assert a == b
        assert hash(a) == hash(b)

    def test_hop_rejects_bad_role(self):
        with pytest.raises(ValueError):
            HOP(hop_id=1, domain=Domain("S"), role="sideways")

    def test_hop_rejects_negative_id(self):
        with pytest.raises(ValueError):
            HOP(hop_id=-1, domain=Domain("S"))


class TestHOPPath:
    def test_requires_two_hops(self):
        with pytest.raises(ValueError):
            HOPPath(prefix_pair=_pair(), hops=(HOP(1, Domain("S")),))

    def test_rejects_duplicate_hops(self):
        hop = HOP(1, Domain("S"))
        with pytest.raises(ValueError):
            HOPPath(prefix_pair=_pair(), hops=(hop, hop))

    def test_domains_in_order(self, path):
        assert [domain.name for domain in path.domains] == ["S", "L", "X", "N", "D"]

    def test_hops_of_domain(self, path):
        assert [hop.hop_id for hop in path.hops_of("X")] == [4, 5]
        assert [hop.hop_id for hop in path.hops_of("S")] == [1]

    def test_domain_segments_are_transit_domains(self, path):
        segments = path.domain_segments()
        assert [segment[0].name for segment in segments] == ["L", "X", "N"]
        assert [(segment[1].hop_id, segment[2].hop_id) for segment in segments] == [
            (2, 3),
            (4, 5),
            (6, 7),
        ]

    def test_inter_domain_pairs(self, path):
        assert [(a.hop_id, b.hop_id) for a, b in path.inter_domain_pairs()] == [
            (1, 2),
            (3, 4),
            (5, 6),
            (7, 8),
        ]

    def test_neighbor_of(self, path):
        assert path.neighbor_of("X", "previous").name == "L"
        assert path.neighbor_of("X", "next").name == "N"
        assert path.neighbor_of("S", "previous") is None
        assert path.neighbor_of("D", "next") is None

    def test_neighbor_of_rejects_unknown_domain(self, path):
        with pytest.raises(ValueError):
            path.neighbor_of("Z", "next")

    def test_neighbor_of_rejects_bad_side(self, path):
        with pytest.raises(ValueError):
            path.neighbor_of("X", "left")

    def test_len_and_iteration(self, path):
        assert len(path) == 8
        assert [hop.hop_id for hop in path] == list(range(1, 9))


class TestTopology:
    def test_add_domain_idempotent(self):
        topology = Topology()
        first = topology.add_domain("A")
        second = topology.add_domain("A")
        assert first is second

    def test_duplicate_hop_id_rejected(self):
        topology = Topology()
        topology.add_hop(1, "A")
        with pytest.raises(ValueError):
            topology.add_hop(1, "B")

    def test_link_requires_different_domains(self):
        topology = Topology()
        topology.add_hop(1, "A")
        topology.add_hop(2, "A")
        with pytest.raises(ValueError):
            topology.add_link(1, 2)

    def test_link_lookup_is_symmetric(self):
        topology = Topology()
        topology.add_hop(1, "A")
        topology.add_hop(2, "B")
        link = topology.add_link(1, 2, InterDomainLink())
        assert topology.link_between(1, 2) is link
        assert topology.link_between(2, 1) is link

    def test_path_registration_and_lookup(self):
        topology = Topology()
        for hop_id, domain in ((1, "A"), (2, "B"), (3, "B"), (4, "C")):
            topology.add_hop(hop_id, domain)
        pair = _pair()
        path = topology.add_path(pair, [1, 2, 3, 4])
        assert topology.path(pair) is path

    def test_hop_lookup_unknown_raises(self):
        topology = Topology()
        with pytest.raises(KeyError):
            topology.hop(42)


class TestFigure1:
    def test_structure(self):
        topology, path = figure1_topology()
        assert len(topology.domains) == 5
        assert len(topology.hops) == 8
        assert len(path) == 8
        assert [domain.name for domain in path.domains] == ["S", "L", "X", "N", "D"]

    def test_links_exist_between_adjacent_domains(self):
        topology, path = figure1_topology()
        for upstream, downstream in path.inter_domain_pairs():
            assert topology.link_between(upstream, downstream) is not None

    def test_custom_prefix_pair_respected(self):
        pair = PrefixPair(
            source=OriginPrefix.parse("172.16.0.0/16"),
            destination=OriginPrefix.parse("172.17.0.0/16"),
        )
        _, path = figure1_topology(pair)
        assert path.prefix_pair == pair
