"""Unit tests for repro.net.topology."""

from __future__ import annotations

import pytest

from repro.net.link import InterDomainLink
from repro.net.prefixes import OriginPrefix, PrefixPair
from repro.net.topology import (
    Domain,
    HOP,
    HOPPath,
    MeshTopologyConfig,
    Topology,
    figure1_topology,
    generate_mesh_topology,
    star_topology,
)


def _pair() -> PrefixPair:
    return PrefixPair(
        source=OriginPrefix.parse("10.1.0.0/16"),
        destination=OriginPrefix.parse("10.2.0.0/16"),
    )


class TestDomainAndHOP:
    def test_domain_requires_name(self):
        with pytest.raises(ValueError):
            Domain("")

    def test_hop_equality_by_id(self):
        a = HOP(hop_id=3, domain=Domain("L"), role="egress")
        b = HOP(hop_id=3, domain=Domain("L"), role="egress")
        assert a == b
        assert hash(a) == hash(b)

    def test_hop_rejects_bad_role(self):
        with pytest.raises(ValueError):
            HOP(hop_id=1, domain=Domain("S"), role="sideways")

    def test_hop_rejects_negative_id(self):
        with pytest.raises(ValueError):
            HOP(hop_id=-1, domain=Domain("S"))


class TestHOPPath:
    def test_requires_two_hops(self):
        with pytest.raises(ValueError):
            HOPPath(prefix_pair=_pair(), hops=(HOP(1, Domain("S")),))

    def test_rejects_duplicate_hops(self):
        hop = HOP(1, Domain("S"))
        with pytest.raises(ValueError):
            HOPPath(prefix_pair=_pair(), hops=(hop, hop))

    def test_domains_in_order(self, path):
        assert [domain.name for domain in path.domains] == ["S", "L", "X", "N", "D"]

    def test_hops_of_domain(self, path):
        assert [hop.hop_id for hop in path.hops_of("X")] == [4, 5]
        assert [hop.hop_id for hop in path.hops_of("S")] == [1]

    def test_domain_segments_are_transit_domains(self, path):
        segments = path.domain_segments()
        assert [segment[0].name for segment in segments] == ["L", "X", "N"]
        assert [(segment[1].hop_id, segment[2].hop_id) for segment in segments] == [
            (2, 3),
            (4, 5),
            (6, 7),
        ]

    def test_inter_domain_pairs(self, path):
        assert [(a.hop_id, b.hop_id) for a, b in path.inter_domain_pairs()] == [
            (1, 2),
            (3, 4),
            (5, 6),
            (7, 8),
        ]

    def test_neighbor_of(self, path):
        assert path.neighbor_of("X", "previous").name == "L"
        assert path.neighbor_of("X", "next").name == "N"
        assert path.neighbor_of("S", "previous") is None
        assert path.neighbor_of("D", "next") is None

    def test_neighbor_of_rejects_unknown_domain(self, path):
        with pytest.raises(ValueError):
            path.neighbor_of("Z", "next")

    def test_neighbor_of_rejects_bad_side(self, path):
        with pytest.raises(ValueError):
            path.neighbor_of("X", "left")

    def test_len_and_iteration(self, path):
        assert len(path) == 8
        assert [hop.hop_id for hop in path] == list(range(1, 9))


class TestTopology:
    def test_add_domain_idempotent(self):
        topology = Topology()
        first = topology.add_domain("A")
        second = topology.add_domain("A")
        assert first is second

    def test_duplicate_hop_id_rejected(self):
        topology = Topology()
        topology.add_hop(1, "A")
        with pytest.raises(ValueError):
            topology.add_hop(1, "B")

    def test_link_requires_different_domains(self):
        topology = Topology()
        topology.add_hop(1, "A")
        topology.add_hop(2, "A")
        with pytest.raises(ValueError):
            topology.add_link(1, 2)

    def test_link_lookup_is_symmetric(self):
        topology = Topology()
        topology.add_hop(1, "A")
        topology.add_hop(2, "B")
        link = topology.add_link(1, 2, InterDomainLink())
        assert topology.link_between(1, 2) is link
        assert topology.link_between(2, 1) is link

    def test_path_registration_and_lookup(self):
        topology = Topology()
        for hop_id, domain in ((1, "A"), (2, "B"), (3, "B"), (4, "C")):
            topology.add_hop(hop_id, domain)
        pair = _pair()
        path = topology.add_path(pair, [1, 2, 3, 4])
        assert topology.path(pair) is path

    def test_hop_lookup_unknown_raises(self):
        topology = Topology()
        with pytest.raises(KeyError):
            topology.hop(42)


class TestFigure1:
    def test_structure(self):
        topology, path = figure1_topology()
        assert len(topology.domains) == 5
        assert len(topology.hops) == 8
        assert len(path) == 8
        assert [domain.name for domain in path.domains] == ["S", "L", "X", "N", "D"]

    def test_links_exist_between_adjacent_domains(self):
        topology, path = figure1_topology()
        for upstream, downstream in path.inter_domain_pairs():
            assert topology.link_between(upstream, downstream) is not None

    def test_custom_prefix_pair_respected(self):
        pair = PrefixPair(
            source=OriginPrefix.parse("172.16.0.0/16"),
            destination=OriginPrefix.parse("172.17.0.0/16"),
        )
        _, path = figure1_topology(pair)
        assert path.prefix_pair == pair


def _topology_fingerprint(topology: Topology, paths) -> tuple:
    """A complete structural fingerprint: domains, HOPs, links, paths."""
    return (
        tuple(domain.name for domain in topology.domains),
        tuple((hop.hop_id, hop.domain.name, hop.role) for hop in topology.hops),
        tuple(
            sorted(
                (min(a.hop_id, b.hop_id), max(a.hop_id, b.hop_id))
                for a, b in (
                    (topology.hop(first), topology.hop(second))
                    for first, second in _link_keys(topology)
                )
            )
        ),
        tuple(
            (str(path.prefix_pair), tuple(hop.hop_id for hop in path.hops))
            for path in paths
        ),
    )


def _link_keys(topology: Topology):
    return list(topology._links)


class TestMeshTopologyGeneration:
    def test_same_seed_is_byte_identical(self):
        config = MeshTopologyConfig(
            transit_domains=3, stub_domains=4, transit_degree=2.5, path_count=6
        )
        first = generate_mesh_topology(config, seed=99)
        second = generate_mesh_topology(config, seed=99)
        assert _topology_fingerprint(*first) == _topology_fingerprint(*second)

    def test_different_seeds_differ(self):
        config = MeshTopologyConfig(
            transit_domains=4, stub_domains=5, transit_degree=2.5, path_count=8
        )
        fingerprints = {
            _topology_fingerprint(*generate_mesh_topology(config, seed=seed))
            for seed in range(6)
        }
        assert len(fingerprints) > 1

    def test_paths_have_distinct_prefix_pairs_and_valid_structure(self):
        topology, paths = generate_mesh_topology(
            MeshTopologyConfig(transit_domains=3, stub_domains=4, path_count=8),
            seed=3,
        )
        pairs = [path.prefix_pair for path in paths]
        assert len(set(pairs)) == len(pairs)
        for path in paths:
            # stubs at both ends, at least one transit segment in between
            assert path.hops[0].domain.name.startswith("S")
            assert path.hops[-1].domain.name.startswith("S")
            assert path.domain_segments()
            # every inter-domain hop pair is backed by a registered link
            for upstream, downstream in path.inter_domain_pairs():
                assert topology.link_between(upstream, downstream) is not None

    def test_zero_transit_domains_rejected(self):
        with pytest.raises(ValueError, match="at least one transit domain"):
            MeshTopologyConfig(transit_domains=0)

    def test_too_many_paths_rejected(self):
        with pytest.raises(ValueError, match="exceeds the 2 distinct ordered"):
            MeshTopologyConfig(stub_domains=2, path_count=3)

    def test_disconnected_prefix_pair_rejected(self):
        # No backbone, no chords: S1 on T1 and S2 on T2 cannot reach each other.
        config = MeshTopologyConfig(
            transit_domains=2,
            stub_domains=2,
            transit_degree=0.0,
            path_count=1,
            backbone="none",
            stub_attachment="round-robin",
        )
        with pytest.raises(ValueError, match="disconnected"):
            generate_mesh_topology(config, seed=0)

    def test_bad_backbone_rejected(self):
        with pytest.raises(ValueError, match="backbone"):
            MeshTopologyConfig(backbone="mesh")


class TestStarTopology:
    def test_structure_shares_core_hops_per_path(self):
        topology, paths = star_topology(path_count=3)
        assert len(paths) == 3
        assert {domain.name for domain in topology.domains} == {
            "X", "S1", "S2", "S3", "D1", "D2", "D3",
        }
        for path in paths:
            segments = path.domain_segments()
            assert [segment[0].name for segment in segments] == ["X"]

    def test_path_count_validation(self):
        with pytest.raises(ValueError, match="path_count"):
            star_topology(path_count=0)
