"""Unit tests for the declarative experiment specs and registries."""

from __future__ import annotations

import json

import pytest

from repro.api import (
    ADVERSARIES,
    DELAY_MODELS,
    LOSS_MODELS,
    REORDERING_MODELS,
    SCENARIOS,
    AdversarySpec,
    ConditionSpec,
    EstimationSpec,
    ExperimentSpec,
    HOPSpec,
    PathSpec,
    ProtocolSpec,
    Registry,
    TrafficSpec,
    derive_seed,
    register_delay_model,
)
from repro.core.hop import HOPConfig
from repro.simulation.scenario import PathScenario, SegmentCondition
from repro.traffic.delay_models import ConstantDelayModel, JitterDelayModel
from repro.traffic.loss_models import GilbertElliottLossModel


class TestRegistry:
    def test_builtin_models_registered(self):
        assert {"constant", "jitter", "congestion", "empirical"} <= set(
            DELAY_MODELS.names()
        )
        assert {"none", "bernoulli", "gilbert-elliott", "gilbert-elliott-rate"} <= set(
            LOSS_MODELS.names()
        )
        assert {"none", "window"} <= set(REORDERING_MODELS.names())
        assert {"lying", "colluding", "marker-drop", "biased-treatment"} <= set(
            ADVERSARIES.names()
        )
        assert "figure1" in SCENARIOS

    def test_unknown_key_error_lists_known_keys(self):
        with pytest.raises(ValueError, match="unknown delay model 'nope'"):
            DELAY_MODELS.get("nope")
        with pytest.raises(ValueError, match="constant"):
            DELAY_MODELS.get("nope")

    def test_duplicate_registration_rejected(self):
        registry = Registry("thing")
        registry.register("a", lambda: None)
        with pytest.raises(ValueError, match="already registered"):
            registry.register("a", lambda: None)
        registry.register("a", lambda: 1, overwrite=True)
        assert registry.get("a")() == 1

    def test_decorator_registration_and_unregister(self):
        @register_delay_model("test-spike")
        class SpikeDelayModel(ConstantDelayModel):
            pass

        try:
            assert DELAY_MODELS.get("test-spike") is SpikeDelayModel
            condition = ConditionSpec(delay="test-spike").build()
            assert isinstance(condition.delay_model, SpikeDelayModel)
        finally:
            DELAY_MODELS.unregister("test-spike")
        assert "test-spike" not in DELAY_MODELS


class TestDeriveSeed:
    def test_deterministic_and_label_sensitive(self):
        assert derive_seed(1, "traffic") == derive_seed(1, "traffic")
        assert derive_seed(1, "traffic") != derive_seed(2, "traffic")
        assert derive_seed(1, "traffic") != derive_seed(1, "path")
        assert 0 <= derive_seed(123, "x") < 2**63

    def test_component_seeds_are_spaced(self):
        seeds = {
            derive_seed(7, f"condition.X.{component}")
            for component in ("delay", "loss", "reordering")
        }
        assert len(seeds) == 3


class TestTrafficSpec:
    def test_workload_and_explicit_forms(self):
        named = TrafficSpec(workload="smoke-sequence")
        assert named.trace_config().packet_count == 3000
        scaled = TrafficSpec(workload="smoke-sequence", packet_count=100)
        assert scaled.trace_config().packet_count == 100
        explicit = TrafficSpec(workload=None, packet_count=500, arrival_process="cbr")
        assert explicit.trace_config().arrival_process == "cbr"

    def test_validation(self):
        with pytest.raises(ValueError, match="unknown workload"):
            TrafficSpec(workload="no-such-workload")
        with pytest.raises(ValueError, match="workload name or an explicit"):
            TrafficSpec(workload=None, packet_count=None)
        with pytest.raises(ValueError):
            TrafficSpec(workload=None, packet_count=-5)
        with pytest.raises(ValueError):
            TrafficSpec(workload=None, packet_count=10, arrival_process="fractal")
        with pytest.raises(ValueError, match="no effect when a workload"):
            TrafficSpec(workload="smoke-sequence", packets_per_second=10.0)

    def test_seed_pinning_beats_derivation(self):
        pinned = TrafficSpec(workload="smoke-sequence", seed=42)
        assert pinned.effective_seed(root_seed=0) == 42
        derived = TrafficSpec(workload="smoke-sequence")
        assert derived.effective_seed(0) == derive_seed(0, "traffic")

    def test_registered_workloads_usable_in_specs(self):
        from repro.traffic.workload import WORKLOADS, WorkloadSpec, register_workload

        workload = WorkloadSpec(
            name="test-tiny", packet_count=64, packets_per_second=1000.0
        )
        register_workload(workload)
        try:
            with pytest.raises(ValueError, match="already registered"):
                register_workload(workload)
            spec = TrafficSpec(workload="test-tiny")
            assert spec.trace_config().packet_count == 64
            assert len(spec.build(root_seed=0).packet_batch()) == 64
        finally:
            WORKLOADS.pop("test-tiny", None)


class TestConditionSpec:
    def test_builds_registered_models(self):
        spec = ConditionSpec(
            delay="jitter",
            delay_params={"base_delay": 1e-3, "jitter_std": 0.2e-3},
            loss="gilbert-elliott-rate",
            loss_params={"target_rate": 0.25},
            reordering="window",
            reordering_params={"window": 1e-3},
        )
        condition = spec.build(root_seed=3, domain="X")
        assert isinstance(condition, SegmentCondition)
        assert isinstance(condition.delay_model, JitterDelayModel)
        assert isinstance(condition.loss_model, GilbertElliottLossModel)
        assert condition.loss_model.expected_loss_rate() == pytest.approx(0.25)

    def test_unknown_registry_keys_raise(self):
        with pytest.raises(ValueError, match="unknown delay model"):
            ConditionSpec(delay="warp")
        with pytest.raises(ValueError, match="unknown loss model"):
            ConditionSpec(loss="quantum")
        with pytest.raises(ValueError, match="unknown reordering model"):
            ConditionSpec(reordering="shuffle")

    def test_invalid_rates_raise_at_spec_construction(self):
        with pytest.raises(ValueError):
            ConditionSpec(loss="bernoulli", loss_params={"loss_rate": 1.5})
        with pytest.raises(ValueError):
            ConditionSpec(delay="constant", delay_params={"delay": -1.0})
        with pytest.raises(ValueError, match="invalid parameters"):
            ConditionSpec(delay="constant", delay_params={"dealy": 1e-3})

    def test_params_must_be_jsonable(self):
        with pytest.raises(ValueError, match="JSON-serializable"):
            ConditionSpec(delay="constant", delay_params={"delay": object()})

    def test_scenario_params_validated_eagerly(self):
        with pytest.raises(ValueError, match="invalid parameters for scenario"):
            PathSpec(scenario_params={"topology": "bad"})
        with pytest.raises(ValueError, match="unknown scenario"):
            PathSpec(scenario="figure9")

    def test_identical_specs_build_identical_random_models(self):
        spec = ConditionSpec(loss="bernoulli", loss_params={"loss_rate": 0.5})
        first = spec.build(root_seed=9, domain="X").loss_model
        second = spec.build(root_seed=9, domain="X").loss_model
        assert [first.drops(i) for i in range(64)] == [
            second.drops(i) for i in range(64)
        ]


class TestProtocolSpec:
    def test_build_configs_with_default_and_overrides(self):
        scenario = PathScenario(seed=0)
        spec = ProtocolSpec(
            default=HOPSpec(sampling_rate=0.02),
            domains={"S": None, "X": HOPSpec(sampling_rate=0.05)},
        )
        configs = spec.build_configs(scenario.path)
        assert configs["S"] is None
        assert configs["X"].sampler.sampling_rate == 0.05
        assert configs["L"].sampler.sampling_rate == 0.02

    def test_none_default_means_undeployed(self):
        scenario = PathScenario(seed=0)
        spec = ProtocolSpec(default=None, domains={"X": HOPSpec()})
        configs = spec.build_configs(scenario.path)
        assert configs["L"] is None
        assert isinstance(configs["X"], HOPConfig)

    def test_unknown_domain_override_rejected_at_build(self):
        scenario = PathScenario(seed=0)
        spec = ProtocolSpec(domains={"x": HOPSpec(sampling_rate=0.05)})
        with pytest.raises(ValueError, match=r"names \['x'\], which are not on"):
            spec.build_configs(scenario.path)

    def test_validation(self):
        with pytest.raises(ValueError):
            HOPSpec(sampling_rate=1.5)
        with pytest.raises(ValueError):
            HOPSpec(aggregate_size=0)
        with pytest.raises(ValueError, match="max_diff"):
            ProtocolSpec(max_diff=0.0)
        with pytest.raises(ValueError, match="HOPSpec or None"):
            ProtocolSpec(domains={"X": 3})


class TestRoundTrips:
    def _full_spec(self) -> ExperimentSpec:
        return ExperimentSpec(
            name="round-trip",
            seed=5,
            engine="scalar",
            traffic=TrafficSpec(workload=None, packet_count=1234, seed=99),
            path=PathSpec(
                seed=17,
                conditions={
                    "X": ConditionSpec(
                        delay="congestion",
                        delay_params={"scenario": "udp-burst", "seed": 18},
                        loss="gilbert-elliott-rate",
                        loss_params={"target_rate": 0.1},
                        reordering="window",
                        reordering_params={"window": 5e-4},
                    ),
                    "N": ConditionSpec(delay="jitter"),
                },
            ),
            protocol=ProtocolSpec(
                default=HOPSpec(sampling_rate=0.02),
                domains={"S": None, "X": HOPSpec(aggregate_size=777)},
            ),
            adversaries=(
                AdversarySpec(kind="lying", domain="X", params={"claimed_delay": 1e-3}),
                AdversarySpec(kind="colluding", domain="N", params={"colluding_with": "X"}),
            ),
            estimation=EstimationSpec(
                observer="S", targets=("X", "N"), quantiles=(0.5, 0.9), verify=True
            ),
        )

    def test_dict_round_trip_is_identity(self):
        spec = self._full_spec()
        assert ExperimentSpec.from_dict(spec.to_dict()) == spec

    def test_json_round_trip_is_identity(self):
        spec = self._full_spec()
        payload = json.dumps(spec.to_dict())
        assert ExperimentSpec.from_dict(json.loads(payload)) == spec

    def test_unknown_keys_rejected(self):
        data = self._full_spec().to_dict()
        data["enginee"] = "batch"
        with pytest.raises(ValueError, match="unknown ExperimentSpec keys"):
            ExperimentSpec.from_dict(data)
        with pytest.raises(ValueError, match="unknown TrafficSpec keys"):
            TrafficSpec.from_dict({"pakcet_count": 5})

    def test_engine_validation(self):
        with pytest.raises(ValueError, match="engine"):
            ExperimentSpec(engine="turbo")

    def test_estimation_validation(self):
        with pytest.raises(ValueError, match="at least one"):
            EstimationSpec(targets=())
        with pytest.raises(ValueError):
            EstimationSpec(quantiles=(1.5,))

    def test_estimation_mode_validation(self):
        with pytest.raises(ValueError, match="mode"):
            EstimationSpec(mode="approximate")
        with pytest.raises(ValueError, match="sketch_size"):
            EstimationSpec(mode="sketch", sketch_size=4)
        with pytest.raises(ValueError, match="sketch_size"):
            EstimationSpec(mode="sketch", sketch_size=True)

    def test_sketch_mode_round_trips(self):
        spec = EstimationSpec(mode="sketch", sketch_size=128)
        data = spec.to_dict()
        assert data["mode"] == "sketch"
        assert data["sketch_size"] == 128
        assert EstimationSpec.from_dict(json.loads(json.dumps(data))) == spec

    def test_exact_mode_serialization_is_unchanged(self):
        """Byte-stability: default exact mode must not add keys to to_dict.

        spec_hash and the conformance goldens embed this serialization —
        adding keys for the default mode would invalidate every golden.
        """
        data = EstimationSpec().to_dict()
        assert "mode" not in data
        assert "sketch_size" not in data

    def test_adversary_validation(self):
        with pytest.raises(ValueError, match="unknown adversary"):
            AdversarySpec(kind="bribery", domain="X")


class TestOverrides:
    def test_dotted_paths_through_specs_and_dicts(self):
        spec = ExperimentSpec(
            path=PathSpec(
                conditions={"X": ConditionSpec(loss="bernoulli", loss_params={"loss_rate": 0.1})}
            )
        )
        updated = spec.with_overrides(
            {
                "protocol.default.sampling_rate": 0.05,
                "path.conditions.X.loss_params.loss_rate": 0.4,
                "seed": 7,
            }
        )
        assert updated.protocol.default.sampling_rate == 0.05
        assert updated.path.conditions["X"].loss_params["loss_rate"] == 0.4
        assert updated.seed == 7
        # the original spec is untouched
        assert spec.protocol.default.sampling_rate == 0.01
        assert spec.seed == 0

    def test_override_revalidates(self):
        spec = ExperimentSpec(
            path=PathSpec(
                conditions={"X": ConditionSpec(loss="bernoulli", loss_params={"loss_rate": 0.1})}
            )
        )
        with pytest.raises(ValueError):
            spec.with_overrides({"path.conditions.X.loss_params.loss_rate": 2.0})

    def test_bad_paths_raise(self):
        spec = ExperimentSpec()
        with pytest.raises(ValueError, match="no field"):
            spec.with_overrides({"protocol.defualt": None})
        with pytest.raises(ValueError, match="not present"):
            spec.with_overrides({"path.conditions.Z.loss": "none"})
