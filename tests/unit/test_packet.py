"""Unit tests for repro.net.packet."""

from __future__ import annotations

import pytest

from repro.net.packet import PacketHeaders
from tests.conftest import make_packet


class TestPacketHeaders:
    def test_pack_is_deterministic_and_fixed_length(self):
        headers = make_packet().headers
        assert headers.pack() == headers.pack()
        assert len(headers.pack()) == 17

    def test_pack_changes_with_fields(self):
        a = make_packet(src_port=1).headers.pack()
        b = make_packet(src_port=2).headers.pack()
        assert a != b

    def test_protocol_name(self):
        assert make_packet(protocol=6).headers.protocol_name == "TCP"
        assert make_packet(protocol=17).headers.protocol_name == "UDP"
        assert make_packet(protocol=47).headers.protocol_name == "47"

    @pytest.mark.parametrize(
        "field, value",
        [
            ("src_ip", 2**32),
            ("dst_ip", -1),
            ("src_port", 70000),
            ("dst_port", -2),
            ("ip_id", 2**16),
            ("protocol", 256),
            ("length", 10),
            ("length", 70000),
        ],
    )
    def test_field_validation(self, field, value):
        kwargs = dict(
            src_ip=1, dst_ip=2, src_port=3, dst_port=4, protocol=6, ip_id=5, length=100
        )
        kwargs[field] = value
        with pytest.raises(ValueError):
            PacketHeaders(**kwargs)


class TestPacket:
    def test_size_comes_from_length_field(self):
        assert make_packet(length=1500).size == 1500

    def test_invariant_bytes_include_payload_prefix(self):
        packet = make_packet(payload=b"0123456789abcdef")
        assert packet.invariant_bytes(4).endswith(b"0123")
        assert packet.invariant_bytes(0) == packet.headers.pack()

    def test_invariant_bytes_cached_per_prefix(self):
        packet = make_packet()
        first = packet.invariant_bytes(8)
        second = packet.invariant_bytes(8)
        assert first is second  # memoized

    def test_invariant_bytes_rejects_negative_prefix(self):
        with pytest.raises(ValueError):
            make_packet().invariant_bytes(-1)

    def test_with_send_time_returns_new_packet(self):
        packet = make_packet(send_time=1.0)
        shifted = packet.with_send_time(2.0)
        assert shifted.send_time == 2.0
        assert packet.send_time == 1.0
        assert shifted.headers == packet.headers

    def test_str_mentions_protocol_and_size(self):
        text = str(make_packet(length=400, protocol=17))
        assert "UDP" in text
        assert "400B" in text
