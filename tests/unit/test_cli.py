"""Unit tests for the ``repro`` console CLI (run / resume / report)."""

from __future__ import annotations

import json

import pytest

from repro.api.spec import (
    CampaignSpec,
    ConditionSpec,
    ExperimentSpec,
    HOPSpec,
    PathSpec,
    ProtocolSpec,
    SLATargetSpec,
    TrafficSpec,
)
from repro.cli import main
from repro.store import RunStore


@pytest.fixture()
def spec() -> CampaignSpec:
    return CampaignSpec(
        name="cli-test",
        intervals=3,
        cell=ExperimentSpec(
            seed=23,
            traffic=TrafficSpec(workload=None, packet_count=400),
            path=PathSpec(
                conditions={
                    "X": ConditionSpec(
                        delay="jitter",
                        delay_params={"base_delay": 1e-3, "jitter_std": 0.2e-3},
                    )
                }
            ),
            protocol=ProtocolSpec(
                default=HOPSpec(sampling_rate=0.2, marker_rate=0.02, aggregate_size=150)
            ),
        ),
        sla=SLATargetSpec(delay_bound=10e-3, delay_quantile=0.9, loss_bound=0.05),
    )


@pytest.fixture()
def spec_file(tmp_path, spec):
    path = tmp_path / "spec.json"
    path.write_text(spec.to_json())
    return path


class TestRun:
    def test_run_to_completion(self, tmp_path, spec, spec_file, capsys):
        status = main(
            ["run", str(spec_file), "--runs-dir", str(tmp_path / "runs"), "--quiet"]
        )
        assert status == 0
        run_dir = tmp_path / "runs" / f"cli-test-{spec.spec_hash()[:10]}"
        store = RunStore.open(run_dir)
        assert store.is_complete
        assert store.summary() is not None

    def test_run_dir_override_and_partial(self, tmp_path, spec_file, capsys):
        status = main(
            [
                "run",
                str(spec_file),
                "--run-dir",
                str(tmp_path / "partial"),
                "--max-intervals",
                "1",
                "--quiet",
            ]
        )
        assert status == 0
        assert "continue with: repro resume" in capsys.readouterr().out
        assert RunStore.open(tmp_path / "partial").record_count == 1

    def test_run_refuses_existing_store(self, tmp_path, spec_file):
        main(["run", str(spec_file), "--run-dir", str(tmp_path / "run"), "--quiet",
              "--max-intervals", "1"])
        with pytest.raises(SystemExit, match="already holds a run store"):
            main(["run", str(spec_file), "--run-dir", str(tmp_path / "run"), "--quiet"])

    def test_run_rejects_missing_spec(self, tmp_path):
        with pytest.raises(SystemExit, match="does not exist"):
            main(["run", str(tmp_path / "nope.json"), "--quiet"])

    def test_run_rejects_invalid_spec(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"intervals": 0}))
        with pytest.raises(SystemExit, match="cannot load campaign spec"):
            main(["run", str(bad), "--quiet"])

    def test_run_rejects_scalar_engine_for_mesh_cell(self, tmp_path):
        from repro.api.spec import MeshSpec, TopologySpec

        mesh_spec = CampaignSpec(
            name="cli-mesh",
            intervals=1,
            cell=MeshSpec(
                topology=TopologySpec(kind="star", params={"path_count": 2}, seed=1),
                traffic=TrafficSpec(workload=None, packet_count=300),
            ),
        )
        spec_path = tmp_path / "mesh.json"
        spec_path.write_text(mesh_spec.to_json())
        with pytest.raises(SystemExit, match="no scalar"):
            main(["run", str(spec_path), "--run-dir", str(tmp_path / "run"),
                  "--engine", "scalar", "--quiet"])
        assert not (tmp_path / "run").exists()  # rejected before any work

    def test_run_rejects_shards_without_streaming(self, tmp_path, spec_file):
        with pytest.raises(SystemExit, match="streaming engine only"):
            main(["run", str(spec_file), "--run-dir", str(tmp_path / "run"),
                  "--shards", "4", "--quiet"])


class TestPolicyOption:
    def test_policy_file_equals_individual_knobs(self, tmp_path, spec_file):
        from repro.api.spec import ExecutionPolicy

        policy_path = tmp_path / "policy.json"
        policy_path.write_text(
            ExecutionPolicy(engine="streaming", chunk_size=128).to_json()
        )
        main(["run", str(spec_file), "--run-dir", str(tmp_path / "policy"),
              "--policy", str(policy_path), "--quiet"])
        main(["run", str(spec_file), "--run-dir", str(tmp_path / "knobs"),
              "--engine", "streaming", "--chunk-size", "128", "--quiet"])
        assert (
            RunStore.open(tmp_path / "policy").digest()
            == RunStore.open(tmp_path / "knobs").digest()
        )

    def test_policy_plus_knobs_rejected(self, tmp_path, spec_file):
        policy_path = tmp_path / "policy.json"
        policy_path.write_text('{"engine": "streaming"}')
        with pytest.raises(SystemExit, match="not both"):
            main(["run", str(spec_file), "--run-dir", str(tmp_path / "run"),
                  "--policy", str(policy_path), "--engine", "batch", "--quiet"])

    def test_missing_policy_file_rejected(self, tmp_path, spec_file):
        with pytest.raises(SystemExit, match="does not exist"):
            main(["run", str(spec_file), "--run-dir", str(tmp_path / "run"),
                  "--policy", str(tmp_path / "nope.json"), "--quiet"])

    def test_invalid_policy_file_rejected(self, tmp_path, spec_file):
        policy_path = tmp_path / "policy.json"
        policy_path.write_text('{"engine": "warp"}')
        with pytest.raises(SystemExit, match="cannot load execution policy"):
            main(["run", str(spec_file), "--run-dir", str(tmp_path / "run"),
                  "--policy", str(policy_path), "--quiet"])

    def test_checkpoint_every_leaves_clean_identical_store(self, tmp_path, spec_file):
        main(["run", str(spec_file), "--run-dir", str(tmp_path / "plain"), "--quiet"])
        main(["run", str(spec_file), "--run-dir", str(tmp_path / "ckpt"),
              "--engine", "streaming", "--chunk-size", "128",
              "--checkpoint-every", "1", "--quiet"])
        assert not (tmp_path / "ckpt" / "interval.ckpt").exists()
        assert (
            RunStore.open(tmp_path / "ckpt").digest()
            == RunStore.open(tmp_path / "plain").digest()
        )

    def test_checkpoint_every_requires_streaming(self, tmp_path, spec_file):
        with pytest.raises(SystemExit, match="streaming engine only"):
            main(["run", str(spec_file), "--run-dir", str(tmp_path / "run"),
                  "--checkpoint-every", "2", "--quiet"])


class TestResumeAndReport:
    def test_kill_resume_byte_identical(self, tmp_path, spec_file, capsys):
        main(["run", str(spec_file), "--run-dir", str(tmp_path / "full"), "--quiet"])
        main(
            [
                "run",
                str(spec_file),
                "--run-dir",
                str(tmp_path / "part"),
                "--max-intervals",
                "2",
                "--quiet",
            ]
        )
        status = main(["resume", str(tmp_path / "part"), "--quiet"])
        assert status == 0
        full = RunStore.open(tmp_path / "full")
        part = RunStore.open(tmp_path / "part")
        assert full.digest() == part.digest()

    def test_resume_with_engine_override(self, tmp_path, spec_file):
        main(["run", str(spec_file), "--run-dir", str(tmp_path / "full"), "--quiet"])
        main(
            ["run", str(spec_file), "--run-dir", str(tmp_path / "mixed"),
             "--max-intervals", "1", "--quiet"]
        )
        status = main(
            ["resume", str(tmp_path / "mixed"), "--engine", "streaming",
             "--chunk-size", "128", "--quiet"]
        )
        assert status == 0
        assert (
            RunStore.open(tmp_path / "mixed").digest()
            == RunStore.open(tmp_path / "full").digest()
        )

    def test_resume_rejects_non_store(self, tmp_path):
        with pytest.raises(SystemExit, match="not a run store"):
            main(["resume", str(tmp_path / "nowhere"), "--quiet"])

    def test_report_prints_verdict_table(self, tmp_path, spec_file, capsys):
        main(["run", str(spec_file), "--run-dir", str(tmp_path / "run"), "--quiet"])
        capsys.readouterr()
        status = main(["report", str(tmp_path / "run")])
        assert status == 0
        out = capsys.readouterr().out
        assert "campaign 'cli-test': 3/3 intervals" in out
        assert "SLA" in out and "sla verdict" in out
        assert "COMPLIANT" in out
        # one row per interval plus the campaign-level row
        assert out.count("accepted") >= 3

    def test_report_on_partial_store(self, tmp_path, spec_file, capsys):
        main(
            ["run", str(spec_file), "--run-dir", str(tmp_path / "part"),
             "--max-intervals", "1", "--quiet"]
        )
        capsys.readouterr()
        assert main(["report", str(tmp_path / "part")]) == 0
        assert "1/3 intervals" in capsys.readouterr().out

    def test_report_json_is_byte_stable(self, tmp_path, spec_file, capsys):
        from repro.service.report import run_report
        from repro.store import stable_json

        main(["run", str(spec_file), "--run-dir", str(tmp_path / "run"), "--quiet"])
        capsys.readouterr()
        assert main(["report", str(tmp_path / "run"), "--json"]) == 0
        first = capsys.readouterr().out
        assert main(["report", str(tmp_path / "run"), "--json"]) == 0
        second = capsys.readouterr().out
        # Byte-stable machine-readable output: repeated invocations emit the
        # identical bytes, and they are exactly the service's report payload.
        assert first == second
        payload = json.loads(first)
        assert first == stable_json(run_report(RunStore.open(tmp_path / "run"))) + "\n"
        assert payload["intervals"] == {"total": 3, "completed": 3, "complete": True}
        assert payload["summary_matches_store"] is True
        assert "delay_samples" not in payload["records"][0]


class TestListCommand:
    def test_list_table_and_json(self, tmp_path, spec, spec_file, capsys):
        runs = tmp_path / "runs"
        main(["run", str(spec_file), "--runs-dir", str(runs), "--quiet"])
        main(["run", str(spec_file), "--run-dir", str(runs / "partial"),
              "--max-intervals", "1", "--quiet"])
        capsys.readouterr()

        assert main(["list", "--runs-dir", str(runs)]) == 0
        out = capsys.readouterr().out
        assert f"cli-test-{spec.spec_hash()[:10]}" in out
        assert "partial" in out
        assert "complete" in out and "in progress" in out

        assert main(["list", "--runs-dir", str(runs), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert [entry["run"] for entry in payload["runs"]] == sorted(
            entry["run"] for entry in payload["runs"]
        )
        by_run = {entry["run"]: entry for entry in payload["runs"]}
        assert by_run["partial"]["intervals"] == {
            "total": 3,
            "completed": 1,
            "complete": False,
        }
        full = by_run[f"cli-test-{spec.spec_hash()[:10]}"]
        assert full["intervals"]["complete"] is True
        assert full["sla_compliant"] is True

    def test_list_empty_root(self, tmp_path, capsys):
        assert main(["list", "--runs-dir", str(tmp_path / "nothing")]) == 0
        assert "no run stores" in capsys.readouterr().out
