"""Unit tests for repro.reporting.serialization."""

from __future__ import annotations

import pytest

from repro.core.hop import HOPReport
from repro.core.receipts import AggregateReceipt, PathID, SampleReceipt, SampleRecord
from repro.reporting.serialization import (
    BinaryFormatError,
    decode_report,
    encode_report,
    receipt_from_dict,
    receipt_to_dict,
    report_from_json,
    report_to_json,
)


@pytest.fixture()
def path_id(prefix_pair) -> PathID:
    return PathID(
        prefix_pair=prefix_pair, reporting_hop=5, previous_hop=4, next_hop=6, max_diff=1e-3
    )


@pytest.fixture()
def sample_receipt(path_id) -> SampleReceipt:
    return SampleReceipt(
        path_id=path_id,
        samples=(
            SampleRecord(pkt_id=0xDEADBEEF, time=1.25),
            SampleRecord(pkt_id=0xFEEDFACE12345678, time=2.5),
        ),
        sampling_threshold=12345678901234567,
    )


@pytest.fixture()
def aggregate_receipt(path_id) -> AggregateReceipt:
    return AggregateReceipt(
        path_id=path_id,
        first_pkt_id=0x1111,
        last_pkt_id=0x2222,
        pkt_count=4242,
        start_time=10.0,
        end_time=11.5,
        time_sum=45000.25,
        trans_before=(1, 2, 3),
        trans_after=(4, 5),
    )


@pytest.fixture()
def full_report(sample_receipt, aggregate_receipt) -> HOPReport:
    return HOPReport(
        hop_id=5,
        sample_receipts=(sample_receipt,),
        aggregate_receipts=(aggregate_receipt,),
    )


class TestJSONEncoding:
    def test_sample_receipt_round_trip(self, sample_receipt):
        restored = receipt_from_dict(receipt_to_dict(sample_receipt))
        assert restored == sample_receipt

    def test_aggregate_receipt_round_trip(self, aggregate_receipt):
        restored = receipt_from_dict(receipt_to_dict(aggregate_receipt))
        assert restored == aggregate_receipt

    def test_report_round_trip(self, full_report):
        restored = report_from_json(report_to_json(full_report))
        assert restored == full_report

    def test_json_is_stable_and_readable(self, full_report):
        text = report_to_json(full_report, indent=2)
        assert '"hop_id": 5' in text
        assert text == report_to_json(full_report, indent=2)

    def test_unknown_kind_rejected(self, path_id):
        payload = receipt_to_dict(SampleReceipt(path_id=path_id))
        payload["kind"] = "mystery"
        with pytest.raises(ValueError):
            receipt_from_dict(payload)

    def test_non_receipt_rejected(self):
        with pytest.raises(TypeError):
            receipt_to_dict("not a receipt")

    def test_edge_hop_path_id_round_trip(self, prefix_pair):
        edge = PathID(
            prefix_pair=prefix_pair, reporting_hop=1, previous_hop=None, next_hop=2,
            max_diff=2e-3,
        )
        receipt = SampleReceipt(path_id=edge, samples=(SampleRecord(1, 0.5),))
        assert receipt_from_dict(receipt_to_dict(receipt)) == receipt


class TestBinaryEncoding:
    def test_report_round_trip(self, full_report):
        restored = decode_report(encode_report(full_report))
        assert restored.hop_id == full_report.hop_id
        assert restored.sample_receipts == full_report.sample_receipts
        assert restored.aggregate_receipts == full_report.aggregate_receipts

    def test_empty_report_round_trip(self):
        report = HOPReport(hop_id=3)
        assert decode_report(encode_report(report)) == report

    def test_none_threshold_preserved(self, path_id):
        receipt = SampleReceipt(
            path_id=path_id, samples=(SampleRecord(7, 1.0),), sampling_threshold=None
        )
        report = HOPReport(hop_id=5, sample_receipts=(receipt,))
        restored = decode_report(encode_report(report))
        assert restored.sample_receipts[0].sampling_threshold is None

    def test_edge_path_id_none_hops(self, prefix_pair):
        edge = PathID(
            prefix_pair=prefix_pair, reporting_hop=8, previous_hop=7, next_hop=None,
            max_diff=1e-3,
        )
        report = HOPReport(
            hop_id=8,
            aggregate_receipts=(
                AggregateReceipt(path_id=edge, first_pkt_id=1, last_pkt_id=2, pkt_count=3),
            ),
        )
        restored = decode_report(encode_report(report))
        assert restored.aggregate_receipts[0].path_id.next_hop is None

    def test_timestamp_quantization_is_microseconds(self, path_id):
        receipt = SampleReceipt(
            path_id=path_id, samples=(SampleRecord(1, 1.2345678),)
        )
        report = HOPReport(hop_id=5, sample_receipts=(receipt,))
        restored = decode_report(encode_report(report))
        assert restored.sample_receipts[0].samples[0].time == pytest.approx(
            1.2345678, abs=1e-6
        )

    def test_binary_is_more_compact_than_json(self, full_report):
        assert len(encode_report(full_report)) < len(report_to_json(full_report))

    def test_bad_magic_rejected(self, full_report):
        blob = encode_report(full_report)
        with pytest.raises(BinaryFormatError):
            decode_report(b"XXXX" + blob[4:])

    def test_truncated_blob_rejected(self, full_report):
        blob = encode_report(full_report)
        with pytest.raises(BinaryFormatError):
            decode_report(blob[: len(blob) // 2])

    def test_negative_time_rejected(self, path_id):
        receipt = SampleReceipt(path_id=path_id, samples=(SampleRecord(1, -0.5),))
        report = HOPReport(hop_id=5, sample_receipts=(receipt,))
        with pytest.raises(BinaryFormatError):
            encode_report(report)


class TestEndToEndSerialization:
    def test_session_reports_survive_both_encodings(
        self, path, small_trace_packets
    ):
        from repro.core.aggregation import AggregatorConfig
        from repro.core.hop import HOPConfig
        from repro.core.protocol import VPMSession
        from repro.core.sampling import SamplerConfig
        from repro.simulation.scenario import PathScenario

        scenario = PathScenario(seed=71)
        observation = scenario.run(small_trace_packets[:500])
        config = HOPConfig(
            sampler=SamplerConfig(sampling_rate=0.2, marker_rate=0.05),
            aggregator=AggregatorConfig(expected_aggregate_size=100),
        )
        session = VPMSession(path, configs={d.name: config for d in path.domains})
        reports = session.run(observation)
        for report in reports.values():
            assert report_from_json(report_to_json(report)) == report
            restored = decode_report(encode_report(report))
            assert restored.hop_id == report.hop_id
            assert len(restored.sample_receipts) == len(report.sample_receipts)
            assert [r.pkt_count for r in restored.aggregate_receipts] == [
                r.pkt_count for r in report.aggregate_receipts
            ]
