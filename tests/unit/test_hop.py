"""Unit tests for repro.core.hop (collector and processor modules)."""

from __future__ import annotations

import pytest

from repro.core.aggregation import AggregatorConfig
from repro.core.hop import HOPCollector, HOPConfig, HOPProcessor
from repro.core.sampling import SamplerConfig
from tests.conftest import make_packet


@pytest.fixture()
def hop4(topology):
    return topology.hop(4)


@pytest.fixture()
def collector(hop4, path) -> HOPCollector:
    config = HOPConfig(
        sampler=SamplerConfig(sampling_rate=0.2, marker_rate=0.05),
        aggregator=AggregatorConfig(expected_aggregate_size=100),
    )
    collector = HOPCollector(hop4, config)
    collector.register_path(path, max_diff=1e-3)
    return collector


class TestRegisterPath:
    def test_path_id_reflects_hop_position(self, collector, path):
        state = collector.path_state(path)
        assert state.path_id.reporting_hop == 4
        assert state.path_id.previous_hop == 3
        assert state.path_id.next_hop == 5
        assert state.path_id.max_diff == 1e-3

    def test_edge_hops_have_one_sided_path_ids(self, topology, path):
        source = HOPCollector(topology.hop(1))
        path_id = source.register_path(path)
        assert path_id.previous_hop is None
        assert path_id.next_hop == 2
        destination = HOPCollector(topology.hop(8))
        path_id = destination.register_path(path)
        assert path_id.previous_hop == 7
        assert path_id.next_hop is None

    def test_register_foreign_hop_rejected(self, path):
        from repro.net.topology import HOP, Domain

        hop_not_on_path = HOP(hop_id=99, domain=Domain("S"))
        bad_collector = HOPCollector(hop_not_on_path)
        with pytest.raises(ValueError):
            bad_collector.register_path(path)


class TestObserve:
    def test_matching_packets_counted(self, collector, small_trace_packets):
        for packet in small_trace_packets[:500]:
            collector.observe(packet, packet.send_time)
        assert collector.observed_packets == 500
        assert collector.observed_bytes == sum(p.size for p in small_trace_packets[:500])
        assert collector.unclassified_packets == 0

    def test_unmatched_packets_ignored(self, collector):
        alien = make_packet(src_ip=0xC0A80001, dst_ip=0xC0A80002)
        collector.observe(alien, 0.0)
        assert collector.observed_packets == 0
        assert collector.unclassified_packets == 1

    def test_observe_sequence_equivalent_to_loop(self, hop4, path, small_trace_packets):
        config = HOPConfig(
            sampler=SamplerConfig(sampling_rate=0.2, marker_rate=0.05),
            aggregator=AggregatorConfig(expected_aggregate_size=100),
        )
        loop_collector = HOPCollector(hop4, config)
        loop_collector.register_path(path)
        batch_collector = HOPCollector(hop4, config)
        batch_collector.register_path(path)
        observations = [(packet, packet.send_time) for packet in small_trace_packets[:300]]
        for packet, time in observations:
            loop_collector.observe(packet, time)
        batch_collector.observe_sequence(observations)
        assert loop_collector.observed_packets == batch_collector.observed_packets

    def test_clock_applied_to_timestamps(self, topology, path, small_trace_packets):
        from repro.net.clock import ClockModel
        from repro.net.topology import HOP, Domain

        skewed_hop = HOP(hop_id=4, domain=Domain("X"), role="ingress", clock=ClockModel(offset=0.5))
        collector = HOPCollector(
            skewed_hop,
            HOPConfig(sampler=SamplerConfig(sampling_rate=1.0, marker_rate=1.0)),
        )
        collector.register_path(path)
        packet = small_trace_packets[0]
        collector.observe(packet, 1.0)
        processor = HOPProcessor(collector)
        report = processor.generate_report(flush=True)
        assert report.sample_receipts[0].samples[0].time == pytest.approx(1.5)

    def test_active_paths_counter(self, collector):
        assert collector.active_paths == 1


class TestProcessor:
    def test_report_contains_samples_and_aggregates(self, collector, small_trace_packets):
        for packet in small_trace_packets:
            collector.observe(packet, packet.send_time)
        processor = HOPProcessor(collector)
        report = processor.generate_report(flush=True)
        assert report.hop_id == 4
        assert len(report.sample_receipts) == 1
        assert len(report.sample_receipts[0]) > 0
        assert len(report.aggregate_receipts) > 0
        assert report.wire_bytes > 0

    def test_flush_accounts_for_every_packet(self, collector, small_trace_packets):
        for packet in small_trace_packets:
            collector.observe(packet, packet.send_time)
        report = HOPProcessor(collector).generate_report(flush=True)
        assert sum(receipt.pkt_count for receipt in report.aggregate_receipts) == len(
            small_trace_packets
        )

    def test_periodic_reports_do_not_double_count(self, collector, small_trace_packets):
        processor = HOPProcessor(collector)
        half = len(small_trace_packets) // 2
        for packet in small_trace_packets[:half]:
            collector.observe(packet, packet.send_time)
        first = processor.generate_report(flush=False)
        for packet in small_trace_packets[half:]:
            collector.observe(packet, packet.send_time)
        second = processor.generate_report(flush=True)
        total = sum(r.pkt_count for r in first.aggregate_receipts) + sum(
            r.pkt_count for r in second.aggregate_receipts
        )
        assert total == len(small_trace_packets)
        first_ids = set()
        for receipt in first.sample_receipts:
            first_ids |= receipt.pkt_ids
        second_ids = set()
        for receipt in second.sample_receipts:
            second_ids |= receipt.pkt_ids
        assert not (first_ids & second_ids)

    def test_processor_counters(self, collector, small_trace_packets):
        for packet in small_trace_packets[:200]:
            collector.observe(packet, packet.send_time)
        processor = HOPProcessor(collector)
        processor.generate_report(flush=True)
        processor.generate_report(flush=True)
        assert processor.reports_generated == 2
        assert processor.bytes_reported > 0

    def test_empty_report_when_nothing_observed(self, hop4, path):
        collector = HOPCollector(hop4)
        collector.register_path(path)
        report = HOPProcessor(collector).generate_report(flush=True)
        assert report.sample_receipts == ()
        assert report.aggregate_receipts == ()
        assert report.wire_bytes == 0
