"""Unit tests for repro.traffic.reordering."""

from __future__ import annotations

import numpy as np
import pytest

from repro.traffic.reordering import NoReordering, WindowReordering


def _arrivals(count: int = 1000, gap: float = 10e-6) -> np.ndarray:
    return np.arange(count) * gap


class TestNoReordering:
    def test_identity(self):
        arrivals = _arrivals(50)
        order, times = NoReordering().apply(arrivals)
        assert order.tolist() == list(range(50))
        assert np.array_equal(times, arrivals)


class TestWindowReordering:
    def test_zero_probability_is_identity(self):
        arrivals = _arrivals(100)
        order, _ = WindowReordering(reorder_probability=0.0, seed=1).apply(arrivals)
        assert order.tolist() == list(range(100))

    def test_zero_window_is_identity(self):
        arrivals = _arrivals(100)
        order, _ = WindowReordering(window=0.0, seed=1).apply(arrivals)
        assert order.tolist() == list(range(100))

    def test_some_packets_swap_with_positive_probability(self):
        arrivals = _arrivals(2000, gap=5e-6)
        order, _ = WindowReordering(
            window=0.5e-3, reorder_probability=0.2, seed=2
        ).apply(arrivals)
        assert order.tolist() != list(range(2000))

    def test_reordering_bounded_by_window(self):
        # No packet may be displaced past a packet that arrived more than
        # `window` later than it (the paper's safety assumption).
        gap = 5e-6
        window = 0.5e-3
        arrivals = _arrivals(3000, gap=gap)
        order, _ = WindowReordering(window=window, reorder_probability=0.3, seed=3).apply(
            arrivals
        )
        positions = np.empty(len(order), dtype=int)
        positions[order] = np.arange(len(order))
        for original_index, output_position in enumerate(positions):
            # Every packet that ended up *before* this one in the output must
            # have an original arrival time within `window` of it (or earlier).
            earlier = order[:output_position]
            if len(earlier):
                assert arrivals[earlier].max() <= arrivals[original_index] + window + 1e-12

    def test_times_remain_sorted(self):
        arrivals = _arrivals(500)
        _, times = WindowReordering(reorder_probability=0.5, seed=4).apply(arrivals)
        assert np.all(np.diff(times) >= 0)

    def test_output_is_permutation(self):
        arrivals = _arrivals(800)
        order, _ = WindowReordering(reorder_probability=0.4, seed=5).apply(arrivals)
        assert sorted(order.tolist()) == list(range(800))

    def test_empty_input(self):
        order, times = WindowReordering(seed=6).apply(np.array([]))
        assert len(order) == 0
        assert len(times) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            WindowReordering(window=-1.0)
        with pytest.raises(ValueError):
            WindowReordering(reorder_probability=2.0)
