"""Unit tests for repro.net.prefixes."""

from __future__ import annotations

import pytest

from repro.net.prefixes import (
    OriginPrefix,
    PrefixPair,
    int_to_ip,
    ip_to_int,
    random_prefix,
    random_prefix_pair,
)
from repro.util.rng import make_rng


class TestIPConversion:
    def test_round_trip(self):
        for address in ("0.0.0.0", "10.1.2.3", "192.168.0.1", "255.255.255.255"):
            assert int_to_ip(ip_to_int(address)) == address

    def test_known_value(self):
        assert ip_to_int("10.0.0.1") == 167772161

    def test_rejects_bad_octet(self):
        with pytest.raises(ValueError):
            ip_to_int("10.0.0.256")

    def test_rejects_wrong_shape(self):
        with pytest.raises(ValueError):
            ip_to_int("10.0.0")

    def test_rejects_out_of_range_int(self):
        with pytest.raises(ValueError):
            int_to_ip(2**32)


class TestOriginPrefix:
    def test_parse_and_str_round_trip(self):
        prefix = OriginPrefix.parse("10.1.0.0/16")
        assert str(prefix) == "10.1.0.0/16"
        assert prefix.length == 16

    def test_contains_inside_and_outside(self):
        prefix = OriginPrefix.parse("10.1.0.0/16")
        assert prefix.contains("10.1.200.7")
        assert not prefix.contains("10.2.0.1")

    def test_host_generation_stays_inside(self):
        prefix = OriginPrefix.parse("10.1.0.0/16")
        for index in (0, 1, 65535, 65536, 12345678):
            assert prefix.contains(prefix.host(index))

    def test_rejects_host_bits_set(self):
        with pytest.raises(ValueError):
            OriginPrefix(network=ip_to_int("10.1.0.1"), length=16)

    def test_rejects_bad_length(self):
        with pytest.raises(ValueError):
            OriginPrefix(network=0, length=33)

    def test_rejects_malformed_parse(self):
        with pytest.raises(ValueError):
            OriginPrefix.parse("10.1.0.0")

    def test_zero_length_prefix_contains_everything(self):
        prefix = OriginPrefix(network=0, length=0)
        assert prefix.contains("1.2.3.4")
        assert prefix.contains("255.0.0.1")

    def test_ordering_is_total(self):
        prefixes = sorted(
            [OriginPrefix.parse("10.2.0.0/16"), OriginPrefix.parse("10.1.0.0/16")]
        )
        assert str(prefixes[0]) == "10.1.0.0/16"


class TestPrefixPair:
    def test_matches_both_sides(self):
        pair = PrefixPair(
            source=OriginPrefix.parse("10.1.0.0/16"),
            destination=OriginPrefix.parse("10.2.0.0/16"),
        )
        assert pair.matches(ip_to_int("10.1.0.5"), ip_to_int("10.2.3.4"))
        assert not pair.matches(ip_to_int("10.2.0.5"), ip_to_int("10.1.3.4"))

    def test_str_is_readable(self):
        pair = PrefixPair(
            source=OriginPrefix.parse("10.1.0.0/16"),
            destination=OriginPrefix.parse("10.2.0.0/16"),
        )
        assert str(pair) == "10.1.0.0/16->10.2.0.0/16"


class TestRandomPrefixes:
    def test_random_prefix_is_valid(self):
        prefix = random_prefix(make_rng(1), length=16)
        assert prefix.length == 16
        assert prefix.network & ~prefix.mask == 0

    def test_random_prefix_deterministic_for_seed(self):
        assert random_prefix(1, length=12) == random_prefix(1, length=12)

    def test_random_pair_has_distinct_prefixes(self):
        for seed in range(10):
            pair = random_prefix_pair(seed)
            assert pair.source != pair.destination

    def test_random_prefix_rejects_bad_length(self):
        with pytest.raises(ValueError):
            random_prefix(1, length=40)
