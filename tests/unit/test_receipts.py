"""Unit tests for repro.core.receipts."""

from __future__ import annotations

import pytest

from repro.core.receipts import (
    AGGREGATE_RECEIPT_BYTES,
    SAMPLE_RECORD_BYTES,
    AggregateReceipt,
    PathID,
    SampleReceipt,
    SampleRecord,
    combine_aggregate_receipts,
    combine_sample_receipts,
    total_receipt_bytes,
)


@pytest.fixture()
def path_id(prefix_pair) -> PathID:
    return PathID(
        prefix_pair=prefix_pair,
        reporting_hop=4,
        previous_hop=3,
        next_hop=5,
        max_diff=1e-3,
    )


@pytest.fixture()
def other_path_id(prefix_pair) -> PathID:
    return PathID(
        prefix_pair=prefix_pair,
        reporting_hop=5,
        previous_hop=4,
        next_hop=6,
        max_diff=1e-3,
    )


class TestPathID:
    def test_requires_at_least_one_neighbor(self, prefix_pair):
        with pytest.raises(ValueError):
            PathID(
                prefix_pair=prefix_pair,
                reporting_hop=1,
                previous_hop=None,
                next_hop=None,
                max_diff=1e-3,
            )

    def test_negative_max_diff_rejected(self, prefix_pair):
        with pytest.raises(ValueError):
            PathID(
                prefix_pair=prefix_pair,
                reporting_hop=1,
                previous_hop=None,
                next_hop=2,
                max_diff=-1.0,
            )

    def test_same_path_compares_prefix_pair(self, path_id, other_path_id):
        assert path_id.same_path(other_path_id)


class TestSampleReceipt:
    def test_pkt_ids_and_record_lookup(self, path_id):
        receipt = SampleReceipt(
            path_id=path_id,
            samples=(SampleRecord(pkt_id=10, time=1.0), SampleRecord(pkt_id=20, time=2.0)),
        )
        assert receipt.pkt_ids == frozenset({10, 20})
        assert receipt.record_for(10).time == 1.0
        assert receipt.record_for(99) is None
        assert len(receipt) == 2

    def test_wire_bytes_grow_with_samples(self, path_id):
        small = SampleReceipt(path_id=path_id, samples=(SampleRecord(1, 1.0),))
        large = SampleReceipt(
            path_id=path_id, samples=tuple(SampleRecord(k, float(k)) for k in range(10))
        )
        assert large.wire_bytes - small.wire_bytes == 9 * SAMPLE_RECORD_BYTES

    def test_combine_unions_samples(self, path_id):
        first = SampleReceipt(path_id=path_id, samples=(SampleRecord(1, 1.0),))
        second = SampleReceipt(
            path_id=path_id, samples=(SampleRecord(2, 2.0), SampleRecord(1, 1.0))
        )
        combined = combine_sample_receipts([first, second])
        assert combined.pkt_ids == frozenset({1, 2})
        assert len(combined) == 2

    def test_combine_preserves_threshold(self, path_id):
        receipt = SampleReceipt(
            path_id=path_id, samples=(SampleRecord(1, 1.0),), sampling_threshold=42
        )
        assert combine_sample_receipts([receipt]).sampling_threshold == 42

    def test_combine_requires_same_path_id(self, path_id, other_path_id):
        first = SampleReceipt(path_id=path_id)
        second = SampleReceipt(path_id=other_path_id)
        with pytest.raises(ValueError):
            combine_sample_receipts([first, second])

    def test_combine_empty_rejected(self):
        with pytest.raises(ValueError):
            combine_sample_receipts([])

    def test_merged_with(self, path_id):
        first = SampleReceipt(path_id=path_id, samples=(SampleRecord(1, 1.0),))
        second = SampleReceipt(path_id=path_id, samples=(SampleRecord(2, 2.0),))
        assert first.merged_with(second).pkt_ids == frozenset({1, 2})

    def test_merged_with_rejects_mismatched_sampling_threshold(self, path_id):
        first = SampleReceipt(
            path_id=path_id, samples=(SampleRecord(1, 1.0),), sampling_threshold=42
        )
        second = SampleReceipt(
            path_id=path_id, samples=(SampleRecord(2, 2.0),), sampling_threshold=43
        )
        with pytest.raises(ValueError, match="sampling"):
            first.merged_with(second)
        # None (unpublished threshold) also differs from a concrete value.
        third = SampleReceipt(path_id=path_id, samples=(SampleRecord(3, 3.0),))
        with pytest.raises(ValueError, match="sampling"):
            first.merged_with(third)
        # Matching thresholds still combine.
        fourth = SampleReceipt(
            path_id=path_id, samples=(SampleRecord(4, 4.0),), sampling_threshold=42
        )
        assert first.merged_with(fourth).pkt_ids == frozenset({1, 4})


class TestAggregateReceipt:
    def test_basic_properties(self, path_id):
        receipt = AggregateReceipt(
            path_id=path_id,
            first_pkt_id=100,
            last_pkt_id=200,
            pkt_count=50,
            start_time=1.0,
            end_time=2.0,
            time_sum=75.0,
        )
        assert receipt.agg_id == (100, 200)
        assert receipt.duration == pytest.approx(1.0)
        assert receipt.mean_time == pytest.approx(1.5)

    def test_mean_time_of_empty_aggregate_is_zero(self, path_id):
        receipt = AggregateReceipt(
            path_id=path_id, first_pkt_id=1, last_pkt_id=1, pkt_count=0
        )
        assert receipt.mean_time == 0.0

    def test_negative_count_rejected(self, path_id):
        with pytest.raises(ValueError):
            AggregateReceipt(path_id=path_id, first_pkt_id=1, last_pkt_id=2, pkt_count=-1)

    def test_end_before_start_rejected(self, path_id):
        with pytest.raises(ValueError):
            AggregateReceipt(
                path_id=path_id,
                first_pkt_id=1,
                last_pkt_id=2,
                pkt_count=1,
                start_time=2.0,
                end_time=1.0,
            )

    def test_wire_bytes_include_agg_trans(self, path_id):
        plain = AggregateReceipt(path_id=path_id, first_pkt_id=1, last_pkt_id=2, pkt_count=3)
        with_trans = AggregateReceipt(
            path_id=path_id,
            first_pkt_id=1,
            last_pkt_id=2,
            pkt_count=3,
            trans_before=(1, 2, 3),
            trans_after=(4,),
        )
        assert plain.wire_bytes == AGGREGATE_RECEIPT_BYTES
        assert with_trans.wire_bytes == AGGREGATE_RECEIPT_BYTES + 4 * 4

    def test_with_count_returns_modified_copy(self, path_id):
        receipt = AggregateReceipt(path_id=path_id, first_pkt_id=1, last_pkt_id=2, pkt_count=3)
        adjusted = receipt.with_count(7)
        assert adjusted.pkt_count == 7
        assert receipt.pkt_count == 3

    def test_combine_sums_counts_and_spans(self, path_id):
        first = AggregateReceipt(
            path_id=path_id, first_pkt_id=1, last_pkt_id=2, pkt_count=10,
            start_time=0.0, end_time=1.0, time_sum=5.0,
        )
        second = AggregateReceipt(
            path_id=path_id, first_pkt_id=3, last_pkt_id=4, pkt_count=20,
            start_time=1.0, end_time=2.0, time_sum=30.0,
            trans_before=(9,), trans_after=(11,),
        )
        combined = combine_aggregate_receipts([first, second])
        assert combined.pkt_count == 30
        assert combined.agg_id == (1, 4)
        assert combined.start_time == 0.0 and combined.end_time == 2.0
        assert combined.time_sum == 35.0
        assert combined.trans_before == (9,)

    def test_combine_rejects_out_of_order(self, path_id):
        first = AggregateReceipt(
            path_id=path_id, first_pkt_id=1, last_pkt_id=2, pkt_count=10,
            start_time=5.0, end_time=6.0,
        )
        second = AggregateReceipt(
            path_id=path_id, first_pkt_id=3, last_pkt_id=4, pkt_count=20,
            start_time=0.0, end_time=1.0,
        )
        with pytest.raises(ValueError):
            combine_aggregate_receipts([first, second])

    def test_combine_rejects_mixed_paths(self, path_id, other_path_id):
        first = AggregateReceipt(path_id=path_id, first_pkt_id=1, last_pkt_id=2, pkt_count=1)
        second = AggregateReceipt(
            path_id=other_path_id, first_pkt_id=3, last_pkt_id=4, pkt_count=1
        )
        with pytest.raises(ValueError):
            combine_aggregate_receipts([first, second])

    def test_combine_empty_rejected(self):
        with pytest.raises(ValueError):
            combine_aggregate_receipts([])


class TestTotalBytes:
    def test_total_receipt_bytes(self, path_id):
        samples = [SampleReceipt(path_id=path_id, samples=(SampleRecord(1, 1.0),))]
        aggregates = [
            AggregateReceipt(path_id=path_id, first_pkt_id=1, last_pkt_id=2, pkt_count=5)
        ]
        assert total_receipt_bytes(samples, aggregates) == (
            samples[0].wire_bytes + aggregates[0].wire_bytes
        )
