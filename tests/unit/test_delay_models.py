"""Unit tests for repro.traffic.delay_models."""

from __future__ import annotations

import numpy as np
import pytest

from repro.traffic.delay_models import (
    CongestionDelayModel,
    ConstantDelayModel,
    EmpiricalDelayModel,
    JitterDelayModel,
)


def _arrivals(count: int = 2000, rate: float = 100_000.0) -> np.ndarray:
    return np.arange(count) / rate


class TestConstantDelay:
    def test_all_delays_equal(self):
        delays = ConstantDelayModel(2e-3).delays(_arrivals(100))
        assert np.all(delays == 2e-3)

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            ConstantDelayModel(-1.0)


class TestJitterDelay:
    def test_delays_at_least_base(self):
        model = JitterDelayModel(base_delay=1e-3, jitter_std=0.5e-3, seed=1)
        delays = model.delays(_arrivals(500))
        assert np.all(delays >= 1e-3)

    def test_zero_jitter_is_constant(self):
        model = JitterDelayModel(base_delay=1e-3, jitter_std=0.0, seed=1)
        assert np.allclose(model.delays(_arrivals(10)), 1e-3)

    def test_validation(self):
        with pytest.raises(ValueError):
            JitterDelayModel(base_delay=-1.0)


class TestEmpiricalDelay:
    def test_replays_and_cycles(self):
        model = EmpiricalDelayModel(series=np.array([1e-3, 2e-3, 3e-3]))
        delays = model.delays(_arrivals(7))
        assert delays.tolist() == pytest.approx([1e-3, 2e-3, 3e-3, 1e-3, 2e-3, 3e-3, 1e-3])

    def test_rejects_empty_or_negative(self):
        with pytest.raises(ValueError):
            EmpiricalDelayModel(series=np.array([]))
        with pytest.raises(ValueError):
            EmpiricalDelayModel(series=np.array([-1e-3]))


class TestCongestionDelay:
    def test_produces_positive_variable_delays(self):
        model = CongestionDelayModel(seed=2)
        delays = model.delays(_arrivals(4000))
        assert np.all(delays > 0)
        assert delays.std() > 0  # congestion produces variance

    def test_includes_propagation_delay_floor(self):
        model = CongestionDelayModel(propagation_delay=3e-3, seed=3)
        delays = model.delays(_arrivals(1000))
        assert delays.min() >= 3e-3

    def test_udp_burst_has_delay_spikes(self):
        # The headline scenario must produce large delay variation over a
        # window covering several burst cycles: the high quantiles should sit
        # well above the low ones.
        model = CongestionDelayModel(scenario="udp-burst", seed=4)
        delays = model.delays(_arrivals(20_000))
        assert np.quantile(delays, 0.9) > 1.5 * np.quantile(delays, 0.1)
        assert delays.max() > 3.0 * delays.min()

    def test_empty_input(self):
        assert CongestionDelayModel(seed=5).delays(np.array([])).size == 0

    def test_scenario_validation(self):
        with pytest.raises(ValueError):
            CongestionDelayModel(scenario="warp-drive")

    def test_explicit_bandwidth_accepted(self):
        model = CongestionDelayModel(bottleneck_bandwidth_bps=1e9, seed=6)
        delays = model.delays(_arrivals(1000))
        assert np.all(delays > 0)

    def test_invalid_bandwidth_rejected(self):
        with pytest.raises(ValueError):
            CongestionDelayModel(bottleneck_bandwidth_bps=0.0)
