"""Unit tests for the columnar packet batch and the batch collector pipeline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.hop import HOPCollector, HOPConfig
from repro.core.protocol import VPMSession
from repro.core.sampling import SamplerConfig
from repro.core.aggregation import AggregatorConfig
from repro.net.batch import PacketBatch
from repro.net.clock import ClockModel, PerfectClock
from repro.net.packet import HEADER_PACK_BYTES, Packet, PacketHeaders, pack_header_columns
from repro.net.topology import figure1_topology
from repro.simulation.scenario import PathScenario, SegmentCondition
from repro.traffic.delay_models import JitterDelayModel
from repro.traffic.loss_models import BernoulliLossModel
from repro.traffic.trace import SyntheticTrace, TraceConfig


@pytest.fixture(scope="module")
def small_trace():
    return SyntheticTrace(config=TraceConfig(packet_count=4000), seed=11)


@pytest.fixture(scope="module")
def small_batch(small_trace):
    return small_trace.packet_batch()


class TestPacketBatch:
    def test_round_trip_preserves_everything(self, small_batch):
        packets = small_batch.to_packets()
        rebuilt = PacketBatch.from_packets(packets)
        for column in ("src_ip", "dst_ip", "src_port", "dst_port", "protocol",
                       "ip_id", "length", "payload", "uid", "send_time", "flow_id"):
            assert np.array_equal(getattr(rebuilt, column), getattr(small_batch, column)), column

    def test_packets_equals_packet_batch(self, small_trace):
        listed = SyntheticTrace(config=small_trace.config, seed=11).packets()
        batched = SyntheticTrace(config=small_trace.config, seed=11).packet_batch()
        assert len(listed) == len(batched)
        sample = np.linspace(0, len(listed) - 1, 50, dtype=int)
        for index in sample:
            assert batched.packet_at(int(index)) == listed[int(index)]

    def test_pack_header_columns_matches_pack(self, small_batch):
        matrix = pack_header_columns(
            small_batch.src_ip, small_batch.dst_ip, small_batch.src_port,
            small_batch.dst_port, small_batch.protocol, small_batch.ip_id,
            small_batch.length,
        )
        assert matrix.shape == (len(small_batch), HEADER_PACK_BYTES)
        for index in (0, 17, len(small_batch) - 1):
            assert matrix[index].tobytes() == small_batch.packet_at(index).headers.pack()

    def test_take_preserves_order_and_content(self, small_batch):
        indices = np.array([5, 3, 3, 100])
        taken = small_batch.take(indices)
        assert len(taken) == 4
        assert list(taken.uid) == [int(small_batch.uid[i]) for i in indices]

    def test_mixed_payload_lengths_rejected(self):
        headers = PacketHeaders(
            src_ip=1, dst_ip=2, src_port=3, dst_port=4, protocol=6, ip_id=7, length=40
        )
        packets = [
            Packet(headers=headers, payload=b"abcd", uid=0),
            Packet(headers=headers, payload=b"ab", uid=1),
        ]
        with pytest.raises(ValueError, match="payload length"):
            PacketBatch.from_packets(packets)

    def test_with_send_times_leaves_original_untouched(self, small_batch):
        shifted = small_batch.with_send_times(small_batch.send_time + 1.0)
        assert np.allclose(shifted.send_time, small_batch.send_time + 1.0)
        assert shifted.send_time[0] != small_batch.send_time[0]


class TestClockBatch:
    def test_perfect_clock_batch(self):
        times = np.array([0.0, 1.5, 2.25])
        assert np.array_equal(PerfectClock().read_batch(times), times)

    def test_clock_model_batch_matches_scalar(self):
        clock_a = ClockModel(offset=1e-3, drift_ppm=15.0, jitter_std=2e-6, seed=9)
        clock_b = ClockModel(offset=1e-3, drift_ppm=15.0, jitter_std=2e-6, seed=9)
        times = np.linspace(0.0, 10.0, 257)
        batch = clock_a.read_batch(times)
        scalar = np.array([clock_b.read(float(value)) for value in times])
        assert np.array_equal(batch, scalar)


class TestHOPConfigDefaults:
    def test_default_sub_configs_are_independent_instances(self):
        first, second = HOPConfig(), HOPConfig()
        assert first.sampler is not second.sampler
        assert first.aggregator is not second.aggregator
        assert first.digester is not second.digester


class TestCollectorBatch:
    def test_observe_batch_matches_scalar_loop(self, small_batch):
        _, path = figure1_topology()
        config = HOPConfig(
            sampler=SamplerConfig(sampling_rate=0.05, marker_rate=0.01),
            aggregator=AggregatorConfig(expected_aggregate_size=500, reorder_window=1e-3),
        )
        scalar = HOPCollector(path.hops[3], config)
        scalar.register_path(path)
        batched = HOPCollector(path.hops[3], config)
        batched.register_path(path)

        for packet in small_batch.to_packets():
            scalar.observe(packet, packet.send_time)
        assert batched.observe_batch(small_batch) == len(small_batch)

        state_scalar = scalar.states()[0]
        state_batched = batched.states()[0]
        assert state_scalar.observed_packets == state_batched.observed_packets
        assert state_scalar.observed_bytes == state_batched.observed_bytes
        assert state_scalar.sampler._samples == state_batched.sampler._samples
        assert state_scalar.sampler._temp_buffer == state_batched.sampler._temp_buffer
        state_scalar.aggregator.flush()
        state_batched.aggregator.flush()
        scalar_receipts = state_scalar.aggregator.receipts(state_scalar.path_id)
        batched_receipts = state_batched.aggregator.receipts(state_batched.path_id)
        assert [
            (r.first_pkt_id, r.last_pkt_id, r.pkt_count, r.trans_before, r.trans_after)
            for r in scalar_receipts
        ] == [
            (r.first_pkt_id, r.last_pkt_id, r.pkt_count, r.trans_before, r.trans_after)
            for r in batched_receipts
        ]

    def test_unmatched_packets_are_counted(self, small_batch):
        _, path = figure1_topology()
        collector = HOPCollector(path.hops[0])
        # No registered path: everything is unclassified.
        assert collector.observe_batch(small_batch) == 0
        assert collector.unclassified_packets == len(small_batch)

    def test_multi_path_jittery_clock_matches_scalar(self):
        """Clock RNG draws stay in observation order across interleaved paths."""
        from repro.net.prefixes import OriginPrefix, PrefixPair
        from repro.net.topology import HOP, HOPPath

        _, base_path = figure1_topology()
        other_pair = PrefixPair(
            source=OriginPrefix.parse("10.3.0.0/16"),
            destination=OriginPrefix.parse("10.4.0.0/16"),
        )

        def make_collector():
            base = base_path.hops[2]
            hop = HOP(
                hop_id=base.hop_id,
                domain=base.domain,
                role=base.role,
                clock=ClockModel(offset=1e-4, drift_ppm=5.0, jitter_std=1e-3, seed=7),
            )
            hops = tuple(hop if h.hop_id == base.hop_id else h for h in base_path.hops)
            collector = HOPCollector(hop, HOPConfig(sampler=SamplerConfig(sampling_rate=0.2, marker_rate=0.05)))
            collector.register_path(HOPPath(prefix_pair=base_path.prefix_pair, hops=hops))
            collector.register_path(HOPPath(prefix_pair=other_pair, hops=hops))
            return collector

        pairs = [base_path.prefix_pair, other_pair]
        packets = [
            Packet(
                headers=PacketHeaders(
                    src_ip=pairs[index % 2].source.host(index),
                    dst_ip=pairs[index % 2].destination.host(index),
                    src_port=1000 + index,
                    dst_port=80,
                    protocol=6,
                    ip_id=index & 0xFFFF,
                    length=100,
                ),
                payload=bytes(8),
                uid=index,
                send_time=index * 1e-5,
            )
            for index in range(400)
        ]
        scalar = make_collector()
        batched = make_collector()
        for packet in packets:
            scalar.observe(packet, packet.send_time)
        batched.observe_batch(PacketBatch.from_packets(packets))
        for state_scalar, state_batched in zip(scalar.states(), batched.states()):
            assert state_scalar.sampler._samples == state_batched.sampler._samples
            assert state_scalar.sampler._temp_buffer == state_batched.sampler._temp_buffer

    def test_take_shares_digests_with_root(self, small_batch):
        from repro.net.hashing import PacketDigester

        digester = PacketDigester(seed=77)
        derived = small_batch.take(np.arange(100, 300)).take(np.arange(10, 50))
        derived_digests = digester.digest_batch(derived)
        # The root batch's cache was populated by the derived lookup.
        assert (77, 8) in small_batch._digest_cache
        expected = digester.digest_batch(small_batch)[np.arange(100, 300)[np.arange(10, 50)]]
        assert np.array_equal(derived_digests, expected)


class TestScenarioBatch:
    def test_run_batch_matches_run(self, small_batch):
        def build():
            scenario = PathScenario(seed=5)
            scenario.configure_domain(
                "X",
                SegmentCondition(
                    delay_model=JitterDelayModel(base_delay=1e-3, jitter_std=0.5e-3, seed=6),
                    loss_model=BernoulliLossModel(0.05, seed=7),
                ),
            )
            return scenario

        observation = build().run(small_batch.to_packets())
        batch_observation = build().run_batch(small_batch)

        for domain in ("L", "X", "N"):
            truth = observation.truth_for(domain)
            batch_truth = batch_observation.truth_for(domain)
            assert truth.lost == batch_truth.lost
            assert truth.delivered == {
                int(uid): (float(ingress), float(egress))
                for uid, ingress, egress in zip(
                    batch_truth.delivered_uids,
                    batch_truth.ingress_times,
                    batch_truth.egress_times,
                )
            }
        for hop in observation.path.hops:
            listed = observation.at_hop(hop)
            batch, times = batch_observation.at_hop(hop)
            assert [packet.uid for packet, _ in listed] == [int(uid) for uid in batch.uid]
            assert np.array_equal(np.array([moment for _, moment in listed]), times)

    def test_session_reports_identical_for_both_paths(self, small_batch):
        def build():
            scenario = PathScenario(seed=5)
            scenario.configure_domain(
                "X",
                SegmentCondition(
                    delay_model=JitterDelayModel(base_delay=1e-3, jitter_std=0.5e-3, seed=6),
                    loss_model=BernoulliLossModel(0.05, seed=7),
                ),
            )
            return scenario

        config = HOPConfig(
            sampler=SamplerConfig(sampling_rate=0.05),
            aggregator=AggregatorConfig(expected_aggregate_size=1000),
        )

        scenario = build()
        session_scalar = VPMSession(
            scenario.path, configs={d.name: config for d in scenario.path.domains}
        )
        session_scalar.run(scenario.run(small_batch.to_packets()))

        scenario = build()
        session_batch = VPMSession(
            scenario.path, configs={d.name: config for d in scenario.path.domains}
        )
        session_batch.run(scenario.run_batch(small_batch))

        performance_scalar = session_scalar.estimate("L", "X")
        performance_batch = session_batch.estimate("L", "X")
        assert performance_scalar.loss_rate == performance_batch.loss_rate
        assert performance_scalar.delay_sample_count == performance_batch.delay_sample_count
        assert session_scalar.verify("L", "X").accepted == session_batch.verify("L", "X").accepted
        assert (
            session_scalar.overhead().receipt_bytes == session_batch.overhead().receipt_bytes
        )

    def test_batch_predicates_must_return_masks(self, small_batch):
        scenario = PathScenario(seed=5)
        scenario.configure_domain(
            "X",
            SegmentCondition(drop_predicate=lambda packet: True),  # object-style predicate
        )
        with pytest.raises(TypeError, match="boolean mask"):
            scenario.run_batch(small_batch)

    def test_batch_drop_predicate_drops_marked_packets(self, small_batch):
        scenario = PathScenario(seed=5)
        scenario.configure_domain(
            "X",
            SegmentCondition(drop_predicate=lambda batch: batch.uid % 100 == 0),
        )
        observation = scenario.run_batch(small_batch)
        truth = observation.truth_for("X")
        expected_drops = {int(uid) for uid in small_batch.uid if uid % 100 == 0}
        assert expected_drops <= truth.lost
