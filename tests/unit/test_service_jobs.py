"""Unit tests for the service `JobQueue` (mostly the inprocess execution mode)."""

from __future__ import annotations

import pytest

from repro.api.spec import (
    CampaignSpec,
    ConditionSpec,
    ExecutionPolicy,
    ExperimentSpec,
    HOPSpec,
    PathSpec,
    ProtocolSpec,
    SLATargetSpec,
    TrafficSpec,
)
from repro.engine.campaign import CampaignRunner
from repro.service.jobs import JobQueue, JobRejected
from repro.store import RunStore
from repro.store.runstore import SPEC_FILE


def _spec(name: str = "jobs-test", intervals: int = 2) -> CampaignSpec:
    return CampaignSpec(
        name=name,
        intervals=intervals,
        cell=ExperimentSpec(
            seed=59,
            traffic=TrafficSpec(workload=None, packet_count=300),
            path=PathSpec(
                conditions={
                    "X": ConditionSpec(
                        delay="jitter",
                        delay_params={"base_delay": 1e-3, "jitter_std": 0.2e-3},
                    )
                }
            ),
            protocol=ProtocolSpec(
                default=HOPSpec(sampling_rate=0.2, marker_rate=0.02, aggregate_size=150)
            ),
        ),
        sla=SLATargetSpec(delay_bound=10e-3, delay_quantile=0.9, loss_bound=0.05),
    )


@pytest.fixture
def queue(tmp_path):
    queue = JobQueue(tmp_path / "runs", workers=1, execution="inprocess")
    yield queue
    queue.shutdown(wait=True)


class TestConstruction:
    def test_rejects_bad_arguments(self, tmp_path):
        with pytest.raises(ValueError, match="workers"):
            JobQueue(tmp_path, workers=0)
        with pytest.raises(ValueError, match="execution"):
            JobQueue(tmp_path, execution="fork")
        with pytest.raises(ValueError, match="max_attempts"):
            JobQueue(tmp_path, max_attempts=0)


class TestSubmission:
    def test_submit_creates_store_immediately(self, queue):
        spec = _spec()
        job = queue.submit(spec)
        # The durable spec.json write *is* the acceptance record — it exists
        # before any worker touches the job.
        assert (job.run_dir / SPEC_FILE).exists()
        assert job.run_id == f"jobs-test-{spec.spec_hash()[:10]}"
        assert job.spec_hash == spec.spec_hash()
        assert queue.wait_idle(timeout=120.0)
        assert queue.job(job.id).state == "completed"
        store = RunStore.open(job.run_dir)
        assert len(store.records()) == 2
        assert store.summary() is not None

    def test_inprocess_jobs_record_typed_events(self, queue):
        job = queue.submit(_spec(name="evented"))
        assert queue.wait_idle(timeout=120.0)
        kinds = [event["kind"] for event in queue.snapshot(job)["events"]]
        assert kinds == ["interval_committed", "interval_committed", "run_complete"]

    def test_duplicate_store_rejected_without_resume_flag(self, queue):
        spec = _spec(name="dup")
        queue.submit(spec, run_id="dup-run")
        assert queue.wait_idle(timeout=120.0)
        with pytest.raises(JobRejected, match="already holds a store"):
            queue.submit(spec, run_id="dup-run")

    def test_resume_reenqueues_existing_store(self, queue, tmp_path):
        spec = _spec(name="handoff")
        # A "dead service" left a half-finished store behind.
        store = RunStore.create(queue.store_root / "handoff-run", spec)
        CampaignRunner(spec, store).run(max_intervals=1)
        job = queue.submit(spec, run_id="handoff-run", resume=True)
        assert queue.wait_idle(timeout=120.0)
        assert queue.job(job.id).state == "completed"
        finished = RunStore.open(queue.store_root / "handoff-run")
        assert len(finished.records()) == spec.intervals
        # Byte-identical to a never-interrupted direct run of the same spec.
        direct = RunStore.create(tmp_path / "direct", spec)
        CampaignRunner(spec, direct).run()
        assert finished.records_path.read_bytes() == direct.records_path.read_bytes()

    def test_resume_without_store_rejected(self, queue):
        with pytest.raises(JobRejected, match="no store to resume"):
            queue.submit(_spec(), run_id="ghost", resume=True)

    def test_impossible_policy_dies_at_submission(self, queue):
        with pytest.raises(ValueError):
            queue.submit(
                _spec(), policy=ExecutionPolicy(engine="scalar", checkpoint_every=1)
            )

    def test_path_escaping_run_id_rejected(self, queue):
        with pytest.raises(ValueError, match="invalid run id"):
            queue.submit(_spec(), run_id="../outside")

    def test_submit_after_shutdown_rejected(self, tmp_path):
        queue = JobQueue(tmp_path / "runs", workers=1, execution="inprocess")
        queue.shutdown(wait=True)
        with pytest.raises(JobRejected, match="shut down"):
            queue.submit(_spec())


class TestInspection:
    def test_stats_and_listing(self, queue):
        job = queue.submit(_spec(name="stats"))
        assert queue.wait_idle(timeout=120.0)
        assert [j.id for j in queue.jobs()] == [job.id]
        stats = queue.stats()
        assert stats["completed"] == 1
        assert stats["queued"] == stats["running"] == stats["failed"] == 0
        assert stats["workers"] == 1

    def test_kill_requires_a_running_subprocess(self, queue):
        job = queue.submit(_spec(name="unkillable"))
        assert queue.wait_idle(timeout=120.0)
        # Completed (and inprocess) jobs expose no killable child.
        assert queue.kill(job.id) is False
        assert queue.kill("job-does-not-exist") is False


class TestSubprocessMode:
    def test_subprocess_run_matches_direct_run(self, tmp_path):
        spec = _spec(name="subproc")
        queue = JobQueue(tmp_path / "runs", workers=1, execution="subprocess")
        try:
            job = queue.submit(spec, run_id="via-worker")
            assert queue.wait_idle(timeout=240.0)
            assert queue.job(job.id).state == "completed", queue.job(job.id).error
        finally:
            queue.shutdown(wait=True)
        direct = RunStore.create(tmp_path / "direct", spec)
        CampaignRunner(spec, direct).run()
        worker_store = RunStore.open(tmp_path / "runs" / "via-worker")
        assert (
            worker_store.records_path.read_bytes()
            == direct.records_path.read_bytes()
        )
        assert worker_store.digest() == direct.digest()
