"""Unit tests for the service `JobQueue` (mostly the inprocess execution mode)."""

from __future__ import annotations

import threading

import pytest

from repro.api.spec import (
    CampaignSpec,
    ConditionSpec,
    ExecutionPolicy,
    ExperimentSpec,
    HOPSpec,
    PathSpec,
    ProtocolSpec,
    SLATargetSpec,
    TrafficSpec,
)
from repro.engine.campaign import CampaignRunner
from repro.service.jobs import JobQueue, JobRejected
from repro.store import RunStore
from repro.store.runstore import SPEC_FILE


def _spec(name: str = "jobs-test", intervals: int = 2) -> CampaignSpec:
    return CampaignSpec(
        name=name,
        intervals=intervals,
        cell=ExperimentSpec(
            seed=59,
            traffic=TrafficSpec(workload=None, packet_count=300),
            path=PathSpec(
                conditions={
                    "X": ConditionSpec(
                        delay="jitter",
                        delay_params={"base_delay": 1e-3, "jitter_std": 0.2e-3},
                    )
                }
            ),
            protocol=ProtocolSpec(
                default=HOPSpec(sampling_rate=0.2, marker_rate=0.02, aggregate_size=150)
            ),
        ),
        sla=SLATargetSpec(delay_bound=10e-3, delay_quantile=0.9, loss_bound=0.05),
    )


@pytest.fixture
def queue(tmp_path):
    queue = JobQueue(tmp_path / "runs", workers=1, execution="inprocess")
    yield queue
    queue.shutdown(wait=True)


class TestConstruction:
    def test_rejects_bad_arguments(self, tmp_path):
        with pytest.raises(ValueError, match="workers"):
            JobQueue(tmp_path, workers=0)
        with pytest.raises(ValueError, match="execution"):
            JobQueue(tmp_path, execution="fork")
        with pytest.raises(ValueError, match="max_attempts"):
            JobQueue(tmp_path, max_attempts=0)


class TestSubmission:
    def test_submit_creates_store_immediately(self, queue):
        spec = _spec()
        job = queue.submit(spec)
        # The durable spec.json write *is* the acceptance record — it exists
        # before any worker touches the job.
        assert (job.run_dir / SPEC_FILE).exists()
        assert job.run_id == f"jobs-test-{spec.spec_hash()[:10]}"
        assert job.spec_hash == spec.spec_hash()
        assert queue.wait_idle(timeout=120.0)
        assert queue.job(job.id).state == "completed"
        store = RunStore.open(job.run_dir)
        assert len(store.records()) == 2
        assert store.summary() is not None

    def test_inprocess_jobs_record_typed_events(self, queue):
        job = queue.submit(_spec(name="evented"))
        assert queue.wait_idle(timeout=120.0)
        kinds = [event["kind"] for event in queue.snapshot(job)["events"]]
        assert kinds == ["interval_committed", "interval_committed", "run_complete"]

    def test_duplicate_store_rejected_without_resume_flag(self, queue):
        spec = _spec(name="dup")
        queue.submit(spec, run_id="dup-run")
        assert queue.wait_idle(timeout=120.0)
        with pytest.raises(JobRejected, match="already holds a store"):
            queue.submit(spec, run_id="dup-run")

    def test_resume_reenqueues_existing_store(self, queue, tmp_path):
        spec = _spec(name="handoff")
        # A "dead service" left a half-finished store behind.
        store = RunStore.create(queue.store_root / "handoff-run", spec)
        CampaignRunner(spec, store).run(max_intervals=1)
        job = queue.submit(spec, run_id="handoff-run", resume=True)
        assert queue.wait_idle(timeout=120.0)
        assert queue.job(job.id).state == "completed"
        finished = RunStore.open(queue.store_root / "handoff-run")
        assert len(finished.records()) == spec.intervals
        # Byte-identical to a never-interrupted direct run of the same spec.
        direct = RunStore.create(tmp_path / "direct", spec)
        CampaignRunner(spec, direct).run()
        assert finished.records_path.read_bytes() == direct.records_path.read_bytes()

    def test_resume_without_store_rejected(self, queue):
        with pytest.raises(JobRejected, match="no store to resume"):
            queue.submit(_spec(), run_id="ghost", resume=True)

    def test_impossible_policy_dies_at_submission(self, queue):
        with pytest.raises(ValueError):
            queue.submit(
                _spec(), policy=ExecutionPolicy(engine="scalar", checkpoint_every=1)
            )

    def test_path_escaping_run_id_rejected(self, queue):
        with pytest.raises(ValueError, match="invalid run id"):
            queue.submit(_spec(), run_id="../outside")

    def test_submit_after_shutdown_rejected(self, tmp_path):
        queue = JobQueue(tmp_path / "runs", workers=1, execution="inprocess")
        queue.shutdown(wait=True)
        with pytest.raises(JobRejected, match="shut down"):
            queue.submit(_spec())


class TestInspection:
    def test_stats_and_listing(self, queue):
        job = queue.submit(_spec(name="stats"))
        assert queue.wait_idle(timeout=120.0)
        assert [j.id for j in queue.jobs()] == [job.id]
        stats = queue.stats()
        assert stats["completed"] == 1
        assert stats["queued"] == stats["running"] == stats["failed"] == 0
        assert stats["workers"] == 1

    def test_kill_requires_a_running_subprocess(self, queue):
        job = queue.submit(_spec(name="unkillable"))
        assert queue.wait_idle(timeout=120.0)
        # Completed (and inprocess) jobs expose no killable child.
        assert queue.kill(job.id) is False
        assert queue.kill("job-does-not-exist") is False


class TestShutdownRequeueRace:
    def test_failed_attempt_after_shutdown_is_terminal(self, tmp_path, monkeypatch):
        """Regression: a retryable failure racing shutdown must not requeue.

        The old code decided "requeue" under the lock but put the job back
        on the task queue *after* releasing it — shutdown could slip in
        between, mark the queue closed and enqueue its None sentinels, and
        the requeued job would land *behind* the sentinels: state "queued"
        forever, with every worker already gone.  This drives that exact
        interleaving deterministically: the attempt blocks mid-run while
        shutdown closes the queue, then fails.
        """
        queue = JobQueue(
            tmp_path / "runs", workers=1, execution="inprocess", max_attempts=3
        )
        attempt_started = threading.Event()
        release_attempt = threading.Event()

        def blocking_failure(job):
            attempt_started.set()
            assert release_attempt.wait(timeout=60.0)
            return "injected failure"

        monkeypatch.setattr(queue, "_run_inprocess", blocking_failure)
        job = queue.submit(_spec(name="race"))
        assert attempt_started.wait(timeout=60.0)
        # The attempt is in flight; shutdown closes the queue and enqueues
        # the worker sentinels, then the attempt fails with retries left.
        shutdown = threading.Thread(target=queue.shutdown, kwargs={"wait": True})
        shutdown.start()
        release_attempt.set()
        shutdown.join(timeout=60.0)
        assert not shutdown.is_alive()  # every worker exited
        assert queue.job(job.id).state == "failed"  # terminal, not "queued"
        assert queue.job(job.id).error == "injected failure"

    def test_concurrent_submit_and_shutdown_leaves_no_job_in_limbo(self, tmp_path):
        """Stress: submissions racing shutdown either run to a terminal state
        or are rejected — never accepted and then silently never run."""
        for round_index in range(5):
            queue = JobQueue(
                tmp_path / f"runs-{round_index}", workers=2, execution="inprocess"
            )
            accepted, rejected = [], []
            barrier = threading.Barrier(5)

            def submit_some(
                offset,
                accepted=accepted,
                rejected=rejected,
                barrier=barrier,
                queue=queue,
                round_index=round_index,
            ):
                barrier.wait()
                for i in range(3):
                    try:
                        accepted.append(
                            queue.submit(
                                _spec(name=f"stress-{round_index}"),
                                run_id=f"stress-{offset}-{i}",
                            )
                        )
                    except JobRejected:
                        rejected.append((offset, i))

            def shut_down(barrier=barrier, queue=queue):
                barrier.wait()
                queue.shutdown(wait=True)

            threads = [
                threading.Thread(target=submit_some, args=(offset,))
                for offset in range(4)
            ] + [threading.Thread(target=shut_down)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=300.0)
            assert not any(thread.is_alive() for thread in threads)
            # shutdown(wait=True) returned: every accepted job was drained
            # to a terminal state before the workers exited.
            for job in accepted:
                assert queue.job(job.id).state in ("completed", "failed")


class TestDispatchMode:
    def test_dispatch_rejects_checkpointing_at_submission(self, tmp_path):
        queue = JobQueue(tmp_path / "runs", workers=1, execution="dispatch")
        try:
            with pytest.raises(JobRejected, match="checkpoint_every"):
                queue.submit(
                    _spec(),
                    policy=ExecutionPolicy(engine="streaming", checkpoint_every=1),
                )
        finally:
            queue.shutdown(wait=True)

    def test_dispatch_workers_validated(self, tmp_path):
        with pytest.raises(ValueError, match="dispatch_workers"):
            JobQueue(tmp_path, execution="dispatch", dispatch_workers=0)

    def test_dispatch_http_is_a_valid_mode_with_the_same_rules(self, tmp_path):
        queue = JobQueue(tmp_path / "runs", workers=1, execution="dispatch_http")
        try:
            with pytest.raises(JobRejected, match="checkpoint_every"):
                queue.submit(
                    _spec(),
                    policy=ExecutionPolicy(engine="streaming", checkpoint_every=1),
                )
        finally:
            queue.shutdown(wait=True)

    def test_dispatch_http_run_matches_direct_run(self, tmp_path):
        spec = _spec(name="dispatched-http")
        queue = JobQueue(
            tmp_path / "runs", workers=1, execution="dispatch_http", dispatch_workers=2
        )
        try:
            job = queue.submit(spec, run_id="via-http")
            assert queue.wait_idle(timeout=240.0)
            assert queue.job(job.id).state == "completed", queue.job(job.id).error
        finally:
            queue.shutdown(wait=True)
        direct = RunStore.create(tmp_path / "direct", spec)
        CampaignRunner(spec, direct).run()
        dispatched = RunStore.open(tmp_path / "runs" / "via-http")
        assert dispatched.records_path.read_bytes() == direct.records_path.read_bytes()
        assert dispatched.digest() == direct.digest()


class TestSubprocessMode:
    def test_subprocess_run_matches_direct_run(self, tmp_path):
        spec = _spec(name="subproc")
        queue = JobQueue(tmp_path / "runs", workers=1, execution="subprocess")
        try:
            job = queue.submit(spec, run_id="via-worker")
            assert queue.wait_idle(timeout=240.0)
            assert queue.job(job.id).state == "completed", queue.job(job.id).error
        finally:
            queue.shutdown(wait=True)
        direct = RunStore.create(tmp_path / "direct", spec)
        CampaignRunner(spec, direct).run()
        worker_store = RunStore.open(tmp_path / "runs" / "via-worker")
        assert (
            worker_store.records_path.read_bytes()
            == direct.records_path.read_bytes()
        )
        assert worker_store.digest() == direct.digest()

    def test_dispatch_run_matches_direct_run(self, tmp_path):
        spec = _spec(name="dispatched")
        queue = JobQueue(
            tmp_path / "runs", workers=1, execution="dispatch", dispatch_workers=2
        )
        try:
            job = queue.submit(spec, run_id="via-dispatch")
            assert queue.wait_idle(timeout=240.0)
            assert queue.job(job.id).state == "completed", queue.job(job.id).error
        finally:
            queue.shutdown(wait=True)
        direct = RunStore.create(tmp_path / "direct", spec)
        CampaignRunner(spec, direct).run()
        dispatched = RunStore.open(tmp_path / "runs" / "via-dispatch")
        assert dispatched.records_path.read_bytes() == direct.records_path.read_bytes()
        assert dispatched.digest() == direct.digest()
