"""Unit tests for the mergeable pooled-quantile state (MergedDelayPool)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.quantiles import MergedDelayPool, empirical_quantiles

RNG = np.random.default_rng(1234)


def _spans(count: int, sizes=(0, 1, 7, 40, 3)) -> list[np.ndarray]:
    return [RNG.normal(1e-3, 2e-4, size=sizes[i % len(sizes)]) for i in range(count)]


class TestMergedDelayPool:
    def test_pooled_equals_merged(self):
        """The satellite fix's contract: incremental merge == one-shot pooling."""
        spans = _spans(9)
        merged = MergedDelayPool()
        for span in spans:
            merged.extend(span)
        pooled = np.sort(np.concatenate(spans))
        assert np.array_equal(np.asarray(merged.sorted_samples), pooled)
        wanted = (0.5, 0.9, 0.99)
        assert merged.quantiles(wanted) == empirical_quantiles(pooled, wanted)

    def test_merge_is_associative_and_grouping_invariant(self):
        spans = _spans(6)
        left = MergedDelayPool()
        for span in spans:
            left.extend(span)
        paired = MergedDelayPool()
        for index in range(0, len(spans), 2):
            chunk = MergedDelayPool(spans[index]).merge(MergedDelayPool(spans[index + 1]))
            paired.merge(chunk)
        assert left.state_digest() == paired.state_digest()
        assert np.array_equal(
            np.asarray(left.sorted_samples), np.asarray(paired.sorted_samples)
        )

    def test_merge_order_invariant(self):
        spans = _spans(5)
        forward = MergedDelayPool()
        backward = MergedDelayPool()
        for span in spans:
            forward.extend(span)
        for span in reversed(spans):
            backward.extend(span)
        assert forward.state_digest() == backward.state_digest()

    def test_ties_survive_merging(self):
        pool = MergedDelayPool([2.0, 1.0, 2.0]).extend([2.0, 1.0])
        assert np.asarray(pool.sorted_samples).tolist() == [1.0, 1.0, 2.0, 2.0, 2.0]

    def test_hex_round_trip_is_bit_exact(self):
        pool = MergedDelayPool()
        for span in _spans(4):
            pool.extend(span)
        rebuilt = MergedDelayPool.from_hex(pool.to_hex())
        assert rebuilt.state_digest() == pool.state_digest()
        assert np.array_equal(
            np.asarray(rebuilt.sorted_samples), np.asarray(pool.sorted_samples)
        )

    def test_empty_pool(self):
        pool = MergedDelayPool()
        assert len(pool) == 0
        assert pool.quantiles((0.5,)) == {}
        assert pool.to_hex() == []
        assert MergedDelayPool.from_hex([]).state_digest() == pool.state_digest()

    def test_sorted_samples_view_is_read_only(self):
        pool = MergedDelayPool([3.0, 1.0])
        with pytest.raises(ValueError):
            pool.sorted_samples[0] = 0.0

    def test_extend_returns_self_for_chaining(self):
        pool = MergedDelayPool()
        assert pool.extend([1.0]) is pool
        assert pool.merge(MergedDelayPool([2.0])) is pool
        assert len(pool) == 2

    def test_empty_pool_merge_is_identity_both_ways(self):
        samples = RNG.normal(1e-3, 2e-4, size=17)
        populated = MergedDelayPool(samples)
        before = populated.state_digest()
        populated.merge(MergedDelayPool())
        assert populated.state_digest() == before
        empty = MergedDelayPool()
        empty.merge(MergedDelayPool(samples))
        assert empty.state_digest() == before
        both_empty = MergedDelayPool().merge(MergedDelayPool())
        assert len(both_empty) == 0
        assert both_empty.state_digest() == MergedDelayPool().state_digest()

    def test_single_sample_quantiles(self):
        pool = MergedDelayPool([4.2e-3])
        wanted = (0.0, 0.25, 0.5, 0.9, 1.0)
        assert pool.quantiles(wanted) == {q: 4.2e-3 for q in wanted}

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), float("-inf")])
    def test_non_finite_samples_rejected_with_clear_error(self, bad):
        with pytest.raises(ValueError, match="finite"):
            MergedDelayPool([1e-3, bad])
        with pytest.raises(ValueError, match="finite"):
            MergedDelayPool().extend([bad, 2e-3])

    def test_non_finite_hex_payload_rejected(self):
        payload = MergedDelayPool([1e-3]).to_hex()
        payload.append(float("nan").hex())
        with pytest.raises(ValueError, match="finite"):
            MergedDelayPool.from_hex(payload)
