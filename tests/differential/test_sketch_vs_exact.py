"""Sketch-vs-exact differential assertions over the conformance scenarios.

Each conformance scenario (the same pinned cells the goldens freeze) is
executed once in exact mode; its decoded matched-delay samples are the
ground truth every sketch assertion here runs against:

* the sketch's quantile estimates land within the documented bound
  ``alpha * max(|x_floor(rank)|, |x_ceil(rank)|)`` for every scenario,
  domain, size budget, and a dense quantile grid;
* merging is grouping- and order-invariant byte-for-byte (arbitrary shard
  groupings converge on one ``state_digest()``);
* a sketch-mode campaign killed after *any* interval and resumed is
  byte-identical to the uninterrupted run;
* the sketch state a sketch-mode campaign record commits is exactly the
  sketch of the exact-mode samples (the end-to-end wiring adds nothing).

A hypothesis-generated distribution matrix (heavy tails, duplicates,
sorted/reverse-sorted, mixed signs, zeros) extends the bound check beyond
what the pinned scenarios exercise.
"""

from __future__ import annotations

import math
from functools import lru_cache

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.sketch import DEFAULT_SKETCH_SIZE, DelayQuantileSketch
from repro.api.spec import CampaignSpec, SLATargetSpec
from repro.engine.campaign import CampaignRunner, interval_record
from repro.store import RunStore
from tests.conformance.scenarios import (
    CONFORMANCE_SCENARIOS,
    MESH_CONFORMANCE_SCENARIOS,
)

ALL_SCENARIOS = {**CONFORMANCE_SCENARIOS, **MESH_CONFORMANCE_SCENARIOS}

SIZES = (8, 64, DEFAULT_SKETCH_SIZE)

#: Dense grid including the extremes and the tails both SLAs and reports use.
QUANTILE_GRID = (0.0, 0.01, 0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0)


@lru_cache(maxsize=None)
def _scenario_record(name: str) -> dict:
    """The exact-mode interval-0 record of one conformance scenario."""
    cell = ALL_SCENARIOS[name]
    spec = CampaignSpec(name=f"differential-{name}", intervals=1, cell=cell)
    return interval_record(spec, 0)


def _scenario_delays(name: str) -> dict[str, np.ndarray]:
    """Ground truth: decoded matched-delay samples per domain."""
    return {
        domain: np.array([float.fromhex(value) for value in hexes])
        for domain, hexes in _scenario_record(name)["delay_samples"].items()
    }


def _bound(ordered: np.ndarray, quantile: float, alpha: float) -> float:
    """The documented worst-case error: alpha * max|bracketing statistics|."""
    rank = quantile * (len(ordered) - 1)
    low = ordered[int(math.floor(rank))]
    high = ordered[int(math.ceil(rank))]
    return alpha * max(abs(low), abs(high))


def assert_sketch_within_bound(samples: np.ndarray, size: int) -> None:
    sketch = DelayQuantileSketch(size, samples)
    ordered = np.sort(samples)
    estimates = sketch.quantiles(QUANTILE_GRID)
    for quantile in QUANTILE_GRID:
        exact = float(np.quantile(ordered, quantile))
        bound = _bound(ordered, quantile, sketch.relative_accuracy)
        error = abs(estimates[quantile] - exact)
        assert error <= bound * (1 + 1e-9) + 1e-18, (
            f"size={size} q={quantile}: error {error} exceeds bound {bound} "
            f"(exact {exact}, sketch {estimates[quantile]})"
        )


# -- error bound on every conformance golden -------------------------------------------


@pytest.mark.parametrize("size", SIZES)
@pytest.mark.parametrize("name", sorted(ALL_SCENARIOS))
def test_sketch_quantiles_within_bound_on_golden_scenarios(name, size):
    delays = _scenario_delays(name)
    assert delays, f"scenario {name} produced no target domains"
    checked = 0
    for domain, samples in sorted(delays.items()):
        if not len(samples):
            continue
        assert_sketch_within_bound(samples, size)
        checked += 1
    assert checked, f"scenario {name} produced no delay samples to compare"


# -- merge grouping invariance ---------------------------------------------------------


def _grouped_digest(
    spans: list[np.ndarray], order: list[int], size: int, pairwise: bool
) -> str:
    sketches = [DelayQuantileSketch(size, spans[i]) for i in order]
    if pairwise:  # balanced tree reduction
        while len(sketches) > 1:
            sketches = [
                sketches[i].merge(sketches[i + 1])
                if i + 1 < len(sketches)
                else sketches[i]
                for i in range(0, len(sketches), 2)
            ]
        return sketches[0].state_digest()
    merged = DelayQuantileSketch(size)
    for sketch in sketches:
        merged.merge(sketch)
    return merged.state_digest()


@pytest.mark.parametrize("name", sorted(ALL_SCENARIOS))
def test_merge_is_grouping_and_order_invariant_byte_for_byte(name):
    delays = _scenario_delays(name)
    domain = max(delays, key=lambda key: len(delays[key]))
    samples = delays[domain]
    assert len(samples) >= 8, f"scenario {name} too small to shard meaningfully"
    spans = np.array_split(samples, 8)
    size = 128
    reference = DelayQuantileSketch(size, samples).state_digest()
    orders = [
        list(range(8)),
        list(range(7, -1, -1)),
        [3, 0, 6, 1, 7, 2, 5, 4],
    ]
    digests = {
        _grouped_digest(spans, order, size, pairwise)
        for order in orders
        for pairwise in (False, True)
    }
    assert digests == {reference}


# -- end-to-end: the committed sketch state IS the sketch of the exact samples ---------


def _sketch_variant(name: str, size: int):
    cell = ALL_SCENARIOS[name]
    if name in MESH_CONFORMANCE_SCENARIOS:
        overrides = {"estimation_mode": "sketch", "sketch_size": size}
    else:
        overrides = {"estimation.mode": "sketch", "estimation.sketch_size": size}
    return cell.with_overrides(overrides)


@pytest.mark.parametrize("name", ["delay-honest", "loss-lying", "mesh-honest"])
def test_sketch_mode_record_commits_the_sketch_of_the_exact_samples(name):
    size = 128
    spec = CampaignSpec(
        name=f"differential-{name}-sketch",
        intervals=1,
        cell=_sketch_variant(name, size),
    )
    record = interval_record(spec, 0)
    assert "delay_samples" not in record
    exact = _scenario_delays(name)
    assert sorted(record["delay_sketch"]) == sorted(exact)
    for domain, state in record["delay_sketch"].items():
        rebuilt = DelayQuantileSketch.from_state(state)
        direct = DelayQuantileSketch(size, exact[domain])
        assert rebuilt.state_digest() == direct.state_digest()
        assert len(rebuilt) == len(exact[domain])
    # the estimates/verdicts payloads are mode-independent (computed from
    # the same interval execution), so the sketch record must agree with
    # the exact record on them
    exact_record = _scenario_record(name)
    assert record["estimates"] == exact_record["estimates"]
    assert record["verdicts"] == exact_record["verdicts"]
    assert record["receipts_digest"] == exact_record["receipts_digest"]


# -- kill-anywhere sketch-mode campaign resume -----------------------------------------


def _campaign_spec(name: str, intervals: int, size: int) -> CampaignSpec:
    return CampaignSpec(
        name=f"differential-{name}-campaign",
        intervals=intervals,
        cell=_sketch_variant(name, size),
        sla=SLATargetSpec(delay_bound=8e-3, delay_quantile=0.9, loss_bound=0.2),
    )


def _store_files(store: RunStore) -> dict[str, bytes]:
    return {
        file: (store.path / file).read_bytes()
        for file in ("spec.json", "records.jsonl", "summary.json")
    }


def test_sketch_mode_resume_is_byte_identical_at_every_kill_point(tmp_path):
    intervals = 4
    spec = _campaign_spec("delay-honest", intervals, 64)

    uninterrupted = RunStore.create(tmp_path / "uninterrupted", spec)
    CampaignRunner(spec, uninterrupted).run()
    assert uninterrupted.is_complete

    for record in uninterrupted.records():
        assert "delay_samples" not in record
        assert set(record["delay_sketch"]) == {"X"}

    for kill_after in range(intervals):
        path = tmp_path / f"killed-at-{kill_after}"
        store = RunStore.create(path, spec)
        CampaignRunner(spec, store).run(max_intervals=kill_after)
        # "die", reopen, resume to completion on a different engine
        resumed = RunStore.open(path)
        CampaignRunner.resume(resumed, engine="streaming", chunk_size=64).run()
        final = RunStore.open(path)
        assert final.is_complete
        assert final.digest() == uninterrupted.digest()
        assert _store_files(final) == _store_files(uninterrupted)


# -- hypothesis distribution matrix ----------------------------------------------------


_SCALES = (1e-6, 1e-3, 1.0, 1e3)


@st.composite
def _delay_distribution(draw) -> np.ndarray:
    """Adversarial sample shapes beyond what the pinned scenarios produce."""
    kind = draw(
        st.sampled_from(
            ["lognormal-heavy", "duplicates", "sorted", "reverse", "mixed-signs"]
        )
    )
    seed = draw(st.integers(min_value=0, max_value=2**32 - 1))
    count = draw(st.integers(min_value=1, max_value=400))
    scale = draw(st.sampled_from(_SCALES))
    rng = np.random.default_rng(seed)
    if kind == "lognormal-heavy":
        samples = rng.lognormal(0.0, 3.0, count) * scale
    elif kind == "duplicates":
        samples = rng.choice(rng.lognormal(0.0, 1.0, 5) * scale, size=count)
    elif kind == "sorted":
        samples = np.sort(rng.lognormal(0.0, 2.0, count)) * scale
    elif kind == "reverse":
        samples = np.sort(rng.lognormal(0.0, 2.0, count))[::-1] * scale
    else:  # mixed-signs (clock skew) with exact zeros
        samples = rng.normal(0.0, scale, count)
        samples[rng.random(count) < 0.1] = 0.0
    return samples


@settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(samples=_delay_distribution(), size=st.sampled_from(SIZES))
def test_sketch_bound_holds_on_generated_distribution_matrix(samples, size):
    assert_sketch_within_bound(samples, size)
