"""Differential test tier: sketch-mode estimation vs the exact pool.

Every test in this tier compares the bounded-memory sketch path
(:class:`repro.analysis.sketch.DelayQuantileSketch`, ``EstimationSpec
mode="sketch"``) against the exact path (:class:`MergedDelayPool`, raw
pooled samples) on the *same* executed scenarios — the conformance
goldens plus a generated distribution matrix — and asserts the documented
error bound, byte-for-byte merge grouping invariance, and byte-identical
kill-anywhere campaign resume in sketch mode.

CI runs this tier as its own ``sketch-accuracy`` step.
"""
