"""Canonical receipt serialization shared by conformance and engine tests.

Receipts are canonicalized to JSON-stable data with exact float hex for every
timestamp; ``time_sum`` is rounded to 10 significant digits — the one field
whose float accumulation order legitimately differs between the scalar,
batch and streaming engines (and between shard counts).  Everything else —
sample sets and order, thresholds, aggregate boundaries, packet counts,
AggTrans windows — must be bit-identical across engines.
"""

from __future__ import annotations

from functools import partial

from repro.api.runner import _build_cell, _build_mesh_cell
from repro.engine import DEFAULT_CHUNK_SIZE, MeshRunner, StreamingRunner
from repro.engine.mesh import run_mesh_batch


def canonical_receipts(reports) -> dict:
    """Receipts of every HOP in a canonical, JSON-stable form."""
    canonical: dict[str, dict] = {}
    for hop_id in sorted(reports):
        report = reports[hop_id]
        canonical[str(hop_id)] = {
            "samples": [
                {
                    "path": str(receipt.path_id.prefix_pair),
                    "reporting_hop": receipt.path_id.reporting_hop,
                    "threshold": receipt.sampling_threshold,
                    "records": [
                        [record.pkt_id, record.time.hex()] for record in receipt.samples
                    ],
                }
                for receipt in report.sample_receipts
            ],
            "aggregates": [
                {
                    "first_pkt_id": receipt.first_pkt_id,
                    "last_pkt_id": receipt.last_pkt_id,
                    "pkt_count": receipt.pkt_count,
                    "start_time": receipt.start_time.hex(),
                    "end_time": receipt.end_time.hex(),
                    "time_sum": f"{receipt.time_sum:.9e}",
                    "trans_before": list(receipt.trans_before),
                    "trans_after": list(receipt.trans_after),
                }
                for receipt in report.aggregate_receipts
            ],
        }
    return canonical


def run_scalar_reports(spec):
    """The scalar (per-packet object) engine's receipts for a spec."""
    cell = _build_cell(spec.to_dict())
    observation = cell.scenario.run(cell.trace.packets())
    return cell.session.run(observation)


def run_batch_reports(spec):
    """The batch engine's receipts for a spec (fresh cell, full batch)."""
    cell = _build_cell(spec.to_dict())
    observation = cell.scenario.run_batch(cell.trace.packet_batch())
    return cell.session.run(observation)


def run_streaming_reports(spec, shards: int = 1, chunk_size: int = DEFAULT_CHUNK_SIZE):
    """The streaming engine's receipts for a spec."""
    runner = StreamingRunner(
        partial(_build_cell, spec.to_dict()),
        chunk_size=chunk_size,
        shards=shards,
    )
    return runner.run().reports


def run_mesh_batch_reports(spec):
    """The batch mesh engine's receipts for a MeshSpec (fresh cell)."""
    cell = _build_mesh_cell(spec.to_dict())
    run_mesh_batch(cell)
    return cell.session._last_reports


def run_mesh_streaming_reports(spec, shards: int = 1, chunk_size: int = DEFAULT_CHUNK_SIZE):
    """The streaming mesh engine's receipts for a MeshSpec."""
    runner = MeshRunner(
        partial(_build_mesh_cell, spec.to_dict()),
        chunk_size=chunk_size,
        shards=shards,
    )
    return runner.run().reports
