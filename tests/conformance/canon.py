"""Canonical receipt serialization shared by conformance and engine tests.

The canonical form itself lives in :mod:`repro.reporting.serialization`
(:func:`~repro.reporting.serialization.canonical_receipts`) because the
campaign run store records the same form's digest per interval; re-exported
here so the conformance/engine tests keep one import site.  Exact float hex
for every timestamp; ``time_sum`` rounded to 10 significant digits — the one
field whose float accumulation order legitimately differs between the scalar,
batch and streaming engines (and between shard counts).
"""

from __future__ import annotations

from functools import partial

from repro.api.runner import _build_cell, _build_mesh_cell
from repro.engine import DEFAULT_CHUNK_SIZE, MeshRunner, StreamingRunner
from repro.engine.mesh import run_mesh_batch
from repro.reporting.serialization import canonical_receipts

__all__ = [
    "canonical_receipts",
    "run_scalar_reports",
    "run_batch_reports",
    "run_streaming_reports",
    "run_mesh_batch_reports",
    "run_mesh_streaming_reports",
]


def run_scalar_reports(spec):
    """The scalar (per-packet object) engine's receipts for a spec."""
    cell = _build_cell(spec.to_dict())
    observation = cell.scenario.run(cell.trace.packets())
    return cell.session.run(observation)


def run_batch_reports(spec):
    """The batch engine's receipts for a spec (fresh cell, full batch)."""
    cell = _build_cell(spec.to_dict())
    observation = cell.scenario.run_batch(cell.trace.packet_batch())
    return cell.session.run(observation)


def run_streaming_reports(spec, shards: int = 1, chunk_size: int = DEFAULT_CHUNK_SIZE):
    """The streaming engine's receipts for a spec."""
    runner = StreamingRunner(
        partial(_build_cell, spec.to_dict()),
        chunk_size=chunk_size,
        shards=shards,
    )
    return runner.run().reports


def run_mesh_batch_reports(spec):
    """The batch mesh engine's receipts for a MeshSpec (fresh cell)."""
    cell = _build_mesh_cell(spec.to_dict())
    run_mesh_batch(cell)
    return cell.session._last_reports


def run_mesh_streaming_reports(spec, shards: int = 1, chunk_size: int = DEFAULT_CHUNK_SIZE):
    """The streaming mesh engine's receipts for a MeshSpec."""
    runner = MeshRunner(
        partial(_build_mesh_cell, spec.to_dict()),
        chunk_size=chunk_size,
        shards=shards,
    )
    return runner.run().reports
