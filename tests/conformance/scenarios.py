"""The six canonical conformance scenarios: delay/loss/reorder × honest/lying.

Each scenario is a small, fully pinned :class:`~repro.api.ExperimentSpec`
over the Figure-1 path with domain ``X`` as the interesting transit domain.
The golden fixtures in ``goldens/`` freeze each scenario's receipts,
estimates and verification verdicts as produced by the batch engine; the
conformance tests additionally require the streaming engine (single-process
and ``shards=4``) to reproduce them byte-for-byte (``time_sum`` compared at
its documented 10-significant-digit tolerance).
"""

from __future__ import annotations

from repro.api import ExperimentSpec
from repro.api.spec import AdversarySpec, ConditionSpec, PathSpec, TrafficSpec

_LYING = (AdversarySpec(kind="lying", domain="X"),)

_DELAY = ConditionSpec(
    delay="jitter",
    delay_params={"base_delay": 1.0e-3, "jitter_std": 0.5e-3},
)
_LOSS = ConditionSpec(
    delay="constant",
    delay_params={"delay": 0.8e-3},
    loss="gilbert-elliott-rate",
    loss_params={"target_rate": 0.05, "mean_burst_length": 6.0},
)
_REORDER = ConditionSpec(
    delay="jitter",
    delay_params={"base_delay": 0.6e-3, "jitter_std": 0.2e-3},
    reordering="window",
    reordering_params={"window": 0.4e-3, "reorder_probability": 0.2},
)


def _spec(name: str, condition: ConditionSpec, lying: bool) -> ExperimentSpec:
    return ExperimentSpec(
        name=name,
        seed=20260730,
        traffic=TrafficSpec(workload="smoke-sequence"),
        path=PathSpec(conditions={"X": condition}),
        adversaries=_LYING if lying else (),
    )


CONFORMANCE_SCENARIOS: dict[str, ExperimentSpec] = {
    "delay-honest": _spec("delay-honest", _DELAY, lying=False),
    "delay-lying": _spec("delay-lying", _DELAY, lying=True),
    "loss-honest": _spec("loss-honest", _LOSS, lying=False),
    "loss-lying": _spec("loss-lying", _LOSS, lying=True),
    "reorder-honest": _spec("reorder-honest", _REORDER, lying=False),
    "reorder-lying": _spec("reorder-lying", _REORDER, lying=True),
}
