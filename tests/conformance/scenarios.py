"""The canonical conformance scenarios.

Six single-path scenarios (delay/loss/reorder × honest/lying): each is a
small, fully pinned :class:`~repro.api.ExperimentSpec` over the Figure-1 path
with domain ``X`` as the interesting transit domain.  Two mesh scenarios:
a shared-HOP honest random mesh and a star mesh with one lying transit core
(each a pinned :class:`~repro.api.MeshSpec`, freezing receipts, per-path
estimates/verdicts and the cross-path triangulation output).

The golden fixtures in ``goldens/`` freeze each scenario's output as produced
by the batch engine; the conformance tests additionally require the streaming
engine (single-process and ``shards=4``) to reproduce them byte-for-byte
(``time_sum`` compared at its documented 10-significant-digit tolerance).
"""

from __future__ import annotations

from repro.api import ExperimentSpec, MeshSpec
from repro.api.spec import (
    AdversarySpec,
    ConditionSpec,
    PathSpec,
    TopologySpec,
    TrafficSpec,
)

_LYING = (AdversarySpec(kind="lying", domain="X"),)

_DELAY = ConditionSpec(
    delay="jitter",
    delay_params={"base_delay": 1.0e-3, "jitter_std": 0.5e-3},
)
_LOSS = ConditionSpec(
    delay="constant",
    delay_params={"delay": 0.8e-3},
    loss="gilbert-elliott-rate",
    loss_params={"target_rate": 0.05, "mean_burst_length": 6.0},
)
_REORDER = ConditionSpec(
    delay="jitter",
    delay_params={"base_delay": 0.6e-3, "jitter_std": 0.2e-3},
    reordering="window",
    reordering_params={"window": 0.4e-3, "reorder_probability": 0.2},
)


def _spec(name: str, condition: ConditionSpec, lying: bool) -> ExperimentSpec:
    return ExperimentSpec(
        name=name,
        seed=20260730,
        traffic=TrafficSpec(workload="smoke-sequence"),
        path=PathSpec(conditions={"X": condition}),
        adversaries=_LYING if lying else (),
    )


CONFORMANCE_SCENARIOS: dict[str, ExperimentSpec] = {
    "delay-honest": _spec("delay-honest", _DELAY, lying=False),
    "delay-lying": _spec("delay-lying", _DELAY, lying=True),
    "loss-honest": _spec("loss-honest", _LOSS, lying=False),
    "loss-lying": _spec("loss-lying", _LOSS, lying=True),
    "reorder-honest": _spec("reorder-honest", _REORDER, lying=False),
    "reorder-lying": _spec("reorder-lying", _REORDER, lying=True),
}


# -- mesh scenarios -------------------------------------------------------------------
#
# "mesh-honest": a pinned random mesh whose four paths share 8 HOPs across
# three transit domains, all honest — freezes the shared-collector
# interleaving and the per-path estimates.  "mesh-lying": a 3-path star whose
# core X lies on every path; each path's verdict only implicates an (X, Di)
# pair, and the frozen triangulation output exposes X alone.

_MESH_TRAFFIC = TrafficSpec(workload="smoke-sequence", packet_count=1500)

MESH_CONFORMANCE_SCENARIOS: dict[str, MeshSpec] = {
    "mesh-honest": MeshSpec(
        name="mesh-honest",
        seed=20260730,
        topology=TopologySpec(
            kind="mesh-random",
            params={"transit_domains": 3, "stub_domains": 4, "path_count": 4},
            seed=2026,
        ),
        traffic=_MESH_TRAFFIC,
        conditions={
            "T1": _DELAY,
            "T2": _LOSS,
            "T3": _REORDER,
        },
    ),
    "mesh-lying": MeshSpec(
        name="mesh-lying",
        seed=20260730,
        topology=TopologySpec(kind="star", params={"path_count": 3}, seed=0),
        traffic=_MESH_TRAFFIC,
        conditions={
            "X": ConditionSpec(
                delay="constant",
                delay_params={"delay": 15e-3},
                loss="bernoulli",
                loss_params={"loss_rate": 0.2},
            ),
        },
        adversaries=(
            AdversarySpec(kind="lying", domain="X", params={"claimed_delay": 0.5e-3}),
        ),
    ),
}
