"""Golden-file conformance regression tests for the mesh engines.

For each canonical mesh scenario the suite freezes, as JSON fixtures under
``goldens/``:

* the full :class:`~repro.api.results.MeshResult` (per-path estimates, truth,
  verification verdicts, suspect links, cross-path triangulation, overhead)
  as its byte-stable ``to_json`` string;
* every HOP's receipts — for shared HOPs that is the receipts of *all* paths
  crossing them — in the same canonical form as the single-path goldens.

``pytest --regen-goldens`` rewrites the fixtures from the current batch mesh
engine instead of comparing.  On top of the golden comparison, the streaming
mesh engine — single-process and with ``shards=4`` — must reproduce the batch
engine's mesh result **byte-identically** and its receipts exactly
(``time_sum`` at its documented tolerance), the acceptance bar for
shard-parallel mesh execution.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.api.runner import run_mesh_cell

from tests.conformance.canon import (
    canonical_receipts,
    run_mesh_batch_reports,
    run_mesh_streaming_reports,
)
from tests.conformance.scenarios import MESH_CONFORMANCE_SCENARIOS

# REPRO_GOLDEN_DIR redirects regeneration to another directory (see
# test_golden_scenarios.py and `repro regen-goldens --check`).
GOLDEN_DIR = Path(
    os.environ.get("REPRO_GOLDEN_DIR") or Path(__file__).parent / "goldens"
)

# Small enough to slice the 1500-packet per-path traces into several chunks
# (and give every shard real work), so the lockstep merge and the holdback
# machinery are actually exercised.
CHUNK_SIZE = 320
SHARDS = 4


@pytest.fixture(scope="session")
def regen(request) -> bool:
    return bool(request.config.getoption("--regen-goldens"))


@pytest.mark.parametrize("name", sorted(MESH_CONFORMANCE_SCENARIOS))
class TestMeshConformance:
    def test_batch_matches_golden(self, name, regen):
        spec = MESH_CONFORMANCE_SCENARIOS[name]
        mesh_json = run_mesh_cell(spec, engine="batch").to_json()
        receipts = canonical_receipts(run_mesh_batch_reports(spec))
        golden_path = GOLDEN_DIR / f"{name}.json"

        if regen:
            GOLDEN_DIR.mkdir(exist_ok=True)
            golden_path.write_text(
                json.dumps(
                    {"scenario": name, "mesh_json": mesh_json, "receipts": receipts},
                    indent=1,
                    sort_keys=True,
                )
                + "\n"
            )
            pytest.skip(f"regenerated {golden_path.name}")

        assert golden_path.exists(), (
            f"missing golden fixture {golden_path.name}; "
            f"run `pytest tests/conformance --regen-goldens` to create it"
        )
        golden = json.loads(golden_path.read_text())
        assert mesh_json == golden["mesh_json"], (
            f"{name}: batch mesh result drifted from the golden fixture"
        )
        assert receipts == golden["receipts"], (
            f"{name}: batch mesh receipts drifted from the golden fixture"
        )

    def test_lying_core_exposed_by_triangulation(self, name, regen):
        if regen:
            pytest.skip("regenerating goldens")
        spec = MESH_CONFORMANCE_SCENARIOS[name]
        result = run_mesh_cell(spec, engine="batch")
        lying_domains = {adversary.domain for adversary in spec.adversaries}
        if not lying_domains:
            assert result.triangulation.exposed_domains == ()
            assert all(path.consistency_findings == 0 for path in result.paths)
            return
        # Every path alone only implicates a pair containing the liar...
        for path in result.paths:
            assert path.suspect_links, f"{path.pair}: the lie went unflagged"
            for link in path.suspect_links:
                assert lying_domains & set(link)
        # ...and the cross-path triangulation narrows it to the liar exactly.
        assert result.triangulation.exposed_domains == tuple(sorted(lying_domains))

    def test_streaming_single_process_byte_identical(self, name, regen):
        if regen:
            pytest.skip("regenerating goldens")
        spec = MESH_CONFORMANCE_SCENARIOS[name]
        batch_json = run_mesh_cell(spec, engine="batch").to_json()
        streaming_json = run_mesh_cell(
            spec, engine="streaming", chunk_size=CHUNK_SIZE
        ).to_json()
        assert streaming_json == batch_json
        assert canonical_receipts(
            run_mesh_streaming_reports(spec, shards=1, chunk_size=CHUNK_SIZE)
        ) == canonical_receipts(run_mesh_batch_reports(spec))

    def test_streaming_sharded_byte_identical(self, name, regen):
        if regen:
            pytest.skip("regenerating goldens")
        spec = MESH_CONFORMANCE_SCENARIOS[name]
        batch_json = run_mesh_cell(spec, engine="batch").to_json()
        sharded_json = run_mesh_cell(
            spec, engine="streaming", shards=SHARDS, chunk_size=CHUNK_SIZE
        ).to_json()
        assert sharded_json == batch_json
        assert canonical_receipts(
            run_mesh_streaming_reports(spec, shards=SHARDS, chunk_size=CHUNK_SIZE)
        ) == canonical_receipts(run_mesh_batch_reports(spec))
