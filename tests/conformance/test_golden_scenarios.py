"""Golden-file conformance regression tests.

For each canonical scenario the suite freezes, as JSON fixtures under
``goldens/``:

* the full :class:`~repro.api.results.CellResult` (estimates, truth,
  verification verdicts, overhead) as its byte-stable ``to_json`` string;
* every HOP's receipts in a canonical form (sample times and aggregate
  boundary timestamps as exact float hex; ``time_sum`` rounded to its
  documented 10-significant-digit tolerance).

``pytest --regen-goldens`` rewrites the fixtures from the current batch
engine instead of comparing.  On top of the golden comparison, the streaming
engine — single-process and with ``shards=4`` — must reproduce the batch
engine's cell result **byte-identically** and its receipts exactly (the
acceptance bar for shard-parallel execution).
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.api.runner import run_cell

from tests.conformance.canon import (
    canonical_receipts,
    run_batch_reports,
    run_streaming_reports,
)
from tests.conformance.scenarios import CONFORMANCE_SCENARIOS

# REPRO_GOLDEN_DIR redirects regeneration (and comparison) to another
# directory — how `repro regen-goldens --check` diffs freshly regenerated
# goldens against the committed ones without touching the working tree.
GOLDEN_DIR = Path(
    os.environ.get("REPRO_GOLDEN_DIR") or Path(__file__).parent / "goldens"
)

# Small enough to slice the 3000-packet conformance traces into several
# chunks (and give every shard real work), so the holdback/merge machinery is
# actually exercised.
CHUNK_SIZE = 640
SHARDS = 4


@pytest.fixture(scope="session")
def regen(request) -> bool:
    return bool(request.config.getoption("--regen-goldens"))


@pytest.mark.parametrize("name", sorted(CONFORMANCE_SCENARIOS))
class TestConformance:
    def test_batch_matches_golden(self, name, regen):
        spec = CONFORMANCE_SCENARIOS[name]
        cell_json = run_cell(spec, engine="batch").to_json()
        receipts = canonical_receipts(run_batch_reports(spec))
        golden_path = GOLDEN_DIR / f"{name}.json"

        if regen:
            GOLDEN_DIR.mkdir(exist_ok=True)
            golden_path.write_text(
                json.dumps(
                    {"scenario": name, "cell_json": cell_json, "receipts": receipts},
                    indent=1,
                    sort_keys=True,
                )
                + "\n"
            )
            pytest.skip(f"regenerated {golden_path.name}")

        assert golden_path.exists(), (
            f"missing golden fixture {golden_path.name}; "
            f"run `pytest tests/conformance --regen-goldens` to create it"
        )
        golden = json.loads(golden_path.read_text())
        assert cell_json == golden["cell_json"], (
            f"{name}: batch-engine cell result drifted from the golden fixture"
        )
        assert receipts == golden["receipts"], (
            f"{name}: batch-engine receipts drifted from the golden fixture"
        )

    def test_streaming_single_process_byte_identical(self, name, regen):
        if regen:
            pytest.skip("regenerating goldens")
        spec = CONFORMANCE_SCENARIOS[name]
        batch_json = run_cell(spec, engine="batch").to_json()
        streaming_json = run_cell(
            spec, engine="streaming", chunk_size=CHUNK_SIZE
        ).to_json()
        assert streaming_json == batch_json
        assert canonical_receipts(run_streaming_reports(spec, shards=1, chunk_size=CHUNK_SIZE)) == (
            canonical_receipts(run_batch_reports(spec))
        )

    def test_streaming_sharded_byte_identical(self, name, regen):
        if regen:
            pytest.skip("regenerating goldens")
        spec = CONFORMANCE_SCENARIOS[name]
        batch_json = run_cell(spec, engine="batch").to_json()
        sharded_json = run_cell(
            spec, engine="streaming", shards=SHARDS, chunk_size=CHUNK_SIZE
        ).to_json()
        assert sharded_json == batch_json
        assert canonical_receipts(run_streaming_reports(spec, shards=SHARDS, chunk_size=CHUNK_SIZE)) == (
            canonical_receipts(run_batch_reports(spec))
        )
