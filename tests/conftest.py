"""Shared fixtures for the VPM reproduction test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.net.hashing import PacketDigester
from repro.net.packet import Packet, PacketHeaders
from repro.net.prefixes import OriginPrefix, PrefixPair
from repro.net.topology import HOPPath, Topology, figure1_topology
from repro.traffic.flows import FlowGeneratorConfig
from repro.traffic.trace import SyntheticTrace, TraceConfig


@pytest.fixture(scope="session")
def prefix_pair() -> PrefixPair:
    """The default (source, destination) origin-prefix pair."""
    return PrefixPair(
        source=OriginPrefix.parse("10.1.0.0/16"),
        destination=OriginPrefix.parse("10.2.0.0/16"),
    )


@pytest.fixture(scope="session")
def figure1():
    """The Figure-1 topology and its HOP path."""
    return figure1_topology()


@pytest.fixture(scope="session")
def path(figure1) -> HOPPath:
    return figure1[1]


@pytest.fixture(scope="session")
def topology(figure1) -> Topology:
    return figure1[0]


@pytest.fixture(scope="session")
def digester() -> PacketDigester:
    """The protocol-wide packet digester."""
    return PacketDigester()


@pytest.fixture(scope="session")
def small_trace_packets(prefix_pair) -> list[Packet]:
    """A small (2000-packet) synthetic trace, shared across tests."""
    config = TraceConfig(
        packet_count=2000,
        packets_per_second=100_000.0,
        flow_config=FlowGeneratorConfig(),
    )
    return SyntheticTrace(config=config, prefix_pair=prefix_pair, seed=7).packets()


@pytest.fixture(scope="session")
def digest_stream(small_trace_packets, digester) -> list[tuple[int, float]]:
    """(digest, time) pairs of the small trace, for driving core algorithms."""
    return [
        (digester.digest(packet), packet.send_time) for packet in small_trace_packets
    ]


@pytest.fixture()
def rng() -> np.random.Generator:
    """A fresh deterministic RNG per test."""
    return np.random.default_rng(12345)


def make_packet(
    uid: int = 0,
    src_ip: int = 0x0A010001,
    dst_ip: int = 0x0A020001,
    src_port: int = 1234,
    dst_port: int = 80,
    protocol: int = 6,
    ip_id: int = 0,
    length: int = 400,
    send_time: float = 0.0,
    payload: bytes = b"payload-bytes",
) -> Packet:
    """Convenience constructor used throughout the unit tests."""
    headers = PacketHeaders(
        src_ip=src_ip,
        dst_ip=dst_ip,
        src_port=src_port,
        dst_port=dst_port,
        protocol=protocol,
        ip_id=ip_id,
        length=length,
    )
    return Packet(headers=headers, payload=payload, uid=uid, send_time=send_time)


@pytest.fixture(scope="session")
def packet_factory():
    """Expose :func:`make_packet` as a fixture."""
    return make_packet
