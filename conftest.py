"""Repository-level pytest configuration.

Ensures ``src/`` is importable even when the package has not been installed
(e.g. on an offline machine where ``pip install -e .`` cannot build an
editable wheel).  When the package *is* installed this is a harmless no-op —
the installed distribution and ``src/repro`` are the same files.
"""

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))


def pytest_addoption(parser):
    """Register the conformance suite's golden-regeneration flag.

    (Lives here because pytest only honours ``pytest_addoption`` in initial
    conftests; the flag is consumed by ``tests/conformance``.)
    """
    parser.addoption(
        "--regen-goldens",
        action="store_true",
        default=False,
        help="rewrite tests/conformance/goldens/*.json from the current "
        "batch-engine output instead of comparing against them",
    )
